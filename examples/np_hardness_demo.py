#!/usr/bin/env python3
"""The NP-completeness reduction of Theorem 1, executed for real.

Builds the Figure 1 gadget from a 3-Partition instance, decides the
bi-objective scheduling question by solving the source problem, and --
on a YES instance -- materialises and simulates the witness schedule to
show both bounds are met with equality.

Run:  python examples/np_hardness_demo.py
"""

import numpy as np

from repro.core import simulate
from repro.pebble import (
    ThreePartitionInstance,
    build_gadget,
    decide_gadget,
    random_yes_instance,
    solve_three_partition,
)


def show(instance: ThreePartitionInstance) -> None:
    gadget = build_gadget(instance)
    print(f"3-Partition: values {instance.values}, B = {instance.target}")
    print(
        f"gadget tree: {gadget.tree.n} nodes "
        f"(root + {3 * instance.m} inner + leaves), p = {gadget.p}"
    )
    print(
        f"question: makespan <= {gadget.makespan_bound:g} AND "
        f"peak memory <= {gadget.memory_bound:g} ?"
    )
    schedule = decide_gadget(gadget)
    if schedule is None:
        print("answer: NO -- the 3-Partition instance has no solution,")
        print("so by Theorem 1 no schedule meets both bounds.\n")
        return
    result = simulate(schedule)
    partition = solve_three_partition(instance)
    print(f"answer: YES via partition {partition}")
    print(
        f"witness schedule: makespan {result.makespan:g} "
        f"(= bound), peak memory {result.peak_memory:g} (= bound)\n"
    )


def main() -> None:
    print("=== a YES instance ===")
    show(random_yes_instance(2, 12, np.random.default_rng(0)))
    print("=== a NO instance ===")
    # {4,4,4,4,4,6} with B=13: every triple misses 13.
    show(ThreePartitionInstance((4, 4, 4, 4, 4, 6), 13))
    print("The decision reduces exactly to 3-Partition -- scheduling")
    print("trees with both memory and makespan bounds is NP-complete")
    print("even with unit weights (the Pebble Game model).")


if __name__ == "__main__":
    main()
