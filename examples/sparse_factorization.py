#!/usr/bin/env python3
"""Sparse Cholesky factorization scheduling -- the paper's motivation.

Walks the full multifrontal pipeline of Section 6.2:

1. build a sparse symmetric matrix (a 2-D Laplacian here),
2. reorder it with a fill-reducing ordering (nested dissection, the
   MeTiS analogue),
3. run the symbolic factorization: elimination tree + column counts,
4. amalgamate nodes into an assembly tree with the paper's weight
   formulas,
5. schedule the assembly tree on p processors with each heuristic and
   report memory/makespan against the lower bounds.

Run:  python examples/sparse_factorization.py [grid-size] [processors]
"""

import sys

from repro.core import makespan_lower_bound, memory_lower_bound, simulate
from repro.matrices import (
    amalgamate,
    apply_ordering,
    grid2d,
    nested_dissection,
    symbolic_cholesky,
)
from repro.parallel import HEURISTICS


def main(grid: int = 24, p: int = 8) -> None:
    print(f"1. building a {grid}x{grid} grid Laplacian "
          f"({grid * grid} rows) ...")
    matrix = grid2d(grid)
    print(f"   pattern: {matrix.nnz} nonzeros")

    print("2. nested-dissection ordering ...")
    permuted = apply_ordering(matrix, nested_dissection(matrix))

    print("3. symbolic Cholesky factorization ...")
    symbolic = symbolic_cholesky(permuted)
    print(f"   factor nnz {symbolic.factor_nnz}, "
          f"etree height {symbolic.height()}")

    print("4. relaxed amalgamation (cap 4) ...")
    assembly = amalgamate(symbolic, max_amalgamation=4)
    tree = assembly.tree
    print(f"   assembly tree: {tree.n} nodes, height {tree.height()}, "
          f"max degree {tree.max_degree()}")

    mem_lb = memory_lower_bound(tree)
    mk_lb = makespan_lower_bound(tree, p)
    print(f"\n5. scheduling on p={p} processors "
          f"(memory LB {mem_lb:.4g}, makespan LB {mk_lb:.4g})\n")
    print(f"{'heuristic':<20s} {'makespan':>12s} {'x LB':>7s} "
          f"{'peak memory':>13s} {'x LB':>7s}")
    for name, heuristic in HEURISTICS.items():
        result = simulate(heuristic(tree, p))
        print(
            f"{name:<20s} {result.makespan:>12.5g} "
            f"{result.makespan / mk_lb:>7.3f} {result.peak_memory:>13.5g} "
            f"{result.peak_memory / mem_lb:>7.3f}"
        )
    print("\nParSubtrees holds memory near the sequential bound;")
    print("ParDeepestFirst chases the makespan bound -- the paper's trade-off.")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
