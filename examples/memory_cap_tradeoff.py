#!/usr/bin/env python3
"""Navigating the memory/makespan trade-off with a memory cap.

Theorem 2 shows no schedule can approximate both objectives at once --
but given a *memory budget*, the capped scheduler (the paper's
future-work extension) finds the best makespan it can under that budget.
This example sweeps the cap from the sequential optimum up to an
unconstrained level and prints the resulting Pareto-style curve.

Run:  python examples/memory_cap_tradeoff.py
"""

from repro.core import memory_lower_bound, simulate
from repro.matrices import (
    amalgamate,
    apply_ordering,
    grid2d,
    minimum_degree,
    symbolic_cholesky,
)
from repro.parallel import memory_bounded_schedule, par_deepest_first


def main() -> None:
    matrix = grid2d(20)
    symbolic = symbolic_cholesky(apply_ordering(matrix, minimum_degree(matrix)))
    tree = amalgamate(symbolic, max_amalgamation=4).tree
    p = 8
    mseq = memory_lower_bound(tree)
    free = simulate(par_deepest_first(tree, p))
    print(f"assembly tree: {tree.n} nodes; p = {p}")
    print(f"sequential memory optimum M_seq = {mseq:.4g}")
    print(f"unconstrained ParDeepestFirst: makespan {free.makespan:.5g}, "
          f"memory {free.peak_memory / mseq:.2f} x M_seq\n")
    print(f"{'cap / M_seq':>12s} {'makespan':>12s} {'slowdown':>9s} {'peak / M_seq':>13s}")
    for factor in (1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0):
        schedule = memory_bounded_schedule(tree, p, cap=factor * mseq)
        result = simulate(schedule)
        print(
            f"{factor:>12.2f} {result.makespan:>12.5g} "
            f"{result.makespan / free.makespan:>9.3f} "
            f"{result.peak_memory / mseq:>13.3f}"
        )
    print("\nEvery row respects its cap; loosening the budget buys speed.")


if __name__ == "__main__":
    main()
