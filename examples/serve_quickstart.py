#!/usr/bin/env python3
"""Scheduling-service quickstart: submit a campaign over HTTP.

Boots the durable scheduler in-process (no subprocess, no fixed
port), submits a job spec through the bundled client, polls it to
completion, streams the records back, and proves the service's core
promise: the bytes that come over the wire are identical to running
the same campaign directly, no server involved.

The job journal lands in a temp directory; peek at it while the
script runs to see the crash-safe layout (`spec.json`, `state.json`,
`records.jsonl` per job).

Run:  PYTHONPATH=src python examples/serve_quickstart.py
"""

import json
import tempfile
import threading
from http.server import ThreadingHTTPServer

from repro.analysis.campaign import run_campaign
from repro.service import ServiceClient, SchedulerService, spec_from_dataset
from repro.service import payload
from repro.service.server import _make_handler


def main() -> None:
    # a small spec: 2 tiny synthetic trees x 2 heuristics x p in {2,4}
    spec = spec_from_dataset(scale="tiny", limit=2, processor_counts=[2, 4])
    print(f"spec: {len(spec['trees'])} tree(s), "
          f"algorithms {spec['campaign']['algorithms']}")

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as root:
        # boot: recover the journal (empty here) and start the executor
        service = SchedulerService(root, workers=2)
        service.start()
        httpd = ThreadingHTTPServer(("127.0.0.1", 0), _make_handler(service))
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        print(f"serving on {base}, journal under {root}/jobs/")

        try:
            client = ServiceClient(base)
            job = client.submit(spec)
            print(f"submitted job {job['id']} -> {job['state']}")

            # a second POST of the same work is a dedupe, not a new job
            again = client.submit(spec)
            assert again["id"] == job["id"]

            done = client.wait(job["id"], timeout=300)
            print(f"settled: {done['state']} with {done['records']} records "
                  f"in {done['elapsed']:.2f}s "
                  f"(respawns={done['respawns']}, retried={done['retried']})")

            served = client.fetch_records(job["id"])
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.drain()

    # the same grid, no server: the record streams must match exactly
    with tempfile.TemporaryDirectory() as tmp:
        ref_path = f"{tmp}/reference.jsonl"
        run_campaign(payload.to_instances(spec), payload.to_campaign(spec),
                     checkpoint=ref_path)
        reference = open(ref_path, "rb").read()
    assert served == reference, "served records diverged from a direct run"
    print(f"byte-identical to a serverless campaign ({len(served)} bytes)")
    first = json.loads(served.split(b"\n")[0])
    print(f"first record: {first['tree']} {first['heuristic']} "
          f"p={first['p']} makespan={first['makespan']:g}")


if __name__ == "__main__":
    main()
