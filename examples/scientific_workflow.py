#!/usr/bin/env python3
"""Scheduling a data-intensive scientific workflow (Section 2.2).

The paper's second motivation: tree-shaped workflows whose edges are
large I/O files (image processing, genomics, geophysics). This example
models a satellite-image reduction pipeline -- tiles are preprocessed,
mosaicked regionally, then merged into one product -- where file sizes
*shrink* going up the tree (reductions) but fan-ins are wide, and shows
how the choice of heuristic changes the RAM footprint on a shared-memory
node.

Run:  python examples/scientific_workflow.py
"""


from repro.core import TaskTree, memory_lower_bound, simulate
from repro.parallel import HEURISTICS, memory_bounded_schedule


def build_workflow(regions: int = 6, tiles_per_region: int = 8) -> TaskTree:
    """Three-level reduction tree with realistic file-size ratios.

    * leaf = preprocess one 512 MB raw tile -> 256 MB cleaned tile
    * middle = mosaic a region's tiles -> 512 MB regional product
    * root = final merge -> 1 GB product
    Sizes in MB; processing time roughly proportional to input volume.
    """
    parents: list[int] = [-1]
    w: list[float] = [regions * 512 / 100]  # root merge
    f: list[float] = [1024.0]
    sizes: list[float] = [64.0]
    for _ in range(regions):
        parents.append(0)  # regional mosaic under the root
        region = len(parents) - 1
        w.append(tiles_per_region * 256 / 100)
        f.append(512.0)
        sizes.append(64.0)
        for _ in range(tiles_per_region):
            parents.append(region)  # tile preprocic under the region
            w.append(512 / 100)
            f.append(256.0)
            sizes.append(32.0)
    return TaskTree.from_parents(parents, w, f, sizes)


def main() -> None:
    tree = build_workflow()
    p = 8
    mseq = memory_lower_bound(tree)
    print(f"workflow: {tree.n} tasks ({tree.n_leaves()} tiles), p = {p}")
    print(f"sequential RAM optimum: {mseq / 1024:.2f} GB\n")
    print(f"{'heuristic':<20s} {'makespan':>10s} {'peak RAM (GB)':>14s} {'x seq':>7s}")
    for name, heuristic in HEURISTICS.items():
        result = simulate(heuristic(tree, p))
        print(
            f"{name:<20s} {result.makespan:>10.4g} "
            f"{result.peak_memory / 1024:>14.2f} "
            f"{result.peak_memory / mseq:>7.2f}"
        )
    # A node with 16 GB of RAM: find the fastest schedule that fits.
    budget_gb = 16.0
    schedule = memory_bounded_schedule(tree, p, cap=budget_gb * 1024)
    result = simulate(schedule)
    print(
        f"\nwith a {budget_gb:.0f} GB RAM budget (capped scheduler): "
        f"makespan {result.makespan:.4g}, "
        f"peak {result.peak_memory / 1024:.2f} GB"
    )


if __name__ == "__main__":
    main()
