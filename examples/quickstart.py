#!/usr/bin/env python3
"""Quickstart: schedule a small task tree and compare the heuristics.

Builds a 15-node tree with mixed weights, runs the paper's four
heuristics on 3 processors, and prints for each the makespan, the peak
memory, and a Gantt chart -- showing the memory/makespan trade-off the
paper is about on the smallest possible example.

Run:  python examples/quickstart.py
"""

from repro.analysis import render_memory_profile, render_tree
from repro.core import TaskTree, makespan_lower_bound, memory_lower_bound, simulate
from repro.parallel import HEURISTICS


def build_tree() -> TaskTree:
    """A small irregular in-tree.

    Node 0 is the root; each node's output file feeds its parent.
    Leaves model input tasks (no input files of their own).
    """
    parents = [-1, 0, 0, 0, 1, 1, 2, 2, 2, 3, 4, 4, 6, 6, 9]
    w = [4, 2, 3, 2, 1, 2, 1, 3, 1, 2, 1, 1, 2, 1, 1]  # processing times
    f = [0, 5, 3, 4, 2, 2, 3, 1, 2, 3, 1, 2, 1, 1, 2]  # output file sizes
    sizes = [1, 1, 0, 2, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1]  # program sizes
    return TaskTree.from_parents(parents, w, f, sizes)


def main() -> None:
    tree = build_tree()
    p = 3
    print(render_tree(tree))
    print(f"\ntree: {tree.n} tasks, total work {tree.total_work():g}, "
          f"critical path {tree.critical_path():g}")
    print(f"lower bounds: memory >= {memory_lower_bound(tree):g}, "
          f"makespan >= {makespan_lower_bound(tree, p):g} on p={p}\n")
    for name, heuristic in HEURISTICS.items():
        schedule = heuristic(tree, p)
        result = simulate(schedule)
        print(f"=== {name}: makespan {result.makespan:g}, "
              f"peak memory {result.peak_memory:g} ===")
        print(schedule.gantt(width=60))
        print(render_memory_profile(schedule, width=60, height=8,
                                    reference=memory_lower_bound(tree)))
        print()


if __name__ == "__main__":
    main()
