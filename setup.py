"""Legacy setup shim.

The offline environment has setuptools but no ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail. Keeping a
``setup.py`` lets ``pip install -e .`` use the legacy develop path.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
