"""Package metadata (kept in ``setup.py`` on purpose).

The offline environment has setuptools but no ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail; a plain
``setup.py`` keeps the legacy ``pip install -e .`` develop path working
and is also what CI uses to install the optional compiled-backend
extra: ``pip install '.[fast]'`` pulls in numba for the engine's
``backend="numba"`` event-sweep kernel (see README, "Optional compiled
backend").
"""

from setuptools import find_packages, setup

setup(
    name="repro-trees",
    version="0.3.0",
    description=(
        "Reproduction of 'Scheduling tree-shaped task graphs to minimize "
        "memory and makespan' (IPDPS 2013)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[
        "numpy",
        "scipy",
        "networkx",
    ],
    extras_require={
        # compiled event-sweep backend for repro.core.engine
        # (backend="numba"); everything works without it, this is a
        # pure speed upgrade -- schedules are bit-identical either way
        "fast": ["numba>=0.57"],
        # parquet segments for the columnar record store (repro pack
        # --store parquet); the jsonl and npz backends need nothing
        "columnar": ["pyarrow"],
        # production event loop for the scheduling service: `repro
        # serve` itself is pure stdlib (http.server); this extra adds
        # uvicorn for running the bundled ASGI app
        # (repro.service.server.build_asgi) instead
        "serve": ["uvicorn>=0.20"],
        "dev": ["pytest", "hypothesis", "ruff"],
    },
    entry_points={"console_scripts": ["repro-trees=repro.cli:main"]},
)
