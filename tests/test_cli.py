"""Smoke tests for the command-line interface."""


from repro.cli import main


class TestCli:
    def test_dataset(self, capsys):
        assert main(["dataset", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "total:" in out

    def test_table1(self, capsys, tmp_path):
        out_path = str(tmp_path / "t1.csv")
        assert (
            main(
                [
                    "table1",
                    "--scale",
                    "tiny",
                    "--processors",
                    "2",
                    "--output",
                    out_path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ParSubtrees" in out
        with open(out_path) as fh:
            assert fh.readline().startswith("heuristic,")

    def test_figure6(self, capsys):
        assert main(["figure", "--which", "6", "--scale", "tiny", "--processors", "2"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_figure7(self, capsys):
        assert main(["figure", "--which", "7", "--scale", "tiny", "--processors", "2"]) == 0
        assert "ParSubtrees" in capsys.readouterr().out

    def test_theory(self, capsys):
        assert main(["theory"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out
        assert "Figure 5" in out

    def test_memory_cap(self, capsys):
        assert main(["memory-cap", "--scale", "tiny", "--limit", "2", "--processors", "4"]) == 0
        assert "cap/Mseq" in capsys.readouterr().out

    def test_shapes(self, capsys):
        assert main(["shapes", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "paper range" in out
        assert "max degree" in out

    def test_pareto(self, capsys):
        assert main(["pareto", "--scale", "tiny", "--limit", "1", "--processors", "4"]) == 0
        out = capsys.readouterr().out
        assert "front of" in out
        assert "makespan" in out

    def test_report(self, tmp_path, capsys):
        out_path = str(tmp_path / "exp.md")
        assert (
            main(["report", "--scale", "tiny", "--processors", "2", "--output", out_path]) == 0
        )
        capsys.readouterr()
        text = open(out_path).read()
        assert "Table 1" in text
        assert "Figure 6" in text
        assert "(paper)" in text

    def test_records_json_output(self, tmp_path, capsys):
        out_path = str(tmp_path / "records.json")
        main(["table1", "--scale", "tiny", "--processors", "2", "--output", out_path])
        capsys.readouterr()
        from repro.analysis import load_records

        records = load_records(out_path)
        assert records

    def test_campaign(self, tmp_path, capsys):
        ckpt = str(tmp_path / "campaign.jsonl")
        argv = [
            "campaign",
            "--scale",
            "tiny",
            "--algos",
            "ParDeepestFirst,MemoryBounded",
            "--procs",
            "2,4",
            "--caps",
            "1.5,2.0",
            "--limit",
            "2",
            "--resume",
            ckpt,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "MemoryBounded@cap1.5" in out
        assert "ParDeepestFirst" in out
        blob = open(ckpt, "rb").read()
        from repro.analysis import load_records

        assert len(load_records(ckpt)) == 2 * 2 * 3  # trees x p x labels
        # re-running the same command resumes and leaves the bytes alone
        assert main(argv) == 0
        capsys.readouterr()
        assert open(ckpt, "rb").read() == blob

    def test_campaign_resume_with_separate_output(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt.jsonl")
        out = str(tmp_path / "results.jsonl")
        assert (
            main(
                [
                    "campaign",
                    "--scale",
                    "tiny",
                    "--algos",
                    "ParSubtrees",
                    "--procs",
                    "2",
                    "--limit",
                    "1",
                    "--resume",
                    ckpt,
                    "--output",
                    out,
                ]
            )
            == 0
        )
        capsys.readouterr()
        from repro.analysis import load_records

        assert load_records(out) == load_records(ckpt)

    def test_campaign_supervised_report_and_fault_plan(self, tmp_path, capsys):
        """--supervise + hidden --fault-plan: the injected compile
        failure degrades the backend, the checkpoint matches the
        unsupervised run byte-for-byte, and --report prints the
        supervised digest."""
        base = [
            "campaign",
            "--scale",
            "tiny",
            "--algos",
            "ParDeepestFirst,ParSubtrees",
            "--procs",
            "2,4",
            "--limit",
            "2",
        ]
        plain = str(tmp_path / "plain.jsonl")
        assert main(base + ["--resume", plain]) == 0
        capsys.readouterr()
        supervised = str(tmp_path / "supervised.jsonl")
        assert (
            main(
                base
                + [
                    "--resume",
                    supervised,
                    "--supervise",
                    "--report",
                    "--fault-plan",
                    '{"faults": [{"kind": "compile_failure"}]}',
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "supervised run:" in captured.out
        assert "[supervised]" in captured.err
        assert open(plain, "rb").read() == open(supervised, "rb").read()

    def test_campaign_bad_fault_plan_rejected(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--scale",
                    "tiny",
                    "--algos",
                    "ParSubtrees",
                    "--fault-plan",
                    "{broken",
                ]
            )
            == 2
        )
        assert "--fault-plan" in capsys.readouterr().err

    def test_campaign_all_algos_and_unknown(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--scale",
                    "tiny",
                    "--algos",
                    "all",
                    "--procs",
                    "2",
                    "--limit",
                    "1",
                ]
            )
            == 0
        )
        assert "MemoryAwareSubtrees" in capsys.readouterr().out
        assert main(["campaign", "--scale", "tiny", "--algos", "Nope"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err
