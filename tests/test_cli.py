"""Smoke tests for the command-line interface."""


from repro.cli import main


class TestCli:
    def test_dataset(self, capsys):
        assert main(["dataset", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "total:" in out

    def test_table1(self, capsys, tmp_path):
        out_path = str(tmp_path / "t1.csv")
        assert (
            main(
                [
                    "table1",
                    "--scale",
                    "tiny",
                    "--processors",
                    "2",
                    "--output",
                    out_path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ParSubtrees" in out
        with open(out_path) as fh:
            assert fh.readline().startswith("heuristic,")

    def test_figure6(self, capsys):
        assert main(["figure", "--which", "6", "--scale", "tiny", "--processors", "2"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_figure7(self, capsys):
        assert main(["figure", "--which", "7", "--scale", "tiny", "--processors", "2"]) == 0
        assert "ParSubtrees" in capsys.readouterr().out

    def test_theory(self, capsys):
        assert main(["theory"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out
        assert "Figure 5" in out

    def test_memory_cap(self, capsys):
        assert main(["memory-cap", "--scale", "tiny", "--limit", "2", "--processors", "4"]) == 0
        assert "cap/Mseq" in capsys.readouterr().out

    def test_shapes(self, capsys):
        assert main(["shapes", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "paper range" in out
        assert "max degree" in out

    def test_pareto(self, capsys):
        assert main(["pareto", "--scale", "tiny", "--limit", "1", "--processors", "4"]) == 0
        out = capsys.readouterr().out
        assert "front of" in out
        assert "makespan" in out

    def test_report(self, tmp_path, capsys):
        out_path = str(tmp_path / "exp.md")
        assert (
            main(["report", "--scale", "tiny", "--processors", "2", "--output", out_path]) == 0
        )
        capsys.readouterr()
        text = open(out_path).read()
        assert "Table 1" in text
        assert "Figure 6" in text
        assert "(paper)" in text

    def test_records_json_output(self, tmp_path, capsys):
        out_path = str(tmp_path / "records.json")
        main(["table1", "--scale", "tiny", "--processors", "2", "--output", out_path])
        capsys.readouterr()
        from repro.analysis import load_records

        records = load_records(out_path)
        assert records
