"""Tests for Liu's optimal postorder: certified against brute force."""

import numpy as np
from hypothesis import given, settings

from repro.core.tree import TaskTree
from repro.sequential.bruteforce import best_postorder_bruteforce
from repro.sequential.postorder import natural_postorder, optimal_postorder, postorder_peaks
from repro.sequential.traversal import check_topological, traversal_peak_memory
from tests.conftest import task_trees


class TestKnownInstances:
    def test_leaf(self):
        t = TaskTree.from_parents([-1], f=7.0, sizes=2.0)
        res = optimal_postorder(t)
        assert res.peak_memory == 9.0

    def test_chain(self, chain5):
        assert optimal_postorder(chain5).peak_memory == 2.0

    def test_star(self, star5):
        assert optimal_postorder(star5).peak_memory == 5.0

    def test_child_order_matters(self):
        """Two subtrees: one with big peak/small output, one small peak.

        Processing the big-peak child first is strictly better.
        """
        #     0
        #    / \
        #   1   2        subtree 1 peaks high (children 3,4), f1 small
        #  /|
        # 3 4
        t = TaskTree.from_parents(
            [-1, 0, 0, 1, 1], w=1.0, f=[1, 1, 5, 6, 6], sizes=0.0
        )
        res = optimal_postorder(t)
        # best: child 1 first (peak 13), then 2 (1+5=6), root: 1+5+1=7
        assert res.peak_memory == 13.0
        bf = best_postorder_bruteforce(t)
        assert bf.peak_memory == 13.0

    def test_peaks_vector_root_matches(self, paper_example):
        peaks = postorder_peaks(paper_example)
        res = optimal_postorder(paper_example)
        assert peaks[paper_example.root] == res.peak_memory

    def test_deep_tree_iterative(self):
        n = 30_000
        t = TaskTree.from_parents([-1] + list(range(n - 1)), f=1.0)
        res = optimal_postorder(t)
        assert res.peak_memory == 2.0
        assert len(res.order) == n


class TestOptimality:
    @given(task_trees(max_nodes=9))
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce_postorder(self, tree):
        """The recurrence equals exhaustive search over all postorders."""
        res = optimal_postorder(tree)
        bf = best_postorder_bruteforce(tree)
        assert abs(res.peak_memory - bf.peak_memory) < 1e-9

    @given(task_trees())
    @settings(max_examples=60, deadline=None)
    def test_order_realizes_reported_peak(self, tree):
        res = optimal_postorder(tree)
        check_topological(tree, res.order)
        assert abs(traversal_peak_memory(tree, res.order) - res.peak_memory) < 1e-9

    @given(task_trees())
    @settings(max_examples=60, deadline=None)
    def test_never_worse_than_natural_postorder(self, tree):
        assert (
            optimal_postorder(tree).peak_memory
            <= natural_postorder(tree).peak_memory + 1e-9
        )

    @given(task_trees())
    @settings(max_examples=40, deadline=None)
    def test_beats_random_postorders(self, tree):
        """Any shuffled-children postorder is at least as expensive."""
        rng = np.random.default_rng(0)
        best = optimal_postorder(tree).peak_memory
        for _ in range(5):
            order = []
            stack = [(tree.root, 0)]
            shuffled = {
                i: list(rng.permutation(tree.children(i).tolist()).astype(int))
                for i in range(tree.n)
            }
            while stack:
                node, cur = stack.pop()
                kids = shuffled[node]
                if cur < len(kids):
                    stack.append((node, cur + 1))
                    stack.append((kids[cur], 0))
                else:
                    order.append(node)
            assert best <= traversal_peak_memory(tree, order) + 1e-9
