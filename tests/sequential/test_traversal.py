"""Unit tests for traversal evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.tree import TaskTree
from repro.sequential.traversal import (
    check_topological,
    traversal_peak_memory,
    traversal_profile,
)
from tests.conftest import task_trees


class TestProfile:
    def test_chain_profile(self, chain5):
        during, after = traversal_profile(chain5, [4, 3, 2, 1, 0])
        # pebble chain: during = [1,2,2,2,2], after = [1,1,1,1,1]
        assert list(during) == [1, 2, 2, 2, 2]
        assert list(after) == [1, 1, 1, 1, 1]

    def test_star_profile(self, star5):
        during, after = traversal_profile(star5, [1, 2, 3, 4, 0])
        assert list(during) == [1, 2, 3, 4, 5]
        assert after[-1] == 1.0

    def test_execution_files(self):
        t = TaskTree.from_parents([-1, 0], w=1.0, f=[1.0, 2.0], sizes=[5.0, 3.0])
        during, after = traversal_profile(t, [1, 0])
        assert during[0] == 3 + 2  # leaf: size + f
        assert after[0] == 2.0
        assert during[1] == 2 + 5 + 1  # input + size + own f
        assert after[1] == 1.0

    def test_peak_is_max_during(self, paper_example):
        order = paper_example.postorder()
        during, _ = traversal_profile(paper_example, order)
        assert traversal_peak_memory(paper_example, order) == during.max()


class TestTopologicalCheck:
    def test_accepts_postorder(self, paper_example):
        check_topological(paper_example, paper_example.postorder())

    def test_rejects_parent_first(self, chain5):
        with pytest.raises(ValueError, match="after parent"):
            check_topological(chain5, [0, 1, 2, 3, 4])

    def test_rejects_duplicates(self, chain5):
        with pytest.raises(ValueError, match="permutation"):
            check_topological(chain5, [4, 4, 3, 2, 1])

    def test_rejects_short(self, chain5):
        with pytest.raises(ValueError, match="permutation"):
            check_topological(chain5, [4, 3, 2])

    def test_peak_with_check(self, chain5):
        with pytest.raises(ValueError):
            traversal_peak_memory(chain5, [0, 1, 2, 3, 4], check=True)


class TestProperties:
    @given(task_trees())
    @settings(max_examples=60, deadline=None)
    def test_profile_nonnegative_and_conserving(self, tree):
        order = tree.postorder()
        during, after = traversal_profile(tree, order)
        assert np.all(during >= 0)
        assert np.all(after >= -1e-9)
        assert abs(after[-1] - tree.f[tree.root]) < 1e-9
        # `during` exceeds `after` by the program size plus freed inputs.
        assert np.all(during >= after - 1e-9)
