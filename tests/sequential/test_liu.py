"""Tests for Liu's exact optimal traversal: certified against brute force."""

from hypothesis import given, settings

from repro.core.tree import TaskTree
from repro.sequential.bruteforce import best_traversal_bruteforce
from repro.sequential.liu import Segment, hill_valley_segments, liu_optimal_traversal
from repro.sequential.postorder import optimal_postorder
from repro.sequential.traversal import check_topological, traversal_peak_memory
from tests.conftest import task_trees


class TestHillValleySegments:
    def test_single_leaf(self):
        t = TaskTree.from_parents([-1], f=3.0, sizes=2.0)
        segs = hill_valley_segments(t, [0])
        assert len(segs) == 1
        assert segs[0].hill == 5.0
        assert segs[0].valley == 3.0
        assert segs[0].drop == 2.0

    def test_segments_cover_order(self, paper_example):
        order = list(paper_example.postorder())
        segs = hill_valley_segments(paper_example, order)
        flattened = [n for s in segs for n in s.nodes]
        assert flattened == order

    def test_invariants_hills_decrease_valleys_increase(self, paper_example):
        segs = hill_valley_segments(paper_example, list(paper_example.postorder()))
        hills = [s.hill for s in segs]
        valleys = [s.valley for s in segs]
        assert hills == sorted(hills, reverse=True)
        assert valleys == sorted(valleys)
        drops = [s.drop for s in segs]
        assert drops == sorted(drops, reverse=True)

    @given(task_trees())
    @settings(max_examples=60, deadline=None)
    def test_invariants_random(self, tree):
        segs = hill_valley_segments(tree, list(tree.postorder()))
        for a, b in zip(segs[:-1], segs[1:]):
            assert a.hill >= b.hill - 1e-9
            assert a.valley <= b.valley + 1e-9
            assert a.drop >= b.drop - 1e-9
        for s in segs:
            assert s.hill >= s.valley - 1e-9
            assert isinstance(s, Segment)


class TestKnownInstances:
    def test_chain(self, chain5):
        assert liu_optimal_traversal(chain5).peak_memory == 2.0

    def test_interleaving_beats_postorder(self):
        """The classic case where the optimal traversal is not a postorder.

        Two subtrees whose partial processing can be interleaved so that
        large temporary files never coexist.
        """
        #        0
        #      /   \
        #     1     2
        #     |     |
        #     3     4
        # Child chains with a huge mid-file: process 3 (peak 10, leaves
        # f=1), then 4 (1+10), then 1, then 2 -- interleaving chains
        # beats any postorder when sizes are right.
        t = TaskTree.from_parents(
            [-1, 0, 0, 1, 2],
            w=1.0,
            f=[1.0, 1.0, 1.0, 10.0, 10.0],
            sizes=0.0,
        )
        po = optimal_postorder(t).peak_memory
        liu = liu_optimal_traversal(t).peak_memory
        assert liu <= po
        bf = best_traversal_bruteforce(t)
        assert abs(liu - bf.peak_memory) < 1e-9

    def test_pebble_star(self, star5):
        assert liu_optimal_traversal(star5).peak_memory == 5.0


class TestOptimality:
    @given(task_trees(max_nodes=9))
    @settings(max_examples=50, deadline=None)
    def test_matches_bruteforce_all_orders(self, tree):
        """Liu's algorithm equals exhaustive search over all topological
        orders -- the strongest possible certificate."""
        liu = liu_optimal_traversal(tree)
        bf = best_traversal_bruteforce(tree)
        assert abs(liu.peak_memory - bf.peak_memory) < 1e-9

    @given(task_trees())
    @settings(max_examples=50, deadline=None)
    def test_never_worse_than_postorder(self, tree):
        assert (
            liu_optimal_traversal(tree).peak_memory
            <= optimal_postorder(tree).peak_memory + 1e-9
        )

    @given(task_trees())
    @settings(max_examples=50, deadline=None)
    def test_order_is_topological_and_realizes_peak(self, tree):
        res = liu_optimal_traversal(tree)
        check_topological(tree, res.order)
        assert abs(traversal_peak_memory(tree, res.order) - res.peak_memory) < 1e-9

    def test_deep_tree_iterative(self):
        n = 5_000
        t = TaskTree.from_parents([-1] + list(range(n - 1)), f=1.0)
        res = liu_optimal_traversal(t)
        assert res.peak_memory == 2.0
        assert len(res.order) == n
