"""Golden-equivalence tests: CSR core + vectorized sequential traversals.

The seed (pre-CSR) implementations of the TaskTree sweeps,
``traversal_profile``, ``postorder_peaks`` / ``optimal_postorder`` and
``liu_optimal_traversal`` are embedded below verbatim (adapted only to
read children from the parent vector instead of the removed
tuple-of-tuples cache). Every rewritten code path must reproduce their
outputs **bit for bit** -- identical traversal orders, identical float
peaks -- across shapes that exercise both the level-synchronous
vectorized sweeps and the deep-tree fallbacks: random attachment trees,
chains, stars, caterpillars, complete k-ary trees and hypothesis-random
weighted trees.
"""

from __future__ import annotations

import heapq

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.tree import NO_PARENT, TaskTree
from repro.sequential.liu import hill_valley_segments, liu_optimal_traversal
from repro.sequential.postorder import optimal_postorder, postorder_peaks
from repro.sequential.traversal import traversal_profile
from repro.workloads.synthetic import (
    caterpillar,
    complete_kary_tree,
    random_weighted_tree,
)
from tests.conftest import task_trees


# ----------------------------------------------------------------------
# the seed implementations, embedded for a stable baseline
# ----------------------------------------------------------------------
def seed_children(tree: TaskTree) -> tuple[tuple[int, ...], ...]:
    """The seed's per-node children lists (index order)."""
    children: list[list[int]] = [[] for _ in range(tree.n)]
    for i, p in enumerate(tree.parent.tolist()):
        if p != NO_PARENT:
            children[p].append(i)
    return tuple(tuple(c) for c in children)


def seed_postorder(tree: TaskTree, kids: tuple[tuple[int, ...], ...]) -> np.ndarray:
    """The seed's construction-time DFS postorder."""
    root = int(np.flatnonzero(tree.parent == NO_PARENT)[0])
    out: list[int] = []
    stack: list[int] = [root]
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(kids[node])
    assert len(out) == tree.n
    out.reverse()
    return np.asarray(out, dtype=np.int64)


def seed_subtree_nodes(tree: TaskTree, kids, i: int) -> np.ndarray:
    out: list[int] = []
    stack = [i]
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(kids[node])
    return np.asarray(out, dtype=np.int64)


def seed_input_size(tree: TaskTree, kids, i: int) -> float:
    return float(sum(tree.f[j] for j in kids[i]))


def seed_traversal_profile(tree: TaskTree, kids, order):
    order = np.asarray(list(order), dtype=np.int64)
    m = order.shape[0]
    during = np.empty(m, dtype=np.float64)
    after = np.empty(m, dtype=np.float64)
    mem = 0.0
    for k, node in enumerate(order):
        node = int(node)
        inputs = seed_input_size(tree, kids, node)
        during[k] = mem + tree.sizes[node] + tree.f[node]
        mem = mem + tree.f[node] - inputs
        after[k] = mem
    return during, after


def seed_postorder_peaks(tree: TaskTree, kids, porder) -> np.ndarray:
    n = tree.n
    peaks = np.zeros(n, dtype=np.float64)
    for i in porder:
        i = int(i)
        children = kids[i]
        if not children:
            peaks[i] = tree.sizes[i] + tree.f[i]
            continue
        ordered = sorted(children, key=lambda j: peaks[j] - tree.f[j], reverse=True)
        acc = 0.0
        best = 0.0
        for j in ordered:
            best = max(best, acc + peaks[j])
            acc += tree.f[j]
        best = max(best, acc + tree.sizes[i] + tree.f[i])
        peaks[i] = best
    return peaks


def seed_optimal_postorder(tree: TaskTree, kids, porder):
    peaks = seed_postorder_peaks(tree, kids, porder)
    n = tree.n
    order = np.empty(n, dtype=np.int64)
    idx = 0
    root = int(np.flatnonzero(tree.parent == NO_PARENT)[0])
    sorted_children: dict[int, list[int]] = {}
    stack: list[tuple[int, int]] = [(root, 0)]
    while stack:
        node, cursor = stack.pop()
        if node not in sorted_children:
            sorted_children[node] = sorted(
                kids[node], key=lambda j: peaks[j] - tree.f[j], reverse=True
            )
        children = sorted_children[node]
        if cursor < len(children):
            stack.append((node, cursor + 1))
            stack.append((children[cursor], 0))
        else:
            del sorted_children[node]
            order[idx] = node
            idx += 1
    return order, float(peaks[root])


class _SeedSegment:
    __slots__ = ("hill", "valley", "nodes")

    def __init__(self, hill, valley, nodes):
        self.hill = hill
        self.valley = valley
        self.nodes = nodes

    @property
    def drop(self):
        return self.hill - self.valley


def seed_hill_valley_segments(tree: TaskTree, kids, order):
    during, after = seed_traversal_profile(tree, kids, order)
    segments = []
    start = 0
    m = len(order)
    while start < m:
        rel_h = int(np.argmax(during[start:])) + start
        rel_v = int(np.argmin(after[rel_h:])) + rel_h
        segments.append(
            _SeedSegment(
                hill=float(during[rel_h]),
                valley=float(after[rel_v]),
                nodes=tuple(order[start : rel_v + 1]),
            )
        )
        start = rel_v + 1
    return segments


def seed_liu_optimal_traversal(tree: TaskTree, kids, porder):
    def merge(child_segments):
        heap = []
        for c, segs in enumerate(child_segments):
            if segs:
                heapq.heappush(heap, (-segs[0].drop, c, 0))
        merged: list[int] = []
        while heap:
            _, c, k = heapq.heappop(heap)
            merged.extend(child_segments[c][k].nodes)
            if k + 1 < len(child_segments[c]):
                heapq.heappush(heap, (-child_segments[c][k + 1].drop, c, k + 1))
        return merged

    n = tree.n
    orders: dict[int, list[int]] = {}
    segments: dict[int, list[_SeedSegment]] = {}
    for i in porder:
        i = int(i)
        children = kids[i]
        if not children:
            order = [i]
        else:
            order = merge([segments[c] for c in children])
            order.append(i)
            for c in children:
                del orders[c], segments[c]
        orders[i] = order
        segments[i] = seed_hill_valley_segments(tree, kids, order)
    root = int(np.flatnonzero(tree.parent == NO_PARENT)[0])
    root_order = orders[root]
    peak = max(s.hill for s in segments[root])
    assert len(root_order) == n
    return np.asarray(root_order, dtype=np.int64), float(peak)


# ----------------------------------------------------------------------
# the tree zoo: shapes that hit both vectorized and fallback paths
# ----------------------------------------------------------------------
def _zoo() -> list[TaskTree]:
    rng = np.random.default_rng(20130520)
    trees = [
        TaskTree.from_parents([-1]),  # single node
        TaskTree.from_parents([-1] + list(range(199))),  # deep chain (fallback)
        TaskTree.from_parents([-1] + [0] * 199),  # star
        TaskTree.from_parents(caterpillar(30, 3)),
        TaskTree.from_parents(complete_kary_tree(5, 3)),
    ]
    for n in (50, 200, 700):
        for bias in (0.0, 4.0, -4.0):
            trees.append(random_weighted_tree(n, rng, bias))
    # equal-weight trees exercise every tie-breaking path
    trees.append(random_weighted_tree(300, rng, 0.0, max_w=1, max_f=1, max_size=0))
    # irrational float weights: summation-order differences would show up
    # here, so this pins that the vectorized kernels perform the exact
    # addition sequence of the seed loops (not just exact-integer luck)
    for n in (120, 400):
        base = random_weighted_tree(n, rng)
        trees.append(
            base.with_weights(
                w=rng.random(n) * 7,
                f=rng.random(n) * 5,
                sizes=rng.random(n) * 3,
            )
        )
    return trees


ZOO = _zoo()


# ----------------------------------------------------------------------
# golden equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tree", ZOO, ids=lambda t: f"n{t.n}h{t.height()}")
class TestGoldenCore:
    def test_children_match_seed(self, tree):
        kids = seed_children(tree)
        for i in range(tree.n):
            assert tree.children(i).tolist() == list(kids[i])
            assert tree.degree(i) == len(kids[i])
            assert tree.is_leaf(i) == (not kids[i])

    def test_postorder_bit_identical(self, tree):
        kids = seed_children(tree)
        assert np.array_equal(tree.postorder(), seed_postorder(tree, kids))

    def test_subtree_nodes_bit_identical(self, tree):
        kids = seed_children(tree)
        probe = range(tree.n) if tree.n <= 64 else range(0, tree.n, 17)
        for i in probe:
            assert np.array_equal(tree.subtree_nodes(i), seed_subtree_nodes(tree, kids, i))

    def test_completion_frees_bit_identical(self, tree):
        """The capped engine's free-on-completion sizes must keep the
        seed's child-by-child float association (((n_i+f_1)+f_2)...),
        not n_i + sum(f) -- those differ by an ulp for fractional f."""
        kids = seed_children(tree)
        ref = tree.sizes.copy()
        for i in range(tree.n):
            for j in kids[i]:
                ref[i] += tree.f[j]
        assert np.array_equal(tree.completion_frees(), ref)

    def test_input_sizes_bit_identical(self, tree):
        kids = seed_children(tree)
        got = tree.input_sizes()
        for i in range(tree.n):
            assert got[i] == seed_input_size(tree, kids, i)
            assert tree.processing_memory(i) == (
                seed_input_size(tree, kids, i) + float(tree.sizes[i]) + float(tree.f[i])
            )


@pytest.mark.parametrize("tree", ZOO, ids=lambda t: f"n{t.n}h{t.height()}")
class TestGoldenTraversals:
    def test_profile_bit_identical(self, tree):
        kids = seed_children(tree)
        order = tree.postorder()
        during, after = traversal_profile(tree, order)
        s_during, s_after = seed_traversal_profile(tree, kids, order)
        assert np.array_equal(during, s_during)
        assert np.array_equal(after, s_after)

    def test_postorder_peaks_bit_identical(self, tree):
        kids = seed_children(tree)
        porder = seed_postorder(tree, kids)
        assert np.array_equal(
            postorder_peaks(tree), seed_postorder_peaks(tree, kids, porder)
        )

    def test_optimal_postorder_bit_identical(self, tree):
        kids = seed_children(tree)
        porder = seed_postorder(tree, kids)
        ref_order, ref_peak = seed_optimal_postorder(tree, kids, porder)
        got = optimal_postorder(tree)
        assert np.array_equal(got.order, ref_order)
        assert got.peak_memory == ref_peak

    def test_hill_valley_segments_bit_identical(self, tree):
        kids = seed_children(tree)
        order = tree.postorder()
        got = hill_valley_segments(tree, order)
        ref = seed_hill_valley_segments(tree, kids, list(order))
        assert len(got) == len(ref)
        for g, r in zip(got, ref):
            assert g.hill == r.hill
            assert g.valley == r.valley
            assert g.nodes.tolist() == list(r.nodes)

    def test_liu_bit_identical(self, tree):
        kids = seed_children(tree)
        porder = seed_postorder(tree, kids)
        ref_order, ref_peak = seed_liu_optimal_traversal(tree, kids, porder)
        got = liu_optimal_traversal(tree)
        assert np.array_equal(got.order, ref_order)
        assert got.peak_memory == ref_peak


class TestGoldenHypothesis:
    @given(task_trees())
    @settings(max_examples=60, deadline=None)
    def test_core_and_traversals(self, tree):
        kids = seed_children(tree)
        porder = seed_postorder(tree, kids)
        assert np.array_equal(tree.postorder(), porder)
        for i in range(tree.n):
            assert tree.children(i).tolist() == list(kids[i])
        assert np.array_equal(
            postorder_peaks(tree), seed_postorder_peaks(tree, kids, porder)
        )
        ref_order, ref_peak = seed_optimal_postorder(tree, kids, porder)
        got = optimal_postorder(tree)
        assert np.array_equal(got.order, ref_order)
        assert got.peak_memory == ref_peak
        liu_order, liu_peak = seed_liu_optimal_traversal(tree, kids, porder)
        got_liu = liu_optimal_traversal(tree)
        assert np.array_equal(got_liu.order, liu_order)
        assert got_liu.peak_memory == liu_peak

    @given(task_trees(max_nodes=40))
    @settings(max_examples=40, deadline=None)
    def test_subtree_extraction(self, tree):
        kids = seed_children(tree)
        for i in (0, tree.n // 2, tree.n - 1):
            nodes_ref = seed_subtree_nodes(tree, kids, i)
            sub, nodes = tree.subtree(i)
            assert np.array_equal(nodes, nodes_ref)
            # seed remap: parent of new node k is the position of its old
            # parent within ``nodes``
            remap = {int(old): new for new, old in enumerate(nodes_ref)}
            for new, old in enumerate(nodes_ref.tolist()):
                if old == i:
                    assert sub.parent[new] == NO_PARENT
                else:
                    assert sub.parent[new] == remap[int(tree.parent[old])]
