"""Tests for the exhaustive-search oracles themselves."""

import pytest
from hypothesis import given, settings

from repro.core.tree import TaskTree
from repro.sequential.bruteforce import (
    best_postorder_bruteforce,
    best_traversal_bruteforce,
)
from repro.sequential.traversal import check_topological, traversal_peak_memory
from tests.conftest import task_trees


class TestGuards:
    def test_size_guard_postorder(self):
        t = TaskTree.from_parents([-1] + [0] * 14)
        with pytest.raises(ValueError, match="limited"):
            best_postorder_bruteforce(t)

    def test_size_guard_traversal(self):
        t = TaskTree.from_parents([-1] + [0] * 14)
        with pytest.raises(ValueError, match="limited"):
            best_traversal_bruteforce(t)


class TestOracleConsistency:
    def test_traversal_at_most_postorder(self, chain5):
        bt = best_traversal_bruteforce(chain5)
        bp = best_postorder_bruteforce(chain5)
        assert bt.peak_memory <= bp.peak_memory

    @given(task_trees(max_nodes=7))
    @settings(max_examples=40, deadline=None)
    def test_oracle_orders_valid(self, tree):
        for oracle in (best_postorder_bruteforce, best_traversal_bruteforce):
            res = oracle(tree)
            check_topological(tree, res.order)
            assert abs(
                traversal_peak_memory(tree, res.order) - res.peak_memory
            ) < 1e-9

    @given(task_trees(max_nodes=7))
    @settings(max_examples=40, deadline=None)
    def test_general_never_worse_than_postorder(self, tree):
        bt = best_traversal_bruteforce(tree)
        bp = best_postorder_bruteforce(tree)
        assert bt.peak_memory <= bp.peak_memory + 1e-9

    def test_postorder_bruteforce_on_star_is_tight(self, star5):
        # Any order of a star gives the same peak.
        assert best_postorder_bruteforce(star5).peak_memory == 5.0
        assert best_traversal_bruteforce(star5).peak_memory == 5.0
