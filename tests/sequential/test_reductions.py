"""Tests for the out-tree <-> in-tree reduction (Section 1)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.schedule import Schedule
from repro.core.simulator import peak_memory
from repro.core.tree import NO_PARENT
from repro.sequential.postorder import optimal_postorder
from repro.sequential.reductions import (
    OutTree,
    out_tree_peak_memory,
    out_tree_to_in_tree,
    reverse_schedule,
    schedule_out_tree,
)
from tests.conftest import task_trees


def random_out_tree(tree):
    """View a random TaskTree as an out-tree (g := f)."""
    return OutTree(parent=tree.parent, w=tree.w, g=tree.f, sizes=tree.sizes)


class TestReduction:
    def test_structure_preserved(self, paper_example):
        ot = random_out_tree(paper_example)
        it = out_tree_to_in_tree(ot)
        assert np.array_equal(it.parent, paper_example.parent)
        assert np.array_equal(it.f, paper_example.f)

    def test_rejects_rootless(self):
        with pytest.raises(ValueError, match="root"):
            OutTree(np.array([0, 1]), np.ones(2), np.ones(2), np.zeros(2))


class TestReverseSchedule:
    @given(task_trees(min_nodes=1, max_nodes=30))
    @settings(max_examples=40, deadline=None)
    def test_makespan_preserved(self, tree):
        sch = Schedule.sequential(tree, optimal_postorder(tree).order, p=2)
        rev = reverse_schedule(sch)
        assert abs(rev.makespan - sch.makespan) < 1e-9

    @given(task_trees(min_nodes=2, max_nodes=30))
    @settings(max_examples=40, deadline=None)
    def test_precedence_reversed(self, tree):
        """In reversed time, every parent finishes before its child
        starts -- the out-tree's dependency direction."""
        sch = Schedule.sequential(tree, optimal_postorder(tree).order)
        rev = reverse_schedule(sch)
        rend = rev.start + tree.w
        for i in range(tree.n):
            p = int(tree.parent[i])
            if p != NO_PARENT:
                assert rend[p] <= rev.start[i] + 1e-9

    @given(task_trees(min_nodes=2, max_nodes=30))
    @settings(max_examples=40, deadline=None)
    def test_involution(self, tree):
        sch = Schedule.sequential(tree, optimal_postorder(tree).order)
        double = reverse_schedule(reverse_schedule(sch))
        assert np.allclose(double.start, sch.start)


class TestMemoryEquivalence:
    @given(task_trees(min_nodes=1, max_nodes=25))
    @settings(max_examples=40, deadline=None)
    def test_peak_memory_preserved_under_reversal(self, tree):
        """The paper's Section 1 claim, executable: the out-tree
        execution obtained by reversing time uses exactly the in-tree
        schedule's peak memory."""
        ot = random_out_tree(tree)
        it = out_tree_to_in_tree(ot)
        sch = Schedule.sequential(it, optimal_postorder(it).order, p=2)
        rev = reverse_schedule(sch)
        assert abs(out_tree_peak_memory(ot, rev) - peak_memory(sch)) < 1e-9

    def test_parallel_schedule_equivalence(self, paper_example):
        from repro.parallel import par_deepest_first

        ot = random_out_tree(paper_example)
        it = out_tree_to_in_tree(ot)
        sch = par_deepest_first(it, 3)
        rev = reverse_schedule(sch)
        assert abs(out_tree_peak_memory(ot, rev) - peak_memory(sch)) < 1e-9


class TestScheduleOutTree:
    def test_end_to_end(self, paper_example):
        ot = random_out_tree(paper_example)
        rev, it = schedule_out_tree(ot, p=2)
        # the reversed schedule is an out-tree execution: root first
        root = it.root
        assert rev.start[root] == 0.0
        assert abs(out_tree_peak_memory(ot, rev) - peak_memory(reverse_schedule(rev))) < 1e-9
