"""Tests for the heuristics registry used by the experiment harness."""

from hypothesis import given, settings

from repro.parallel.heuristics import HEURISTICS, evaluate, run_all
from tests.conftest import task_trees


class TestRegistry:
    def test_paper_heuristics_present(self):
        assert list(HEURISTICS) == [
            "ParSubtrees",
            "ParSubtreesOptim",
            "ParInnerFirst",
            "ParDeepestFirst",
        ]

    def test_evaluate_returns_measured_values(self, paper_example):
        r = evaluate("ParSubtrees", paper_example, 2, validate=True)
        assert r.name == "ParSubtrees"
        assert r.makespan > 0
        assert r.peak_memory > 0

    @given(task_trees(min_nodes=2, max_nodes=25))
    @settings(max_examples=20, deadline=None)
    def test_run_all_consistent(self, tree):
        """All four heuristics process the same instance; memory-focused
        heuristics cannot beat the sequential bound and the two list
        schedulers dominate ParSubtrees's makespan prediction order."""
        res = run_all(tree, 3, validate=True)
        assert set(res) == set(HEURISTICS)
        for r in res.values():
            assert r.makespan >= tree.critical_path() - 1e-9
            assert r.makespan <= tree.total_work() + 1e-9
