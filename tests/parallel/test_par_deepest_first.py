"""Tests for ParDeepestFirst (Section 5.3)."""

from hypothesis import given, settings

from repro.core.simulator import simulate
from repro.core.tree import TaskTree
from repro.core.validation import validate_schedule
from repro.parallel.par_deepest_first import par_deepest_first
from repro.pebble.counterexamples import deepest_first_memory_tree
from repro.sequential.postorder import optimal_postorder
from tests.conftest import task_trees


class TestPriorities:
    def test_deepest_leaf_first(self):
        """The start of the weighted critical path runs first."""
        #  0 <- 1 <- 2 (deep chain), 0 <- 3 (shallow leaf)
        t = TaskTree.from_parents([-1, 0, 1, 0], w=[1, 1, 5, 1])
        sch = par_deepest_first(t, 1)
        assert sch.start[2] == 0.0  # w-depth 7: deepest
        assert sch.start[3] > 0.0

    def test_w_weighted_not_hop_depth(self):
        """A heavy shallow leaf beats a light deep leaf."""
        # leaf 3 at depth 1 with w=10 (w-depth 11); chain 1<-2 w-depth 3.
        t = TaskTree.from_parents([-1, 0, 1, 0], w=[1, 1, 1, 10])
        sch = par_deepest_first(t, 1)
        assert sch.start[3] == 0.0


class TestMakespanGuarantee:
    @given(task_trees(min_nodes=2, max_nodes=40))
    @settings(max_examples=40, deadline=None)
    def test_graham_bound(self, tree):
        W, CP = tree.total_work(), tree.critical_path()
        for p in (2, 4, 8):
            sch = par_deepest_first(tree, p)
            validate_schedule(sch)
            assert sch.makespan <= W / p + (1 - 1 / p) * CP + 1e-9

    def test_near_optimal_on_balanced(self):
        """On a balanced binary tree with ample processors the makespan
        hits the critical path exactly."""
        parents = [-1]
        frontier = [0]
        for _ in range(4):
            nxt = []
            for node in frontier:
                for _ in range(2):
                    parents.append(node)
                    nxt.append(len(parents) - 1)
            frontier = nxt
        t = TaskTree.from_parents(parents)
        sch = par_deepest_first(t, 16)
        assert sch.makespan == t.critical_path()


class TestMemoryBlowUp:
    def test_figure5_memory_growth(self):
        """Figure 5: Mseq stays 3, ParDeepestFirst memory ~ #chains."""
        for chains in (4, 8, 16):
            t = deepest_first_memory_tree(chains, 6)
            assert optimal_postorder(t).peak_memory == 3.0
            sim = simulate(par_deepest_first(t, chains))
            assert sim.peak_memory >= chains  # unbounded vs Mseq = 3
