"""Tests for the memory-capped scheduler (the future-work extension)."""

import pytest
from hypothesis import given, settings

from repro.core.simulator import simulate
from repro.core.validation import validate_schedule
from repro.parallel.memory_bounded import MemoryCapError, memory_bounded_schedule
from repro.sequential.postorder import optimal_postorder
from tests.conftest import task_trees


class TestFeasibility:
    @given(task_trees(min_nodes=1, max_nodes=40))
    @settings(max_examples=40, deadline=None)
    def test_strict_feasible_at_mseq(self, tree):
        """Strict mode is deadlock-free whenever cap >= the sequential
        peak of the activation order -- the guarantee proved in the
        module docstring."""
        cap = optimal_postorder(tree).peak_memory
        for p in (1, 2, 4):
            sch = memory_bounded_schedule(tree, p, cap)
            validate_schedule(sch)
            sim = simulate(sch)
            assert sim.peak_memory <= cap + 1e-9

    @given(task_trees(min_nodes=1, max_nodes=30))
    @settings(max_examples=30, deadline=None)
    def test_cap_always_respected(self, tree):
        """Whatever the cap and mode, a returned schedule never exceeds it."""
        mseq = optimal_postorder(tree).peak_memory
        for mode in ("strict", "opportunistic"):
            for factor in (1.0, 1.5, 3.0):
                try:
                    sch = memory_bounded_schedule(
                        tree, 3, factor * mseq, mode=mode
                    )
                except MemoryCapError:
                    assert mode == "opportunistic"  # strict must not fail
                    continue
                assert simulate(sch).peak_memory <= factor * mseq + 1e-9

    def test_infeasible_cap_raises(self, star5):
        with pytest.raises(MemoryCapError, match="infeasible"):
            memory_bounded_schedule(star5, 2, cap=1.0)


class TestTradeOff:
    @given(task_trees(min_nodes=4, max_nodes=40))
    @settings(max_examples=30, deadline=None)
    def test_larger_cap_never_slower(self, tree):
        """The makespan is non-increasing in the cap (more memory can
        only enable more parallelism) -- checked in strict mode where the
        start order is fixed."""
        mseq = optimal_postorder(tree).peak_memory
        spans = []
        for factor in (1.0, 2.0, 8.0):
            sch = memory_bounded_schedule(tree, 4, factor * mseq, mode="strict")
            spans.append(sch.makespan)
        assert spans[0] >= spans[1] - 1e-9
        assert spans[1] >= spans[2] - 1e-9

    @given(task_trees(min_nodes=2, max_nodes=30))
    @settings(max_examples=30, deadline=None)
    def test_tight_cap_serializes(self, tree):
        """With cap = Mseq and p = 1 the schedule is the sequential
        traversal: makespan = total work."""
        cap = optimal_postorder(tree).peak_memory
        sch = memory_bounded_schedule(tree, 1, cap)
        assert abs(sch.makespan - tree.total_work()) < 1e-9


class TestModes:
    def test_opportunistic_at_least_as_parallel(self, star5):
        """With a generous cap both modes parallelise the star fully."""
        for mode in ("strict", "opportunistic"):
            sch = memory_bounded_schedule(star5, 4, cap=100.0, mode=mode)
            assert sch.makespan == 2.0

    def test_unknown_mode_rejected(self, star5):
        with pytest.raises(ValueError, match="unknown mode"):
            memory_bounded_schedule(star5, 2, 10.0, mode="yolo")

    def test_bad_p_rejected(self, star5):
        with pytest.raises(ValueError):
            memory_bounded_schedule(star5, 0, 10.0)
