"""Tests for ParInnerFirst (Section 5.2)."""

from hypothesis import given, settings

from repro.core.simulator import simulate
from repro.core.validation import validate_schedule
from repro.parallel.par_inner_first import par_inner_first
from repro.pebble.counterexamples import inner_first_memory_tree
from repro.sequential.postorder import optimal_postorder
from tests.conftest import task_trees


class TestSequentialEquivalence:
    @given(task_trees(min_nodes=1, max_nodes=30))
    @settings(max_examples=40, deadline=None)
    def test_p1_reproduces_postorder_memory(self, tree):
        """With one processor the parallel postorder rules reduce to the
        reference sequential postorder, so the memory matches."""
        po = optimal_postorder(tree)
        sim = simulate(par_inner_first(tree, 1))
        assert abs(sim.peak_memory - po.peak_memory) < 1e-9
        assert sim.makespan == tree.total_work()


class TestMakespanGuarantee:
    @given(task_trees(min_nodes=2, max_nodes=40))
    @settings(max_examples=40, deadline=None)
    def test_graham_bound(self, tree):
        W, CP = tree.total_work(), tree.critical_path()
        for p in (2, 4, 8):
            sch = par_inner_first(tree, p)
            validate_schedule(sch)
            assert sch.makespan <= W / p + (1 - 1 / p) * CP + 1e-9


class TestMemoryBlowUp:
    def test_figure4_memory_growth(self):
        """Figure 4: memory grows like (k-1)(p-1)+1 while Mseq = p+1."""
        p = 4
        ratios = []
        for k in (4, 8, 16):
            t = inner_first_memory_tree(p, k)
            mseq = optimal_postorder(t).peak_memory
            assert mseq == p + 1
            sim = simulate(par_inner_first(t, p))
            assert sim.peak_memory >= (k - 1) * (p - 1) + 1 - 1e-9
            ratios.append(sim.peak_memory / mseq)
        assert ratios[0] < ratios[1] < ratios[2]  # unbounded growth

    def test_inner_nodes_prioritized(self, star5):
        """Once the root is ready it runs before any pending leaf would."""
        sch = par_inner_first(star5, 2)
        validate_schedule(sch)
        # star: leaves 2 by 2, then root
        assert sch.makespan == 3.0
