"""Tests for SplitSubtrees (Algorithm 2)."""

from hypothesis import given, settings

from repro.core.tree import TaskTree
from repro.parallel.split_subtrees import split_subtrees
from tests.conftest import task_trees


class TestKnownSplits:
    def test_single_node(self):
        t = TaskTree.from_parents([-1], w=2.0)
        res = split_subtrees(t, 4)
        assert res.parallel_roots == (0,)
        assert res.seq_nodes == ()
        assert res.cost == 2.0

    def test_fork_selects_cost1(self, star5):
        """On a fork the best splitting pops the root once (Figure 3)."""
        res = split_subtrees(star5, 2)
        # cost(0) = 5 (whole tree); cost(1) = 1 + 1 + surplus(2 leaves) = 4
        assert res.cost == 4.0
        assert 0 in res.seq_nodes
        assert len(res.parallel_roots) == 2

    def test_fork_paper_formula(self):
        """Figure 3: cost = p(k-1) + 2 on a p*k-leaf fork."""
        for p, k in [(2, 5), (4, 10)]:
            leaves = p * k
            t = TaskTree.from_parents([-1] + [0] * leaves)
            res = split_subtrees(t, p)
            assert res.cost == p * (k - 1) + 2

    def test_balanced_binary(self):
        # root with two equal subtrees: split once, process both in parallel.
        t = TaskTree.from_parents([-1, 0, 0, 1, 1, 2, 2], w=1.0)
        res = split_subtrees(t, 2)
        assert set(res.parallel_roots) == {1, 2}
        assert res.seq_nodes == (0,)
        assert res.cost == 3.0 + 1.0  # subtree work 3 + root

    def test_chain_whole_tree_sequential(self, chain5):
        """A chain cannot be parallelised: cost(0) = W_root is optimal,
        but deeper splits tie; the selected cost must equal W."""
        res = split_subtrees(chain5, 2)
        assert res.cost == 5.0


class TestSplitProperties:
    @given(task_trees(min_nodes=1, max_nodes=40))
    @settings(max_examples=50, deadline=None)
    def test_partition_exact(self, tree):
        """Parallel subtrees and sequential nodes partition the tree."""
        for p in (1, 2, 4):
            res = split_subtrees(tree, p)
            covered = set(res.seq_nodes)
            for r in res.parallel_roots:
                covered.update(int(x) for x in tree.subtree_nodes(r))
            assert covered == set(range(tree.n))
            assert len(res.parallel_roots) <= p

    @given(task_trees(min_nodes=1, max_nodes=40))
    @settings(max_examples=50, deadline=None)
    def test_subtrees_disjoint_and_maximal(self, tree):
        res = split_subtrees(tree, 3)
        seen: set[int] = set()
        for r in res.parallel_roots:
            nodes = set(int(x) for x in tree.subtree_nodes(r))
            assert not (nodes & seen)
            seen |= nodes
        # maximality: the parent of each parallel root is sequential
        for r in res.frontier_roots:
            parent = int(tree.parent[r])
            if parent >= 0:
                assert parent in res.seq_nodes

    @given(task_trees(min_nodes=1, max_nodes=30))
    @settings(max_examples=50, deadline=None)
    def test_cost_formula_consistent(self, tree):
        """cost = max parallel subtree work + sequential work."""
        for p in (2, 4):
            res = split_subtrees(tree, p)
            work = tree.subtree_work()
            par = max((float(work[r]) for r in res.parallel_roots), default=0.0)
            seq = float(sum(tree.w[i] for i in res.seq_nodes))
            surplus = sum(
                float(work[r])
                for r in res.frontier_roots
                if r not in res.parallel_roots
            )
            # seq_nodes includes surplus subtree nodes; cost decomposition:
            assert abs(res.cost - (par + seq)) < 1e-6
            assert surplus <= seq + 1e-9

    @given(task_trees(min_nodes=1, max_nodes=24))
    @settings(max_examples=40, deadline=None)
    def test_cost_not_worse_than_whole_tree(self, tree):
        """Splitting never selected if worse than sequential processing."""
        res = split_subtrees(tree, 4)
        assert res.cost <= tree.total_work() + 1e-9
