"""Tests for the memory-aware ParSubtrees variant."""

import pytest
from hypothesis import given, settings

from repro.core.simulator import simulate
from repro.core.validation import validate_schedule
from repro.parallel.memory_aware_subtrees import (
    par_subtrees_memory_aware,
    predicted_parallel_memory,
)
from repro.parallel.memory_bounded import MemoryCapError
from repro.parallel.par_subtrees import par_subtrees
from repro.sequential.postorder import optimal_postorder
from tests.conftest import task_trees


class TestCapRespected:
    @given(task_trees(min_nodes=2, max_nodes=35))
    @settings(max_examples=30, deadline=None)
    def test_cap_always_respected(self, tree):
        mseq = optimal_postorder(tree).peak_memory
        for factor in (1.0, 2.0, 5.0):
            sch = par_subtrees_memory_aware(tree, 4, cap=factor * mseq)
            validate_schedule(sch)
            assert simulate(sch).peak_memory <= factor * mseq + 1e-9

    def test_infeasible_cap(self, star5):
        with pytest.raises(MemoryCapError, match="infeasible"):
            par_subtrees_memory_aware(star5, 2, cap=2.0)

    def test_bad_cap(self, star5):
        with pytest.raises(ValueError):
            par_subtrees_memory_aware(star5, 2, cap=0.0)


class TestAdaptiveConcurrency:
    def test_tight_cap_degenerates_to_sequential(self):
        """Two pebble chains: concurrent processing needs 4 units while
        the sequential optimum is 3, so cap = 3 forces sequentiality."""
        from repro.core.tree import TaskTree

        t = TaskTree.pebble_game([-1, 0, 1, 2, 0, 4, 5])  # two chains of 3
        mseq = optimal_postorder(t).peak_memory
        assert mseq == 3.0
        sch = par_subtrees_memory_aware(t, 2, cap=mseq)
        assert simulate(sch).peak_memory <= mseq
        assert sch.makespan == t.total_work()  # fully sequential

    def test_loose_cap_parallelises(self):
        """With an ample budget the schedule matches plain ParSubtrees."""
        from repro.core.tree import TaskTree

        t = TaskTree.from_parents([-1, 0, 0, 1, 1, 2, 2], w=1.0)
        generous = par_subtrees_memory_aware(t, 2, cap=1e9)
        plain = par_subtrees(t, 2)
        assert generous.makespan == plain.makespan

    @given(task_trees(min_nodes=3, max_nodes=30))
    @settings(max_examples=25, deadline=None)
    def test_larger_cap_never_slower(self, tree):
        mseq = optimal_postorder(tree).peak_memory
        tight = par_subtrees_memory_aware(tree, 4, cap=mseq).makespan
        loose = par_subtrees_memory_aware(tree, 4, cap=10 * mseq).makespan
        assert loose <= tight + 1e-9


class TestPredictor:
    def test_predictor_monotone_in_q(self, paper_example):
        from repro.parallel.split_subtrees import split_subtrees

        roots = list(split_subtrees(paper_example, 3).frontier_roots)
        if len(roots) >= 2:
            p1 = predicted_parallel_memory(paper_example, roots, 1)
            p2 = predicted_parallel_memory(paper_example, roots, 2)
            assert p2 >= p1
