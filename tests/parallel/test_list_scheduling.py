"""Tests for the generic event-based list scheduler (Algorithm 3)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.tree import TaskTree
from repro.core.validation import validate_schedule
from repro.parallel.list_scheduling import list_schedule, postorder_ranks
from tests.conftest import task_trees


def fifo_priority(i: int) -> tuple:
    return (i,)


class TestBasics:
    def test_single_node(self):
        t = TaskTree.from_parents([-1], w=3.0)
        sch = list_schedule(t, 2, fifo_priority)
        assert sch.makespan == 3.0

    def test_star_parallelism(self, star5):
        sch = list_schedule(star5, 4, fifo_priority)
        validate_schedule(sch)
        assert sch.makespan == 2.0  # 4 leaves in parallel, then root

    def test_star_limited_processors(self, star5):
        sch = list_schedule(star5, 2, fifo_priority)
        assert sch.makespan == 3.0  # 2+2 leaves, then root

    def test_chain_no_parallelism(self, chain5):
        sch = list_schedule(chain5, 8, fifo_priority)
        assert sch.makespan == 5.0  # the critical path

    def test_rejects_bad_p(self, star5):
        with pytest.raises(ValueError):
            list_schedule(star5, 0, fifo_priority)

    def test_priority_respected(self, star5):
        # Reverse priority: leaf 4 should start at t=0 on one processor.
        sch = list_schedule(star5, 1, lambda i: (-i,))
        assert sch.start[4] == 0.0
        assert sch.start[1] == 3.0


class TestListSchedulingProperties:
    @given(task_trees(min_nodes=2, max_nodes=40))
    @settings(max_examples=40, deadline=None)
    def test_valid_and_graham_bound(self, tree):
        """Any list schedule is valid and satisfies Graham's bound
        ``Cmax <= W/p + (1 - 1/p) * CP`` -- the paper's
        (2 - 1/p)-approximation argument for ParInnerFirst/DeepestFirst."""
        W = tree.total_work()
        CP = tree.critical_path()
        for p in (1, 2, 5):
            sch = list_schedule(tree, p, fifo_priority)
            validate_schedule(sch)
            assert sch.makespan <= W / p + (1 - 1 / p) * CP + 1e-9

    @given(task_trees(min_nodes=2, max_nodes=30))
    @settings(max_examples=30, deadline=None)
    def test_no_unforced_idleness(self, tree):
        """Work-conservation: with p=1 the schedule is back-to-back."""
        sch = list_schedule(tree, 1, fifo_priority)
        assert sch.makespan == tree.total_work()

    @given(task_trees(min_nodes=2, max_nodes=30))
    @settings(max_examples=30, deadline=None)
    def test_more_processors_never_hurt_much(self, tree):
        """Monotonic workload: makespan with 2p is at most that with p
        plus slack (list scheduling anomalies are bounded by Graham)."""
        m_many = list_schedule(tree, 16, fifo_priority).makespan
        assert m_many >= tree.critical_path() - 1e-9


class TestPostorderRanks:
    def test_ranks_are_permutation(self, paper_example):
        ranks = postorder_ranks(paper_example)
        assert sorted(ranks) == list(range(paper_example.n))

    def test_explicit_order(self, chain5):
        order = np.array([4, 3, 2, 1, 0])
        ranks = postorder_ranks(chain5, order)
        assert ranks[4] == 0 and ranks[0] == 4

    def test_root_is_last(self, paper_example):
        ranks = postorder_ranks(paper_example)
        assert ranks[paper_example.root] == paper_example.n - 1
