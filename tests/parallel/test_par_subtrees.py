"""Tests for ParSubtrees and ParSubtreesOptim (Section 5.1)."""

from hypothesis import given, settings

from repro.core.simulator import simulate
from repro.core.tree import TaskTree
from repro.core.validation import validate_schedule
from repro.parallel.par_subtrees import par_subtrees, par_subtrees_optim
from repro.parallel.split_subtrees import split_subtrees
from repro.sequential.liu import liu_optimal_traversal
from repro.sequential.postorder import optimal_postorder
from tests.conftest import task_trees


class TestParSubtrees:
    def test_balanced_binary(self):
        t = TaskTree.from_parents([-1, 0, 0, 1, 1, 2, 2], w=1.0)
        sch = par_subtrees(t, 2)
        validate_schedule(sch)
        assert sch.makespan == 4.0  # two 3-node subtrees in parallel + root

    def test_makespan_matches_split_cost(self, paper_example):
        """The realised makespan equals Algorithm 2's cost prediction."""
        for p in (1, 2, 3):
            split = split_subtrees(paper_example, p)
            sch = par_subtrees(paper_example, p, split=split)
            assert abs(sch.makespan - split.cost) < 1e-9

    def test_fork_worst_case(self):
        """Figure 3: makespan p(k-1)+2 on the fork."""
        p, k = 3, 7
        t = TaskTree.from_parents([-1] + [0] * (p * k))
        sch = par_subtrees(t, p)
        assert sch.makespan == p * (k - 1) + 2

    def test_single_processor_is_sequential(self, paper_example):
        sch = par_subtrees(paper_example, 1)
        validate_schedule(sch)
        assert sch.makespan == paper_example.total_work()

    def test_custom_sequential_order(self, paper_example):
        sch = par_subtrees(
            paper_example, 2, sequential_order=lambda t: liu_optimal_traversal(t).order
        )
        validate_schedule(sch)


class TestMemoryGuarantee:
    @given(task_trees(min_nodes=2, max_nodes=40))
    @settings(max_examples=40, deadline=None)
    def test_p_plus_1_memory_bound(self, tree):
        """Section 5.1: peak <= (p+1) * Mseq (+ p max f slack for the
        retained parallel outputs, as in the proof)."""
        mseq = optimal_postorder(tree).peak_memory
        fmax = float(tree.f.max())
        for p in (2, 4):
            sim = simulate(par_subtrees(tree, p))
            assert sim.peak_memory <= (p + 1) * mseq + p * fmax + 1e-6

    @given(task_trees(min_nodes=2, max_nodes=40))
    @settings(max_examples=40, deadline=None)
    def test_valid_all_p(self, tree):
        for p in (1, 2, 5):
            validate_schedule(par_subtrees(tree, p))


class TestParSubtreesOptim:
    def test_improves_fork_makespan(self):
        """On the fork, LPT allocation of all subtrees restores k+1."""
        p, k = 3, 7
        t = TaskTree.from_parents([-1] + [0] * (p * k))
        plain = par_subtrees(t, p).makespan
        optim = par_subtrees_optim(t, p).makespan
        assert optim < plain
        assert optim == k + 1  # pk/p leaves per processor + root

    @given(task_trees(min_nodes=2, max_nodes=40))
    @settings(max_examples=40, deadline=None)
    def test_valid_and_complete(self, tree):
        for p in (2, 4):
            sch = par_subtrees_optim(tree, p)
            validate_schedule(sch)

    @given(task_trees(min_nodes=2, max_nodes=30))
    @settings(max_examples=30, deadline=None)
    def test_never_much_worse_than_plain(self, tree):
        """LPT over the same splitting cannot exceed the plain two-phase
        makespan (it only moves surplus subtrees off the critical
        sequential phase)."""
        for p in (2, 4):
            split = split_subtrees(tree, p)
            plain = par_subtrees(tree, p, split=split).makespan
            optim = par_subtrees_optim(tree, p, split=split).makespan
            assert optim <= plain + 1e-9
