"""Tests for the ablation heuristic variants."""

from hypothesis import given, settings

from repro.core.simulator import simulate
from repro.core.tree import TaskTree
from repro.core.validation import validate_schedule
from repro.parallel.variants import (
    VARIANTS,
    par_hop_deepest_first,
    par_inner_first_naive_order,
)
from tests.conftest import task_trees


class TestValidity:
    @given(task_trees(min_nodes=2, max_nodes=30))
    @settings(max_examples=25, deadline=None)
    def test_variants_emit_valid_schedules(self, tree):
        for _, (_, fn) in VARIANTS.items():
            for p in (1, 3):
                sch = fn(tree, p)
                validate_schedule(sch)
                assert sch.makespan <= tree.total_work() + 1e-9


class TestAblationEffects:
    def test_naive_order_hurts_memory(self):
        """On a tree where the optimal postorder matters, the naive
        variant uses at least as much memory at p=1."""
        from repro.parallel.par_inner_first import par_inner_first

        # big-peak subtree must go first (see sequential postorder tests)
        t = TaskTree.from_parents(
            [-1, 0, 0, 2, 2], w=1.0, f=[1, 5, 1, 6, 6], sizes=0.0
        )
        good = simulate(par_inner_first(t, 1)).peak_memory
        naive = simulate(par_inner_first_naive_order(t, 1)).peak_memory
        assert naive >= good

    def test_hop_depth_misses_critical_path(self):
        """A heavy shallow branch must start early; hop-depth ignores
        that and yields a strictly worse makespan."""
        from repro.parallel.par_deepest_first import par_deepest_first

        # branch A: chain of 2 light nodes (hop-deep), branch B: one
        # heavy leaf (w=10, hop-shallow but critical).
        t = TaskTree.from_parents([-1, 0, 1, 2, 0], w=[1, 1, 1, 1, 10])
        weighted = par_deepest_first(t, 1)
        hops = par_hop_deepest_first(t, 1)
        # with one processor both have makespan = W; compare start of the
        # critical task instead
        assert weighted.start[4] <= hops.start[4]

    def test_hop_variant_leaf_tie_break_regression(self):
        """Pin the fixed inner-node boost of ``par_hop_deepest_first``.

        A historical revision computed the tie-break term as
        ``- (0 if tree.is_leaf(i) else 0)`` -- always zero -- so a ready
        inner node at hop depth d lost to any leaf at depth d+1. With
        the intended boost, inner node 3 (depth 1) runs *before* leaf 2
        (depth 2) once its children complete. The full schedule on this
        heterogeneous tree is pinned for both p=1 and p=2.
        """
        t = TaskTree.from_parents(
            [-1, 0, 1, 0, 3, 3],
            w=[2, 3, 1, 2, 4, 1],
            f=[1, 2, 3, 1, 2, 2],
            sizes=[0, 1, 0, 2, 0, 1],
        )
        serial = par_hop_deepest_first(t, 1)
        # inner node 3 preempts the deeper leaf 2 (the buggy priority
        # ran 2 first); leaf order among equal keys follows sigma.
        assert serial.start[3] < serial.start[2]
        assert serial.start.tolist() == [11.0, 8.0, 7.0, 5.0, 1.0, 0.0]
        two_procs = par_hop_deepest_first(t, 2)
        assert two_procs.start.tolist() == [6.0, 2.0, 1.0, 4.0, 0.0, 0.0]
        assert two_procs.proc.tolist() == [1, 0, 0, 1, 1, 0]

    @given(task_trees(min_nodes=2, max_nodes=25, max_w=9))
    @settings(max_examples=20, deadline=None)
    def test_weighted_depth_never_worse_on_average(self, tree):
        """Graham's bound still holds for the hop variant (it is a list
        schedule), even when it loses to the weighted one."""
        W, CP = tree.total_work(), tree.critical_path()
        for p in (2, 4):
            sch = par_hop_deepest_first(tree, p)
            assert sch.makespan <= W / p + (1 - 1 / p) * CP + 1e-9
