"""Cross-cutting property-based tests: the model's global invariants.

Each test here ties at least two subsystems together; the per-module
suites cover local behaviour, this file certifies that the pieces agree
with one another (and with the paper's theorems) on randomly generated
instances.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.core.bounds import makespan_lower_bound, memory_lower_bound
from repro.core.schedule import Schedule
from repro.core.simulator import peak_memory, simulate
from repro.core.validation import validate_schedule
from repro.parallel import (
    HEURISTICS,
    memory_bounded_schedule,
    par_inner_first,
    par_subtrees,
)
from repro.sequential import (
    liu_optimal_traversal,
    optimal_postorder,
    traversal_peak_memory,
)
from tests.conftest import pebble_trees, task_trees

_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSequentialHierarchy:
    @given(task_trees(max_nodes=20))
    @settings(**_SETTINGS)
    def test_optimum_chain(self, tree):
        """exact optimum <= optimal postorder <= any list schedule's
        memory at p=1 (which realises the same postorder)."""
        exact = liu_optimal_traversal(tree).peak_memory
        postorder = optimal_postorder(tree).peak_memory
        inner = simulate(par_inner_first(tree, 1)).peak_memory
        assert exact <= postorder + 1e-9
        assert abs(postorder - inner) < 1e-9

    @given(task_trees(max_nodes=20))
    @settings(**_SETTINGS)
    def test_memory_bound_is_sequential_floor(self, tree):
        """No schedule, on any p, beats the exact sequential optimum."""
        exact = liu_optimal_traversal(tree).peak_memory
        for p in (1, 2, 4):
            for fn in HEURISTICS.values():
                assert simulate(fn(tree, p)).peak_memory >= exact - 1e-9


class TestScheduleAlgebra:
    @given(task_trees(max_nodes=25))
    @settings(**_SETTINGS)
    def test_any_topological_order_is_valid_schedule(self, tree):
        """Sequential schedules from topological orders always validate,
        and their simulated memory equals the traversal evaluation."""
        for order in (tree.postorder(), optimal_postorder(tree).order):
            sch = Schedule.sequential(tree, order)
            validate_schedule(sch)
            assert abs(
                peak_memory(sch) - traversal_peak_memory(tree, order)
            ) < 1e-9

    @given(task_trees(max_nodes=25))
    @settings(**_SETTINGS)
    def test_heuristics_emit_complete_schedules(self, tree):
        for fn in HEURISTICS.values():
            sch = fn(tree, 3)
            assert np.all(sch.start >= -1e-12)
            assert np.all(sch.proc >= 0)
            # the root finishes last
            assert abs(sch.end[tree.root] - sch.makespan) < 1e-9


class TestBiObjectiveStructure:
    @given(task_trees(min_nodes=2, max_nodes=25))
    @settings(**_SETTINGS)
    def test_bounds_consistent(self, tree):
        """Lower bounds are mutually consistent: the memory bound is
        achievable sequentially; the makespan bound at p=1 is the total
        work and is achieved by every work-conserving heuristic."""
        assert memory_lower_bound(tree, "exact") <= memory_lower_bound(tree) + 1e-9
        lb1 = makespan_lower_bound(tree, 1)
        assert abs(lb1 - tree.total_work()) < 1e-9
        for fn in (par_subtrees, par_inner_first):
            assert abs(simulate(fn(tree, 1)).makespan - lb1) < 1e-9

    @given(task_trees(min_nodes=2, max_nodes=25))
    @settings(**_SETTINGS)
    def test_capped_scheduler_interpolates(self, tree):
        """cap = M_seq gives memory M_seq; a huge cap recovers list-
        scheduling speed (Graham bound)."""
        mseq = optimal_postorder(tree).peak_memory
        p = 3
        tight = simulate(memory_bounded_schedule(tree, p, mseq))
        assert tight.peak_memory <= mseq + 1e-9
        # Strict mode serialises starts, so Graham's bound needs the
        # opportunistic mode, which is a true list scheduler once the
        # cap stops binding.
        loose = memory_bounded_schedule(tree, p, 1e12, mode="opportunistic")
        W, CP = tree.total_work(), tree.critical_path()
        assert loose.makespan <= W / p + (1 - 1 / p) * CP + 1e-9


class TestPebbleModel:
    @given(pebble_trees(min_nodes=2, max_nodes=25))
    @settings(**_SETTINGS)
    def test_integral_memory(self, tree):
        """In the Pebble Game model every measured peak is an integer
        (pebbles are unit files)."""
        for fn in HEURISTICS.values():
            peak = simulate(fn(tree, 2)).peak_memory
            assert peak == int(peak)

    @given(pebble_trees(min_nodes=2, max_nodes=25))
    @settings(**_SETTINGS)
    def test_peak_at_least_max_degree_plus_one(self, tree):
        """Processing the highest-degree node requires all its inputs
        plus its output simultaneously."""
        floor = max(tree.degree(i) for i in range(tree.n)) + 1
        assert liu_optimal_traversal(tree).peak_memory >= floor - 1e-9
