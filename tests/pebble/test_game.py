"""Tests for the explicit pebble-game engine."""

import pytest
from hypothesis import given, settings

from repro.core.simulator import simulate
from repro.core.tree import TaskTree
from repro.parallel import par_deepest_first, par_inner_first
from repro.pebble.game import PebbleGame, PebbleGameError, pebbling_from_schedule
from tests.conftest import pebble_trees


class TestMoves:
    def test_leaf_always_legal(self, star5):
        game = PebbleGame(star5)
        assert game.legal(1)
        assert not game.legal(0)  # root needs its children pebbled

    def test_chain_play(self, chain5):
        game = PebbleGame(chain5)
        for node in (4, 3, 2, 1, 0):
            game.play_step([node])
        assert game.finished()
        assert game.max_pebbles() == 2
        assert game.steps == 5

    def test_star_parallel_play(self, star5):
        game = PebbleGame(star5)
        game.play_step([1, 2, 3, 4], p=4)
        game.play_step([0], p=4)
        assert game.finished()
        assert game.max_pebbles() == 5

    def test_processor_limit(self, star5):
        game = PebbleGame(star5)
        with pytest.raises(PebbleGameError, match="exceed"):
            game.play_step([1, 2, 3], p=2)

    def test_no_repebbling(self, chain5):
        game = PebbleGame(chain5)
        game.play_step([4])
        with pytest.raises(PebbleGameError, match="illegal"):
            game.play_step([4])

    def test_premature_parent_rejected(self, chain5):
        game = PebbleGame(chain5)
        with pytest.raises(PebbleGameError, match="illegal"):
            game.play_step([3])  # child 4 not pebbled yet

    def test_duplicates_rejected(self, star5):
        game = PebbleGame(star5)
        with pytest.raises(PebbleGameError, match="duplicate"):
            game.play_step([1, 1])

    def test_requires_pebble_model(self):
        t = TaskTree.from_parents([-1, 0], w=2.0)
        with pytest.raises(PebbleGameError, match="Pebble Game model"):
            PebbleGame(t)


class TestBridgeToScheduling:
    @given(pebble_trees(min_nodes=2, max_nodes=30))
    @settings(max_examples=40, deadline=None)
    def test_game_peak_equals_simulator_peak(self, tree):
        """The two formalisms agree: pebbles in play == resident files."""
        for p in (1, 2, 4):
            for heuristic in (par_inner_first, par_deepest_first):
                schedule = heuristic(tree, p)
                game = pebbling_from_schedule(schedule)
                sim = simulate(schedule)
                assert game.max_pebbles() == sim.peak_memory
                assert game.finished()

    def test_gadget_schedule_as_pebbling(self):
        """The Theorem 1 witness schedule is a legal pebbling meeting
        the pebble bound."""
        import numpy as np

        from repro.pebble import build_gadget, decide_gadget, random_yes_instance

        gadget = build_gadget(random_yes_instance(2, 12, np.random.default_rng(1)))
        schedule = decide_gadget(gadget)
        game = pebbling_from_schedule(schedule)
        assert game.max_pebbles() == gadget.memory_bound
