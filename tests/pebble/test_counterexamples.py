"""Tests for the Figure 2-5 constructions against the paper's formulas."""

import pytest

from repro.core.simulator import simulate
from repro.parallel import par_deepest_first, par_inner_first, par_subtrees
from repro.pebble.counterexamples import (
    deepest_first_memory_tree,
    fork_tree,
    inapprox_ratio_lower_bound,
    inapproximability_tree,
    inner_first_memory_tree,
)
from repro.sequential.liu import liu_optimal_traversal
from repro.sequential.postorder import optimal_postorder


class TestFigure2:
    @pytest.mark.parametrize("n,delta", [(2, 3), (3, 4), (2, 5), (4, 3)])
    def test_closed_forms(self, n, delta):
        f2 = inapproximability_tree(n, delta)
        t = f2.tree
        # critical path = delta + 2 (unit weights)
        assert t.critical_path() == delta + 2
        # descendants of each cp_1^i: (delta^2 + 5 delta - 4) / 2
        sizes = t.subtree_sizes()
        for c in t.children(t.root):
            assert sizes[c] - 1 == f2.descendants_per_subtree

    @pytest.mark.parametrize("n,delta", [(2, 3), (3, 4)])
    def test_optimal_memory_n_plus_delta(self, n, delta):
        """Liu's exact algorithm achieves the paper's optimal n + delta."""
        f2 = inapproximability_tree(n, delta)
        liu = liu_optimal_traversal(f2.tree)
        assert liu.peak_memory == n + delta

    def test_lower_bound_diverges(self):
        """With delta = n^2 the memory-ratio lower bound diverges, which
        is the contradiction at the heart of Theorem 2."""
        ns = (3, 6, 12, 24, 96)
        values = [inapprox_ratio_lower_bound(n, n * n, alpha=3.0) for n in ns]
        assert all(b > a for a, b in zip(values, values[1:]))
        # lb ~ n/alpha asymptotically: unbounded in n
        assert values[-1] > 25

    def test_rejects_small_delta(self):
        with pytest.raises(ValueError):
            inapproximability_tree(2, 1)


class TestFigure3:
    @pytest.mark.parametrize("p,k", [(2, 4), (3, 5), (4, 8)])
    def test_par_subtrees_worst_case(self, p, k):
        t = fork_tree(p, k)
        sim = simulate(par_subtrees(t, p))
        assert sim.makespan == p * (k - 1) + 2

    def test_ratio_tends_to_p(self):
        p = 4
        ratios = [
            simulate(par_subtrees(fork_tree(p, k), p)).makespan / (k + 1)
            for k in (4, 16, 64)
        ]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 0.9 * p


class TestFigure4:
    @pytest.mark.parametrize("p,k", [(2, 4), (4, 6), (8, 4)])
    def test_seq_memory_is_p_plus_1(self, p, k):
        t = inner_first_memory_tree(p, k)
        assert optimal_postorder(t).peak_memory == p + 1
        # longest chain has length 2k nodes
        assert t.height() + 1 == 2 * k

    @pytest.mark.parametrize("p,k", [(2, 6), (4, 6)])
    def test_inner_first_blow_up(self, p, k):
        t = inner_first_memory_tree(p, k)
        sim = simulate(par_inner_first(t, p))
        assert sim.peak_memory >= (k - 1) * (p - 1) + 1

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            inner_first_memory_tree(1, 4)
        with pytest.raises(ValueError):
            inner_first_memory_tree(4, 1)


class TestFigure5:
    @pytest.mark.parametrize("chains", [2, 4, 8])
    def test_seq_memory_is_3(self, chains):
        t = deepest_first_memory_tree(chains, 4)
        assert optimal_postorder(t).peak_memory == 3.0

    def test_all_leaves_equally_deep(self):
        t = deepest_first_memory_tree(8, 5)
        depths = t.depths()
        leaf_depths = {int(depths[leaf]) for leaf in t.leaves()}
        assert len(leaf_depths) == 1

    def test_deepest_first_blow_up(self):
        for chains in (4, 8, 16):
            t = deepest_first_memory_tree(chains, 5)
            sim = simulate(par_deepest_first(t, chains))
            assert sim.peak_memory >= chains

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            deepest_first_memory_tree(1, 5)
        with pytest.raises(ValueError):
            deepest_first_memory_tree(4, 0)
