"""Tests for the Theorem 1 reduction gadget (Figure 1)."""

import numpy as np
import pytest

from repro.core.simulator import simulate
from repro.pebble.gadget import build_gadget, decide_gadget, schedule_from_partition
from repro.pebble.three_partition import (
    ThreePartitionInstance,
    random_yes_instance,
    solve_three_partition,
)


@pytest.fixture
def yes_gadget():
    inst = ThreePartitionInstance((4, 4, 4, 4, 4, 4), 12)
    return build_gadget(inst)


class TestConstruction:
    def test_shape(self, yes_gadget):
        g = yes_gadget
        m, B = 2, 12
        assert g.p == 3 * m * B
        assert g.memory_bound == 3 * m * B + 3 * m
        assert g.makespan_bound == 2 * m + 1
        # nodes: root + 3m inner + 3m * sum(a) leaves
        assert g.tree.n == 1 + 3 * m + 3 * m * (m * B)

    def test_leaf_counts_match_values(self, yes_gadget):
        g = yes_gadget
        for i, a in enumerate(g.instance.values):
            assert len(g.leaves_of[i]) == 3 * g.instance.m * a
            assert g.tree.degree(g.inner[i]) == 3 * g.instance.m * a

    def test_pebble_weights(self, yes_gadget):
        t = yes_gadget.tree
        assert np.all(t.w == 1) and np.all(t.f == 1) and np.all(t.sizes == 0)


class TestForwardDirection:
    def test_schedule_meets_bounds_exactly(self, yes_gadget):
        """The proof's schedule achieves both bounds with equality."""
        partition = solve_three_partition(yes_gadget.instance)
        sch = schedule_from_partition(yes_gadget, partition)
        sim = simulate(sch)
        assert sim.makespan == yes_gadget.makespan_bound
        assert sim.peak_memory == yes_gadget.memory_bound

    def test_random_yes_instances(self):
        rng = np.random.default_rng(3)
        for _ in range(3):
            inst = random_yes_instance(2, 12, rng)
            g = build_gadget(inst)
            sch = decide_gadget(g)
            assert sch is not None
            sim = simulate(sch)
            assert sim.makespan <= g.makespan_bound
            assert sim.peak_memory <= g.memory_bound

    def test_duplicate_index_rejected(self, yes_gadget):
        with pytest.raises(ValueError, match="cover"):
            schedule_from_partition(yes_gadget, [(0, 1, 2), (3, 4, 4)])

    def test_incomplete_partition_rejected(self, yes_gadget):
        with pytest.raises(ValueError, match="cover"):
            schedule_from_partition(yes_gadget, [(0, 1, 2)])


class TestBackwardDirection:
    def test_no_instance_has_no_schedule(self):
        """Theorem 1's equivalence: a NO 3-Partition instance yields a
        NO scheduling instance."""
        inst = ThreePartitionInstance((4, 4, 4, 4, 4, 6), 13)
        g = build_gadget(inst)
        assert decide_gadget(g) is None

    def test_memory_forces_three_inner_per_step(self, yes_gadget):
        """Key argument of the proof: four inner nodes in one step would
        need memory > B_mem because a_i > B/4."""
        g = yes_gadget
        m, B = g.instance.m, g.instance.target
        four_smallest = sorted(g.instance.values)[:4]
        assert sum(four_smallest) >= B + 1
        assert 3 * m * (B + 1) + 4 > g.memory_bound
