"""Tests for the 3-Partition machinery."""

import numpy as np
import pytest

from repro.pebble.three_partition import (
    ThreePartitionInstance,
    random_yes_instance,
    solve_three_partition,
)


class TestInstanceValidation:
    def test_valid_instance(self):
        inst = ThreePartitionInstance((4, 4, 4, 4, 4, 4), 12)
        assert inst.m == 2

    def test_rejects_wrong_count(self):
        with pytest.raises(ValueError, match="3m values"):
            ThreePartitionInstance((4, 4), 8)

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError, match="sum"):
            ThreePartitionInstance((4, 4, 5), 12)

    def test_rejects_out_of_band_value(self):
        # 6 == B/2 violates the strict inequality.
        with pytest.raises(ValueError, match="violates"):
            ThreePartitionInstance((6, 3, 3), 12)


class TestSolver:
    def test_yes_instance(self):
        inst = ThreePartitionInstance((4, 4, 4, 4, 4, 4), 12)
        sol = solve_three_partition(inst)
        assert sol is not None
        for triple in sol:
            assert sum(inst.values[i] for i in triple) == 12
        covered = sorted(i for t in sol for i in t)
        assert covered == list(range(6))

    def test_no_instance(self):
        """{4,4,4,4,4,6} with B=13: no triple sums to 13."""
        inst = ThreePartitionInstance((4, 4, 4, 4, 4, 6), 13)
        assert solve_three_partition(inst) is None

    def test_three_triples(self):
        inst = ThreePartitionInstance((4, 4, 4) * 3, 12)
        sol = solve_three_partition(inst)
        assert sol is not None and len(sol) == 3


class TestGenerator:
    def test_random_yes_solvable(self):
        rng = np.random.default_rng(7)
        for m, B in [(2, 12), (3, 16), (2, 20)]:
            inst = random_yes_instance(m, B, rng)
            assert inst.m == m
            assert solve_three_partition(inst) is not None

    def test_rejects_impossible_band(self):
        with pytest.raises(ValueError, match="no integers"):
            random_yes_instance(2, 4)
