"""Tests for the exact bi-objective solver (Pebble-Game model)."""

import pytest
from hypothesis import given, settings

from repro.core.simulator import simulate
from repro.core.tree import TaskTree
from repro.core.validation import validate_schedule
from repro.parallel import run_all
from repro.pebble.exact import (
    EXACT_MAX_NODES,
    decide_bi_objective,
    exact_pareto_front,
)
from tests.conftest import pebble_trees


class TestDecision:
    def test_chain(self, chain5):
        # a 5-chain needs exactly 5 steps and 2 pebbles whatever p
        assert decide_bi_objective(chain5, 2, memory_bound=2, makespan_bound=5)
        assert decide_bi_objective(chain5, 2, memory_bound=2, makespan_bound=4) is None
        assert decide_bi_objective(chain5, 2, memory_bound=1, makespan_bound=9) is None

    def test_star_tradeoff(self, star5):
        # 4 leaves + root on p=4: 2 steps, 5 pebbles
        assert decide_bi_objective(star5, 4, memory_bound=5, makespan_bound=2)
        # with one processor: 5 steps, still 5 pebbles at the root step
        assert decide_bi_objective(star5, 1, memory_bound=5, makespan_bound=5)
        assert decide_bi_objective(star5, 4, memory_bound=4, makespan_bound=99) is None

    def test_witness_is_valid_and_meets_bounds(self, star5):
        sch = decide_bi_objective(star5, 2, memory_bound=5, makespan_bound=3)
        assert sch is not None
        validate_schedule(sch)
        sim = simulate(sch)
        assert sim.makespan <= 3 and sim.peak_memory <= 5

    def test_guards(self):
        big = TaskTree.pebble_game([-1] + [0] * EXACT_MAX_NODES)
        with pytest.raises(ValueError, match="limited"):
            decide_bi_objective(big, 2, 10, 10)
        weighted = TaskTree.from_parents([-1, 0], w=2.0)
        with pytest.raises(ValueError, match="Pebble Game"):
            decide_bi_objective(weighted, 2, 10, 10)


class TestParetoFront:
    def test_front_nondominated(self, star5):
        front = exact_pareto_front(star5, 2)
        for k in range(len(front) - 1):
            mk1, mem1, _ = front[k]
            mk2, mem2, _ = front[k + 1]
            assert mk1 < mk2 and mem1 > mem2

    def test_memory_floor_is_sequential_optimum(self, chain5):
        front = exact_pareto_front(chain5, 4)
        assert min(mem for _, mem, _ in front) == 2.0

    @given(pebble_trees(min_nodes=2, max_nodes=9))
    @settings(max_examples=20, deadline=None)
    def test_heuristics_dominated_by_front(self, tree):
        """No heuristic strictly beats the exact front -- and the exact
        minimum makespan is a certified lower bound on every heuristic."""
        for p in (2, 3):
            front = exact_pareto_front(tree, p)
            best_mk = min(mk for mk, _, _ in front)
            best_mem = min(mem for _, mem, _ in front)
            for r in run_all(tree, p, validate=True).values():
                assert r.makespan >= best_mk - 1e-9
                assert r.peak_memory >= best_mem - 1e-9
                # not strictly better than every front point in both axes
                assert not any(
                    r.makespan < mk - 1e-9 and r.peak_memory < mem - 1e-9
                    for mk, mem, _ in front
                )

    @given(pebble_trees(min_nodes=2, max_nodes=9))
    @settings(max_examples=15, deadline=None)
    def test_front_schedules_validate(self, tree):
        for mk, mem, sch in exact_pareto_front(tree, 2):
            validate_schedule(sch)
            sim = simulate(sch)
            assert sim.makespan == mk
            assert sim.peak_memory == mem
