"""Tests for the Table 1 renderers."""

from repro.analysis.metrics import HeuristicStats
from repro.analysis.tables import render_table1, table1_csv


def stats_row(name="ParSubtrees"):
    return HeuristicStats(
        heuristic=name,
        best_memory=81.1,
        within5_memory=85.2,
        avg_dev_seq_memory=133.0,
        best_makespan=0.2,
        within5_makespan=14.2,
        avg_dev_best_makespan=34.7,
        scenarios=3040,
    )


class TestRenderTable1:
    def test_contains_measured_values(self):
        text = render_table1([stats_row()])
        assert "ParSubtrees" in text
        assert "81.1%" in text
        assert "133.0%" in text
        assert "scenarios: 3040" in text

    def test_paper_comparison_rows(self):
        text = render_table1([stats_row()], compare_paper=True)
        assert "(paper)" in text

    def test_no_paper_rows_for_unknown_heuristic(self):
        text = render_table1([stats_row(name="Mystery")], compare_paper=True)
        assert "(paper)" not in text

    def test_compare_disabled(self):
        text = render_table1([stats_row()], compare_paper=False)
        assert "(paper)" not in text


class TestCsv:
    def test_csv_shape(self):
        csv = table1_csv([stats_row(), stats_row("ParInnerFirst")])
        lines = csv.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("heuristic,")
        assert lines[1].split(",")[0] == "ParSubtrees"
        assert lines[1].split(",")[1] == "81.10"
