"""Tests for the Figure 6/7/8 data series and rendering."""

import numpy as np
import pytest

from repro.analysis.experiments import ScenarioRecord
from repro.analysis.figures import figure_csv, figure_data, render_figure


def rec(tree, p, heuristic, makespan, memory):
    return ScenarioRecord(tree, 5, p, heuristic, makespan, memory, 10.0, 2.0)


@pytest.fixture
def records():
    rows = []
    for tree in ("a", "b"):
        rows += [
            rec(tree, 2, "ParSubtrees", 8.0, 20.0),
            rec(tree, 2, "ParInnerFirst", 4.0, 40.0),
            rec(tree, 2, "ParDeepestFirst", 3.0, 60.0),
        ]
    return rows


class TestFigureData:
    def test_figure6_ratios_to_bounds(self, records):
        data = {s.heuristic: s for s in figure_data(records, 6)}
        assert set(data) == {"ParSubtrees", "ParInnerFirst", "ParDeepestFirst"}
        np.testing.assert_allclose(data["ParSubtrees"].x, [4.0, 4.0])
        np.testing.assert_allclose(data["ParSubtrees"].y, [2.0, 2.0])

    def test_figure7_normalized_to_parsubtrees(self, records):
        data = {s.heuristic: s for s in figure_data(records, 7)}
        assert "ParSubtrees" not in data
        np.testing.assert_allclose(data["ParInnerFirst"].x, [0.5, 0.5])
        np.testing.assert_allclose(data["ParInnerFirst"].y, [2.0, 2.0])

    def test_figure8_normalized_to_innerfirst(self, records):
        data = {s.heuristic: s for s in figure_data(records, 8)}
        assert "ParInnerFirst" not in data
        np.testing.assert_allclose(data["ParDeepestFirst"].x, [0.75, 0.75])

    def test_unknown_figure(self, records):
        with pytest.raises(ValueError):
            figure_data(records, 9)

    def test_missing_reference(self, records):
        no_ref = [r for r in records if r.heuristic != "ParSubtrees"]
        with pytest.raises(ValueError, match="reference"):
            figure_data(no_ref, 7)

    def test_cross_statistics(self, records):
        series = figure_data(records, 6)[0]
        c = series.cross()
        assert c.x_p10 <= c.x_mean <= c.x_p90
        assert c.y_p10 <= c.y_mean <= c.y_p90


class TestRendering:
    def test_render_contains_marks_and_legend(self, records):
        text = render_figure(figure_data(records, 6), title="Figure 6")
        assert "Figure 6" in text
        assert "legend:" in text
        assert "ParSubtrees" in text

    def test_csv(self, records):
        csv = figure_csv(figure_data(records, 6))
        lines = csv.splitlines()
        assert lines[0] == "heuristic,makespan_ratio,memory_ratio"
        assert len(lines) == 1 + 6
