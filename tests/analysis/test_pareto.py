"""Tests for the Pareto analysis utilities."""

import pytest

from repro.analysis.pareto import ParetoPoint, dominates, hypervolume, pareto_front


def pt(mk, mem, label=""):
    return ParetoPoint(mk, mem, label)


class TestDominance:
    def test_strict_dominance(self):
        assert dominates(pt(1, 1), pt(2, 2))
        assert not dominates(pt(2, 2), pt(1, 1))

    def test_one_axis_better(self):
        assert dominates(pt(1, 2), pt(2, 2))
        assert dominates(pt(2, 1), pt(2, 2))

    def test_incomparable(self):
        assert not dominates(pt(1, 3), pt(3, 1))
        assert not dominates(pt(3, 1), pt(1, 3))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(pt(1, 1), pt(1, 1))


class TestFront:
    def test_extraction(self):
        points = [pt(1, 5, "a"), pt(2, 3, "b"), pt(3, 4, "c"), pt(4, 1, "d")]
        front = pareto_front(points)
        assert [p.label for p in front] == ["a", "b", "d"]

    def test_sorted_by_makespan(self):
        points = [pt(4, 1), pt(1, 5), pt(2, 3)]
        front = pareto_front(points)
        assert [p.makespan for p in front] == sorted(p.makespan for p in front)

    def test_all_dominated_by_one(self):
        points = [pt(1, 1), pt(2, 2), pt(3, 3)]
        assert pareto_front(points) == [pt(1, 1)]

    def test_front_members_mutually_incomparable(self):
        points = [pt(1, 5), pt(2, 3), pt(3, 4), pt(4, 1), pt(2.5, 2.5)]
        front = pareto_front(points)
        for a in front:
            for b in front:
                if a is not b:
                    assert not dominates(a, b)


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume([pt(1, 1)], reference=pt(3, 3)) == 4.0

    def test_two_points(self):
        # union of [1,3]x[2,3] and [2,3]x[1,3] has area 2 + 2 - 1 = 3
        assert hypervolume([pt(1, 2), pt(2, 1)], reference=pt(3, 3)) == pytest.approx(3.0)

    def test_dominated_points_ignored(self):
        hv1 = hypervolume([pt(1, 1)], reference=pt(3, 3))
        hv2 = hypervolume([pt(1, 1), pt(2, 2)], reference=pt(3, 3))
        assert hv1 == hv2

    def test_points_beyond_reference_raise(self):
        """A reference not weakly worse than every point used to be
        silently filtered (masking negative-volume garbage in
        comparisons); it is now a contract violation."""
        with pytest.raises(ValueError, match="weakly worse"):
            hypervolume([pt(1, 1), pt(5, 0.5)], reference=pt(3, 3))

    def test_reference_equal_to_point_is_allowed(self):
        assert hypervolume([pt(3, 3), pt(1, 1)], reference=pt(3, 3)) == 4.0

    def test_more_points_more_volume(self):
        base = hypervolume([pt(2, 2)], reference=pt(4, 4))
        more = hypervolume([pt(2, 2), pt(1, 3), pt(3, 1)], reference=pt(4, 4))
        assert more > base


class TestWithHeuristics:
    def test_heuristics_trace_a_front(self, paper_example):
        """The four heuristics' (makespan, memory) points include at
        least two non-dominated trade-offs on a typical tree."""
        from repro.core.simulator import simulate
        from repro.parallel import HEURISTICS

        points = []
        for name, fn in HEURISTICS.items():
            r = simulate(fn(paper_example, 2))
            points.append(pt(r.makespan, r.peak_memory, name))
        front = pareto_front(points)
        assert len(front) >= 1
        assert all(isinstance(p, ParetoPoint) for p in front)
