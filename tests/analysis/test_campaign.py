"""Tests for the declarative campaign runner and resumable checkpoints."""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.analysis.campaign import (
    Campaign,
    Scenario,
    recover_checkpoint,
    run_campaign,
)
from repro.analysis.experiments import (
    ScenarioRecord,
    load_records,
    run_experiments,
    save_records,
)
from repro.workloads.dataset import TreeInstance
from repro.workloads.synthetic import random_weighted_tree


@pytest.fixture
def instances(rng):
    return [
        TreeInstance(
            name=f"t{k}",
            tree=random_weighted_tree(25 + 10 * k, rng),
            matrix_name="synthetic",
            ordering="none",
            amalgamation=1,
        )
        for k in range(3)
    ]


@pytest.fixture
def campaign():
    return Campaign(
        algorithms=("ParDeepestFirst", "ParSubtrees", "MemoryBounded"),
        processor_counts=(2, 4),
        cap_factors=(1.5, 2.0),
        backend="python",
    )


class TestGridExpansion:
    def test_scenario_counts_and_order(self, campaign):
        scenarios = campaign.scenarios_for("tree")
        # per p: ParDeepestFirst, ParSubtrees, MemoryBounded x 2 caps
        assert len(scenarios) == 2 * (1 + 1 + 2)
        assert [sc.p for sc in scenarios] == [2, 2, 2, 2, 4, 4, 4, 4]
        assert [sc.label for sc in scenarios][:4] == [
            "ParDeepestFirst",
            "ParSubtrees",
            "MemoryBounded@cap1.5",
            "MemoryBounded@cap2",
        ]

    def test_caps_only_for_cap_algorithms(self, campaign):
        scenarios = campaign.scenarios_for("tree")
        for sc in scenarios:
            params = dict(sc.params)
            if sc.algorithm == "MemoryBounded":
                assert params["cap_factor"] in (1.5, 2.0)
            else:
                assert "cap_factor" not in params

    def test_backend_only_for_engine_algorithms(self, campaign):
        scenarios = campaign.scenarios_for("tree")
        for sc in scenarios:
            params = dict(sc.params)
            if sc.algorithm == "ParSubtrees":
                assert "backend" not in params
            else:
                assert params["backend"] == "python"

    def test_unknown_algorithm_fails_fast(self):
        camp = Campaign(algorithms=("NoSuchAlgorithm",), processor_counts=(2,))
        with pytest.raises(KeyError, match="NoSuchAlgorithm"):
            camp.scenarios_for("tree")

    def test_scenario_key(self):
        sc = Scenario(tree="t", algorithm="A", p=4, label="A@cap2")
        assert sc.key() == ("t", "A@cap2", 4)


class TestRunCampaign:
    def test_matches_run_experiments_for_plain_grid(self, instances):
        camp = Campaign(
            algorithms=("ParDeepestFirst", "ParInnerFirst"), processor_counts=(2, 4)
        )
        records = run_campaign(instances, camp)
        legacy = run_experiments(
            instances, (2, 4), heuristics=("ParDeepestFirst", "ParInnerFirst")
        )
        assert records == legacy

    def test_cap_grid_records(self, instances, campaign):
        records = run_campaign(instances, campaign)
        assert len(records) == 3 * len(campaign.scenarios_for("-"))
        capped = [r for r in records if r.heuristic.startswith("MemoryBounded@")]
        assert capped, "cap grid missing"
        for r in capped:
            factor = float(r.heuristic.split("@cap")[1])
            # strict mode never exceeds the cap
            assert r.memory <= factor * r.memory_lb + 1e-9

    def test_workers_shared_memory_and_sharding_byte_identical(
        self, instances, campaign, tmp_path
    ):
        serial = run_campaign(instances, campaign)
        fanned = run_campaign(instances, campaign, workers=2)
        shared = run_campaign(
            instances, campaign, workers=2, shared_memory=True, shard_nodes=1
        )
        assert fanned == serial
        assert shared == serial
        a, b = str(tmp_path / "serial.json"), str(tmp_path / "shared.json")
        save_records(serial, a)
        save_records(shared, b)
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_sharding_serial_is_noop(self, instances, campaign):
        # shard_nodes only engages with workers > 1
        assert run_campaign(instances, campaign, shard_nodes=1) == run_campaign(
            instances, campaign
        )

    def test_checkpoint_requires_jsonl(self, instances, campaign, tmp_path):
        with pytest.raises(ValueError, match="jsonl"):
            run_campaign(
                instances, campaign, checkpoint=str(tmp_path / "records.json")
            )

    def test_checkpoint_stream_matches_records(self, instances, campaign, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        records = run_campaign(instances, campaign, checkpoint=path, workers=2)
        assert load_records(path) == records


class TestResume:
    def run_full(self, instances, campaign, path):
        return run_campaign(instances, campaign, checkpoint=path)

    def test_resume_after_truncation_is_byte_identical(
        self, instances, campaign, tmp_path
    ):
        full = str(tmp_path / "full.jsonl")
        records = self.run_full(instances, campaign, full)
        blob = open(full, "rb").read()
        lines = blob.split(b"\n")
        for cut_lines, partial in [(0, True), (5, True), (9, False)]:
            part = str(tmp_path / f"part{cut_lines}.jsonl")
            crash = b"\n".join(lines[:cut_lines])
            if crash:
                crash += b"\n"
            if partial:
                crash += lines[cut_lines][: max(0, len(lines[cut_lines]) // 2)]
            with open(part, "wb") as fh:
                fh.write(crash)
            resumed = run_campaign(
                instances, campaign, checkpoint=part, resume=True
            )
            assert resumed == records
            assert open(part, "rb").read() == blob

    def test_resume_complete_run_recomputes_nothing(
        self, instances, campaign, tmp_path, monkeypatch
    ):
        full = str(tmp_path / "full.jsonl")
        records = self.run_full(instances, campaign, full)
        blob = open(full, "rb").read()
        import repro.analysis.campaign as campaign_mod

        def boom(*args, **kwargs):  # no scenario may execute on resume
            raise AssertionError("resume of a complete run recomputed a scenario")

        monkeypatch.setattr(campaign_mod, "_scenario_records", boom)
        resumed = run_campaign(instances, campaign, checkpoint=full, resume=True)
        assert resumed == records
        assert open(full, "rb").read() == blob

    def test_resume_skips_completed_trees(
        self, instances, campaign, tmp_path, monkeypatch
    ):
        full = str(tmp_path / "full.jsonl")
        records = self.run_full(instances, campaign, full)
        blob = open(full, "rb").read()
        per_tree = len(campaign.scenarios_for("-"))
        # keep the first tree's records plus 2 scenarios of the second
        lines = blob.split(b"\n")
        part = str(tmp_path / "part.jsonl")
        with open(part, "wb") as fh:
            fh.write(b"\n".join(lines[: per_tree + 2]) + b"\n")
        import repro.analysis.campaign as campaign_mod

        executed = []
        original = campaign_mod._scenario_records

        def spy(name, prepared, scenarios, validate, *rest):
            executed.extend(sc.key() for sc in scenarios)
            return original(name, prepared, scenarios, validate, *rest)

        monkeypatch.setattr(campaign_mod, "_scenario_records", spy)
        resumed = run_campaign(instances, campaign, checkpoint=part, resume=True)
        assert resumed == records
        assert open(part, "rb").read() == blob
        assert all(key[0] != instances[0].name for key in executed)
        assert len(executed) == 2 * per_tree - 2

    def test_resume_with_workers_matches(self, instances, campaign, tmp_path):
        full = str(tmp_path / "full.jsonl")
        records = self.run_full(instances, campaign, full)
        blob = open(full, "rb").read()
        part = str(tmp_path / "part.jsonl")
        with open(part, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        resumed = run_campaign(
            instances,
            campaign,
            checkpoint=part,
            resume=True,
            workers=2,
            shared_memory=True,
        )
        assert resumed == records
        assert open(part, "rb").read() == blob

    def test_resume_rejects_foreign_checkpoint(self, instances, campaign, tmp_path):
        other = Campaign(algorithms=("ParSubtrees",), processor_counts=(2,))
        path = str(tmp_path / "other.jsonl")
        run_campaign(instances, other, checkpoint=path)
        with pytest.raises(ValueError, match="diverges|not produced"):
            run_campaign(instances, campaign, checkpoint=path, resume=True)

    def test_resume_rejects_overlong_checkpoint(self, instances, tmp_path):
        camp = Campaign(algorithms=("ParSubtrees",), processor_counts=(2,))
        path = str(tmp_path / "full.jsonl")
        run_campaign(instances, camp, checkpoint=path)
        smaller = Campaign(algorithms=("ParSubtrees",), processor_counts=(2,))
        with pytest.raises(ValueError, match="not produced"):
            run_campaign(instances[:1], smaller, checkpoint=path, resume=True)

    def test_recover_checkpoint_corrupt_interior_line(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        good = json.dumps(
            dict(
                tree="t",
                n=5,
                p=2,
                heuristic="H",
                makespan=1.0,
                memory=1.0,
                memory_lb=1.0,
                makespan_lb=1.0,
            )
        )
        with open(path, "w") as fh:
            fh.write(good + "\n")
            fh.write("{broken\n")
            fh.write(good + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            recover_checkpoint(path)


class TestCrashSafeSerialization:
    def record(self, **kw):
        base = dict(
            tree="t",
            n=5,
            p=2,
            heuristic="H",
            makespan=10.0,
            memory=20.0,
            memory_lb=10.0,
            makespan_lb=5.0,
        )
        base.update(kw)
        return ScenarioRecord(**base)

    def test_atomic_overwrite_preserves_old_content_on_failure(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "records.json")
        save_records([self.record()], path)
        before = open(path, "rb").read()
        import repro.analysis.experiments as experiments_mod

        def boom(*args, **kwargs):
            raise RuntimeError("disk full")

        monkeypatch.setattr(experiments_mod.json, "dump", boom)
        with pytest.raises(RuntimeError, match="disk full"):
            save_records([self.record(makespan=99.0)], path)
        assert open(path, "rb").read() == before  # old file intact
        assert os.listdir(tmp_path) == ["records.json"]  # no temp residue

    def test_fresh_jsonl_write_is_atomic_too(self, tmp_path, monkeypatch):
        path = str(tmp_path / "records.jsonl")
        save_records([self.record()], path)
        before = open(path, "rb").read()
        import repro.analysis.experiments as experiments_mod

        def boom(*args, **kwargs):
            raise RuntimeError("disk full")

        monkeypatch.setattr(experiments_mod.json, "dumps", boom)
        with pytest.raises(RuntimeError):
            save_records([self.record(makespan=99.0)], path)
        assert open(path, "rb").read() == before
        assert os.listdir(tmp_path) == ["records.jsonl"]

    def test_load_records_recovers_truncated_final_line(self, tmp_path):
        path = str(tmp_path / "records.jsonl")
        records = [self.record(), self.record(p=4)]
        save_records(records, path)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[:-20])  # cut into the final record
        assert load_records(path) == records[:1]

    def test_load_records_rejects_terminated_malformed_final_line(self, tmp_path):
        # crash residue is always an *unterminated* tail (record + "\n"
        # goes out in one buffer); a newline-terminated bad line is real
        # corruption and must not be silently dropped
        path = str(tmp_path / "records.jsonl")
        save_records([self.record()], path)
        with open(path, "a") as fh:
            fh.write("{broken\n")
        with pytest.raises(ValueError, match="malformed"):
            load_records(path)

    def test_load_records_rejects_corrupt_interior_line(self, tmp_path):
        path = str(tmp_path / "records.jsonl")
        with open(path, "w") as fh:
            fh.write("{broken\n")
            fh.write(json.dumps(vars(self.record())) + "\n")
        with pytest.raises(ValueError, match="malformed"):
            load_records(path)


class TestRatioRegression:
    def test_zero_baselines_yield_inf_not_raise(self):
        r = ScenarioRecord("t", 1, 2, "H", 5.0, 3.0, 0.0, 0.0)
        assert r.memory_ratio == math.inf
        assert r.makespan_ratio == math.inf

    def test_positive_baselines_unchanged(self):
        r = ScenarioRecord("t", 5, 2, "H", 10.0, 20.0, 10.0, 5.0)
        assert r.memory_ratio == 2.0
        assert r.makespan_ratio == 2.0
