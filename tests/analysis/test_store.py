"""The columnar campaign store and its equivalence contract.

The acceptance oracle of every backend is *record-for-record equality
with the historical JSONL checkpoint*: whatever path a record stream
takes (JSONL file, sealed npz segments + open tail, shard merge, crash
mid-append, truncate + resume), packing it back to JSONL must reproduce
the undisturbed checkpoint byte for byte. On top of that, the
vectorised analysis paths (table 1, groupby, figures, Pareto) must
agree with their per-record reference loops on the same columns.
"""

from __future__ import annotations

import filecmp
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.analysis.campaign import Campaign, run_campaign
from repro.analysis.experiments import (
    FailedRecord,
    ScenarioRecord,
    iter_records,
    load_records,
    save_records,
)
from repro.analysis.figures import figure_data
from repro.analysis.metrics import (
    compute_table1_stats,
    compute_table1_stats_reference,
    group_stats,
    split_label,
)
from repro.analysis.pareto import (
    ParetoPoint,
    hypervolume,
    hypervolume_columns,
    pareto_front,
    pareto_front_columns,
)
from repro.analysis.store import (
    ColumnarStore,
    JsonlStore,
    RecordColumns,
    merge_stores,
    open_store,
    pack_store,
)
from repro.testing.faults import CRASH_EXIT, ENV_VAR, Fault, FaultPlan
from repro.workloads.dataset import TreeInstance
from repro.workloads.synthetic import random_weighted_tree

try:  # optional extra: the parquet backend is skipped without it
    import pyarrow  # noqa: F401

    HAVE_PYARROW = True
except ImportError:
    HAVE_PYARROW = False


def mixed_records() -> list[ScenarioRecord | FailedRecord]:
    """A small stream with FailedRecord rows interleaved mid-stream."""
    return [
        ScenarioRecord("t0", 25, 2, "ParSubtrees", 10.0, 7.0, 5.0, 4.0),
        FailedRecord("t0", 25, 4, "ParSubtrees", "worker crash: exit code 39", 3),
        ScenarioRecord("t0", 25, 4, "ParDeepestFirst", 8.5, 9.0, 5.0, 4.0),
        ScenarioRecord("t1", 40, 2, "MemoryBounded@cap1.5", 12.0, 6.0, 6.0, 3.0),
        FailedRecord("t1", 40, 2, "MemoryBounded@cap0.1", "MemoryCapError: infeasible", 1),
        ScenarioRecord("t1", 40, 4, "ParSubtrees", 11.0, 6.5, 6.0, 3.0),
    ]


@pytest.fixture
def instances(rng):
    return [
        TreeInstance(
            name=f"t{k}",
            tree=random_weighted_tree(25 + 10 * k, rng),
            matrix_name="synthetic",
            ordering="none",
            amalgamation=1,
        )
        for k in range(3)
    ]


@pytest.fixture
def campaign():
    return Campaign(
        algorithms=("ParSubtrees", "ParDeepestFirst"), processor_counts=(2, 4)
    )


@pytest.fixture
def reference(instances, campaign, tmp_path):
    """The undisturbed record stream and its JSONL checkpoint bytes."""
    path = tmp_path / "reference.jsonl"
    records = run_campaign(instances, campaign, checkpoint=str(path))
    return records, path


# ----------------------------------------------------------------------
# RecordColumns: the analysis currency
# ----------------------------------------------------------------------
class TestRecordColumns:
    def test_round_trip_preserves_failed_interleaving(self):
        records = mixed_records()
        cols = RecordColumns.from_records(records)
        assert len(cols) == len(records)
        assert cols.to_records(include_failed=True) == records
        assert cols.to_records() == [
            r for r in records if not isinstance(r, FailedRecord)
        ]

    def test_measured_drops_failed_rows(self):
        cols = RecordColumns.from_records(mixed_records())
        good = cols.measured()
        assert len(good) == 4
        assert not good.failed.any()
        assert np.isfinite(good.makespan).all()

    def test_ratios_match_scalar_properties(self):
        cols = RecordColumns.from_records(mixed_records()).measured()
        for i, r in enumerate(cols.to_records()):
            assert cols.makespan_ratio()[i] == r.makespan_ratio
            assert cols.memory_ratio()[i] == r.memory_ratio

    def test_ratio_degenerate_baseline_is_inf(self):
        cols = RecordColumns.from_records(
            [ScenarioRecord("t", 5, 2, "A", 1.0, 2.0, 0.0, 0.0)]
        )
        assert cols.memory_ratio()[0] == np.inf
        assert cols.makespan_ratio()[0] == np.inf

    def test_concat_take_empty(self):
        cols = RecordColumns.from_records(mixed_records())
        both = RecordColumns.concat([cols, cols])
        assert len(both) == 2 * len(cols)
        assert both.take(np.arange(len(cols))).to_records(True) == cols.to_records(True)
        assert len(RecordColumns.concat([])) == 0
        assert RecordColumns.empty().to_records(True) == []
        assert len(RecordColumns.concat([RecordColumns.empty(), cols])) == len(cols)


# ----------------------------------------------------------------------
# JsonlStore: the historical format behind the store interface
# ----------------------------------------------------------------------
class TestJsonlStore:
    def test_rejects_non_jsonl_paths(self):
        with pytest.raises(ValueError, match="jsonl"):
            JsonlStore("records.csv")

    def test_append_recover_round_trip(self, tmp_path):
        store = JsonlStore(str(tmp_path / "r.jsonl"))
        store.reset()
        records = mixed_records()
        store.append(records[:3])
        store.append(records[3:])
        assert list(store.recover()) == records
        assert store.count() == len(records)

    def test_append_bytes_identical_to_save_records(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        records = mixed_records()
        save_records(records, str(a), append=True)
        store = JsonlStore(str(b))
        for r in records:
            store.append([r])
        assert filecmp.cmp(str(a), str(b), shallow=False)

    def test_recover_drops_torn_tail_iter_records_is_lenient(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = JsonlStore(str(path))
        store.append(mixed_records()[:2])
        with open(path, "ab") as fh:
            fh.write(b'{"tree": "t9", "heuri')  # torn crash residue
        assert len(list(store.recover())) == 2  # strict: residue dropped
        # a *parseable* unterminated last line is a hand-written file,
        # not crash residue: iter_records keeps it (load_records rules)
        good = json.dumps(
            {"tree": "t9", "n": 5, "p": 2, "heuristic": "A",
             "makespan": 1.0, "memory": 2.0, "memory_lb": 1.0,
             "makespan_lb": 1.0}
        ).encode()
        with open(path, "r+b") as fh:
            end = fh.seek(0, os.SEEK_END) - 21
            fh.truncate(end)
            fh.seek(end)
            fh.write(good)
        assert len(list(store.iter_records(include_failed=True))) == 3

    def test_malformed_complete_line_raises(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"tree": broken}\n')
        with pytest.raises(ValueError, match="malformed|corrupt"):
            list(JsonlStore(str(path)).recover())

    def test_truncate(self, tmp_path):
        store = JsonlStore(str(tmp_path / "r.jsonl"))
        records = mixed_records()
        store.append(records)
        store.truncate(2)
        assert list(store.recover()) == records[:2]
        with pytest.raises(ValueError, match="only 2 present"):
            store.truncate(5)


# ----------------------------------------------------------------------
# ColumnarStore: segments, tail, sealing, crash recovery
# ----------------------------------------------------------------------
class TestColumnarStore:
    def test_append_recover_round_trip(self, tmp_path):
        store = ColumnarStore(str(tmp_path / "d.store"))
        store.reset()
        records = mixed_records()
        for r in records:
            store.append([r])
        assert list(store.recover()) == records
        assert store.count() == len(records)

    def test_auto_seal_produces_segments(self, tmp_path):
        store = ColumnarStore(str(tmp_path / "d.store"), seal_rows=2)
        records = mixed_records()
        for r in records:
            store.append([r])
        m = json.load(open(store._manifest_path))
        assert [seg["rows"] for seg in m["segments"]] == [2, 2, 2]
        assert list(store.recover()) == records  # order across seals

    def test_seal_rows_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SEAL_ROWS", "3")
        store = ColumnarStore(str(tmp_path / "d.store"))
        assert store.seal_rows == 3

    def test_finalize_seals_tail(self, tmp_path):
        store = ColumnarStore(str(tmp_path / "d.store"), seal_rows=100)
        records = mixed_records()
        store.append(records)
        store.finalize()
        m = json.load(open(store._manifest_path))
        assert sum(seg["rows"] for seg in m["segments"]) == len(records)
        tail = store._tail_path(m)
        assert os.path.getsize(tail) == 0
        assert list(store.recover()) == records
        store.finalize()  # idempotent on an empty tail
        assert json.load(open(store._manifest_path))["tail_gen"] == m["tail_gen"]

    def test_columns_match_jsonl_columns(self, tmp_path):
        records = mixed_records()
        js = JsonlStore(str(tmp_path / "r.jsonl"))
        js.append(records)
        cs = ColumnarStore(str(tmp_path / "d.store"), seal_rows=2)
        cs.append(records)
        a, b = js.columns(include_failed=True), cs.columns(include_failed=True)
        for name, arr in a.arrays().items():
            np.testing.assert_array_equal(arr, getattr(b, name))
        assert len(cs.columns(include_failed=False)) == 4

    def test_torn_tail_dropped_on_recover(self, tmp_path):
        store = ColumnarStore(str(tmp_path / "d.store"), seal_rows=100)
        records = mixed_records()
        store.append(records)
        m = store._manifest()
        with open(store._tail_path(m), "ab") as fh:
            fh.write(b'{"tree": "t9", "heuri')
        fresh = ColumnarStore(str(tmp_path / "d.store"))
        assert list(fresh.recover()) == records

    def test_crash_between_segment_and_manifest_is_invisible(self, tmp_path):
        """Seal order is segment-publish -> manifest-commit. A crash in
        between leaves an orphan segment the manifest never references:
        recover() ignores it and the next reset() garbage-collects it."""
        store = ColumnarStore(str(tmp_path / "d.store"))
        records = mixed_records()
        store.append(records)
        orphan = os.path.join(store.path, "seg-000099.npz")
        store._segment_write(RecordColumns.from_records(records), orphan)
        store.close()  # the "crashed" writer is gone; its lock with it
        fresh = ColumnarStore(str(tmp_path / "d.store"))
        assert list(fresh.recover()) == records
        fresh.reset()
        assert not os.path.exists(orphan)

    def test_truncate_inside_tail(self, tmp_path):
        store = ColumnarStore(str(tmp_path / "d.store"), seal_rows=100)
        records = mixed_records()
        store.append(records)
        store.truncate(2)
        assert list(store.recover()) == records[:2]

    def test_truncate_inside_sealed_segment(self, tmp_path):
        store = ColumnarStore(str(tmp_path / "d.store"), seal_rows=2)
        records = mixed_records()
        for r in records:
            store.append([r])  # three sealed segments of 2
        store.truncate(3)  # cut lands mid-segment #1
        assert list(store.recover()) == records[:3]
        m = json.load(open(store._manifest_path))
        assert [seg["rows"] for seg in m["segments"]] == [2, 1]

    def test_truncate_at_segment_boundary_drops_tail(self, tmp_path):
        store = ColumnarStore(str(tmp_path / "d.store"), seal_rows=4)
        records = mixed_records()
        store.append(records[:4])  # sealed
        store.append(records[4:])  # tail
        store.truncate(4)
        assert list(store.recover()) == records[:4]
        store.truncate(0)
        assert list(store.recover()) == []

    def test_truncate_beyond_count_raises(self, tmp_path):
        store = ColumnarStore(str(tmp_path / "d.store"))
        store.append(mixed_records())
        with pytest.raises(ValueError, match="only 6 present"):
            store.truncate(7)

    def test_backend_mismatch_rejected(self, tmp_path):
        store = ColumnarStore(str(tmp_path / "d.store"))
        store.reset()
        manifest = json.load(open(store._manifest_path))
        manifest["backend"] = "parquet"
        with open(store._manifest_path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises((ValueError, RuntimeError)):
            list(ColumnarStore(str(tmp_path / "d.store")).recover())

    def test_not_a_manifest_rejected(self, tmp_path):
        d = tmp_path / "d.store"
        d.mkdir()
        (d / "manifest.json").write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="manifest"):
            list(ColumnarStore(str(d)).recover())


# ----------------------------------------------------------------------
# open_store / pack / merge
# ----------------------------------------------------------------------
class TestOpenPackMerge:
    def test_auto_resolution(self, tmp_path):
        assert open_store(str(tmp_path / "r.jsonl")).backend == "jsonl"
        cs = ColumnarStore(str(tmp_path / "d.store"))
        cs.reset()
        assert open_store(str(tmp_path / "d.store")).backend == "columnar"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            open_store(str(tmp_path / "x"), backend="csv")

    def test_pack_columnar_to_jsonl_matches_save_records(self, tmp_path):
        records = mixed_records()
        ref = tmp_path / "ref.jsonl"
        save_records(records, str(ref), append=True)
        store = ColumnarStore(str(tmp_path / "d.store"), seal_rows=2)
        for r in records:
            store.append([r])
        out = tmp_path / "packed.jsonl"
        assert pack_store(str(tmp_path / "d.store"), str(out)) == len(records)
        assert filecmp.cmp(str(ref), str(out), shallow=False)

    def test_pack_jsonl_to_columnar_and_back(self, tmp_path):
        records = mixed_records()
        src = tmp_path / "src.jsonl"
        save_records(records, str(src), append=True)
        pack_store(str(src), str(tmp_path / "d.store"))  # auto -> columnar
        assert open_store(str(tmp_path / "d.store")).backend == "columnar"
        back = tmp_path / "back.jsonl"
        pack_store(str(tmp_path / "d.store"), str(back))
        assert filecmp.cmp(str(src), str(back), shallow=False)

    def test_merge_shards_in_stream_order(self, tmp_path):
        records = mixed_records()
        shard0 = ColumnarStore(str(tmp_path / "s0.store"))
        shard0.append(records[:2])
        shard1 = JsonlStore(str(tmp_path / "s1.jsonl"))
        shard1.append(records[2:])
        n = merge_stores(
            str(tmp_path / "all.store"),
            [str(tmp_path / "s0.store"), str(tmp_path / "s1.jsonl")],
        )
        assert n == len(records)
        merged = open_store(str(tmp_path / "all.store"))
        assert list(merged.recover()) == records

    def test_merge_to_jsonl_is_concatenation(self, tmp_path):
        records = mixed_records()
        ref = tmp_path / "ref.jsonl"
        save_records(records, str(ref), append=True)
        s0, s1 = tmp_path / "s0.jsonl", tmp_path / "s1.jsonl"
        save_records(records[:3], str(s0), append=True)
        save_records(records[3:], str(s1), append=True)
        merge_stores(str(tmp_path / "all.jsonl"), [str(s0), str(s1)])
        assert filecmp.cmp(str(ref), str(tmp_path / "all.jsonl"), shallow=False)


# ----------------------------------------------------------------------
# iter_records / load_records / save_records store-dir dispatch
# ----------------------------------------------------------------------
class TestExperimentsDispatch:
    def test_iter_records_streams_jsonl(self, tmp_path):
        path = tmp_path / "r.jsonl"
        save_records(mixed_records(), str(path), append=True)
        assert list(iter_records(str(path))) == load_records(str(path))
        assert (
            list(iter_records(str(path), include_failed=True))
            == load_records(str(path), include_failed=True)
        )

    def test_iter_and_load_records_on_store_dir(self, tmp_path):
        records = mixed_records()
        store = ColumnarStore(str(tmp_path / "d.store"), seal_rows=2)
        store.append(records)
        good = [r for r in records if not isinstance(r, FailedRecord)]
        assert list(iter_records(str(tmp_path / "d.store"))) == good
        assert load_records(str(tmp_path / "d.store")) == good
        assert (
            load_records(str(tmp_path / "d.store"), include_failed=True) == records
        )

    def test_save_records_into_store_dir(self, tmp_path):
        records = mixed_records()
        store = ColumnarStore(str(tmp_path / "d.store"))
        store.reset()
        save_records(records, str(tmp_path / "d.store"), append=True)
        assert list(open_store(str(tmp_path / "d.store")).recover()) == records


# ----------------------------------------------------------------------
# parquet backend (optional extra)
# ----------------------------------------------------------------------
class TestParquet:
    @pytest.mark.skipif(not HAVE_PYARROW, reason="pyarrow not installed")
    def test_round_trip_and_pack_byte_identity(self, tmp_path):
        records = mixed_records()
        ref = tmp_path / "ref.jsonl"
        save_records(records, str(ref), append=True)
        store = open_store(str(tmp_path / "p.store"), backend="parquet")
        store.append(records)
        store.finalize()
        assert list(store.recover()) == records
        assert open_store(str(tmp_path / "p.store")).backend == "parquet"
        out = tmp_path / "packed.jsonl"
        pack_store(str(tmp_path / "p.store"), str(out))
        assert filecmp.cmp(str(ref), str(out), shallow=False)

    @pytest.mark.skipif(HAVE_PYARROW, reason="pyarrow installed")
    def test_missing_pyarrow_is_a_clear_error(self, tmp_path):
        with pytest.raises(RuntimeError, match="pyarrow"):
            open_store(str(tmp_path / "p.store"), backend="parquet")


# ----------------------------------------------------------------------
# campaign integration: columnar checkpoints, resume, faults
# ----------------------------------------------------------------------
class TestCampaignColumnar:
    def test_columnar_campaign_packs_byte_identical(
        self, instances, campaign, reference, tmp_path
    ):
        records, ref_path = reference
        d = tmp_path / "ck.store"
        got = run_campaign(
            instances, campaign, checkpoint=str(d), store="columnar"
        )
        assert got == records
        # finalize() sealed the finished run into pure segments
        m = json.load(open(d / "manifest.json"))
        assert sum(seg["rows"] for seg in m["segments"]) == len(records)
        packed = tmp_path / "packed.jsonl"
        pack_store(str(d), str(packed))
        assert filecmp.cmp(str(ref_path), str(packed), shallow=False)

    def test_truncated_columnar_checkpoint_resumes(
        self, instances, campaign, reference, tmp_path
    ):
        records, ref_path = reference
        d = tmp_path / "ck.store"
        run_campaign(instances, campaign, checkpoint=str(d), store="columnar")
        store = ColumnarStore(str(d))
        store.truncate(5)  # cut inside the (single) sealed segment
        # ...plus torn crash residue in the tail
        m = store._manifest()
        with open(store._tail_path(m), "ab") as fh:
            fh.write(b'{"tree": "t0", "heu')
        got = run_campaign(
            instances, campaign, checkpoint=str(d), resume=True
        )
        assert got == records
        packed = tmp_path / "packed.jsonl"
        pack_store(str(d), str(packed))
        assert filecmp.cmp(str(ref_path), str(packed), shallow=False)

    def test_diverging_columnar_checkpoint_rejected(
        self, instances, campaign, tmp_path
    ):
        d = tmp_path / "ck.store"
        run_campaign(instances, campaign, checkpoint=str(d), store="columnar")
        other = Campaign(algorithms=("ParInnerFirst",), processor_counts=(2,))
        with pytest.raises(ValueError, match="diverges|not produced"):
            run_campaign(instances, other, checkpoint=str(d), resume=True)

    def test_store_backend_needs_checkpoint(self, instances, campaign):
        with pytest.raises(ValueError, match="checkpoint"):
            run_campaign(instances, campaign, store="columnar")

    def test_quarantine_and_retry_failed_under_columnar(
        self, instances, campaign, reference, tmp_path
    ):
        records, ref_path = reference
        d = tmp_path / "ck.store"
        plan = FaultPlan((Fault(kind="crash", scenario="t1|ParSubtrees|2"),))
        first = run_campaign(
            instances,
            campaign,
            checkpoint=str(d),
            store="columnar",
            supervise=True,
            retries=0,
            fault_plan=plan,
        )
        failed = [r for r in first if isinstance(r, FailedRecord)]
        assert len(failed) == 1
        # resume skips the quarantined scenario by default...
        resumed = run_campaign(
            instances, campaign, checkpoint=str(d), resume=True, supervise=True
        )
        assert resumed == first
        # ...and retry_failed heals the store to byte identity
        healed = run_campaign(
            instances,
            campaign,
            checkpoint=str(d),
            resume=True,
            supervise=True,
            retry_failed=True,
        )
        assert healed == records
        packed = tmp_path / "packed.jsonl"
        pack_store(str(d), str(packed))
        assert filecmp.cmp(str(ref_path), str(packed), shallow=False)


_GRID_SRC = """
import numpy as np
from repro.analysis.campaign import Campaign, run_campaign
from repro.workloads.dataset import TreeInstance
from repro.workloads.synthetic import random_weighted_tree

def make_grid(sizes=(25, 35, 45), backend=None):
    rng = np.random.default_rng(20130520)
    instances = [
        TreeInstance(name=f"t{k}", tree=random_weighted_tree(n, rng),
                     matrix_name="synthetic", ordering="none", amalgamation=1)
        for k, n in enumerate(sizes)
    ]
    campaign = Campaign(algorithms=("ParSubtrees", "ParDeepestFirst"),
                        processor_counts=(2, 4), backend=backend)
    return instances, campaign
"""


def _pythonpath() -> str:
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    existing = os.environ.get("PYTHONPATH", "")
    return os.path.abspath(src) + (os.pathsep + existing if existing else "")


class TestColumnarCrashSubprocess:
    def test_truncated_tail_append_then_resume_heals(
        self, instances, campaign, reference, tmp_path
    ):
        """The REPRO_FAULT_PLAN power-loss drill under ``--store
        columnar``: the 5th tail append writes half a line and
        hard-exits; the resume drops the residue, finishes the grid,
        and the packed store is byte-identical to an undisturbed JSONL
        run."""
        records, ref_path = reference
        d = tmp_path / "ck.store"
        code = (
            _GRID_SRC
            + f"""
instances, campaign = make_grid()
run_campaign(instances, campaign, checkpoint={str(d)!r}, store="columnar")
"""
        )
        plan = FaultPlan((Fault(kind="truncate_write", record=4),))
        env = {**os.environ, ENV_VAR: plan.to_json(), "PYTHONPATH": _pythonpath()}
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, timeout=300
        )
        assert proc.returncode == CRASH_EXIT, proc.stderr.decode()
        store = ColumnarStore(str(d))
        m = store._manifest()
        tail = open(store._tail_path(m), "rb").read()
        assert not tail.endswith(b"\n")  # the torn fifth line
        assert len(list(store.recover())) == 4

        resumed = run_campaign(
            instances, campaign, checkpoint=str(d), resume=True
        )
        assert resumed == records
        packed = tmp_path / "packed.jsonl"
        pack_store(str(d), str(packed))
        assert filecmp.cmp(str(ref_path), str(packed), shallow=False)


# ----------------------------------------------------------------------
# vectorised analysis: golden equality with the reference loops
# ----------------------------------------------------------------------
class TestVectorizedAnalysis:
    def test_table1_matches_reference_loop(self, reference):
        records, _ = reference
        assert compute_table1_stats(records) == compute_table1_stats_reference(
            records
        )

    def test_table1_accepts_columns(self, reference):
        records, _ = reference
        cols = RecordColumns.from_records(records)
        assert compute_table1_stats(cols) == compute_table1_stats_reference(records)

    def test_figure_data_columns_match_records(self, instances):
        # figures 7/8 need their reference heuristics in the stream
        camp = Campaign(
            algorithms=("ParSubtrees", "ParInnerFirst", "ParDeepestFirst"),
            processor_counts=(2, 4),
        )
        records = run_campaign(instances, camp)
        cols = RecordColumns.from_records(records)
        for which in (6, 7, 8):
            a = figure_data(records, which)
            b = figure_data(cols, which)
            assert [s.heuristic for s in a] == [s.heuristic for s in b]
            for sa, sb in zip(a, b):
                np.testing.assert_array_equal(sa.x, sb.x)
                np.testing.assert_array_equal(sa.y, sb.y)

    def test_group_stats_cells(self):
        records = [
            ScenarioRecord("a", 10, 2, "ParSubtrees", 8.0, 6.0, 3.0, 4.0),
            ScenarioRecord("b", 10, 2, "ParSubtrees", 6.0, 9.0, 3.0, 4.0),
            ScenarioRecord("a", 10, 2, "MemoryBounded@cap1.5", 10.0, 3.0, 3.0, 4.0),
            ScenarioRecord("a", 20, 4, "ParSubtrees", 8.0, 6.0, 3.0, 4.0),
        ]
        stats = group_stats(records)
        assert [(s.algorithm, s.n, s.p, s.cap, s.count) for s in stats] == [
            ("MemoryBounded", 10, 2, 1.5, 1),
            ("ParSubtrees", 10, 2, None, 2),
            ("ParSubtrees", 20, 4, None, 1),
        ]
        cell = stats[1]
        assert cell.mean_makespan_ratio == pytest.approx((8 / 4 + 6 / 4) / 2)
        assert cell.max_memory_ratio == pytest.approx(3.0)

    def test_split_label(self):
        assert split_label("MemoryBounded@cap1.5") == ("MemoryBounded", 1.5)
        assert split_label("ParSubtrees") == ("ParSubtrees", None)

    def test_group_stats_rejects_failed_rows(self):
        with pytest.raises(ValueError, match="failed records"):
            group_stats(mixed_records())

    def test_pareto_front_columns_matches_reference(self, rng):
        for _ in range(25):
            mk = rng.uniform(1, 10, size=40)
            mem = rng.uniform(1, 10, size=40)
            points = [ParetoPoint(m, q, "x") for m, q in zip(mk, mem)]
            ref = pareto_front(points)
            idx = pareto_front_columns(mk, mem)
            got = [ParetoPoint(mk[i], mem[i], "x") for i in idx]
            assert got == ref

    def test_hypervolume_columns_matches_reference(self, rng):
        for _ in range(25):
            mk = rng.uniform(1, 10, size=30)
            mem = rng.uniform(1, 10, size=30)
            points = [ParetoPoint(m, q, "x") for m, q in zip(mk, mem)]
            ref_point = ParetoPoint(11.0, 11.0, "ref")
            a = hypervolume(points, ref_point)
            b = hypervolume_columns(mk, mem, ref_point)
            assert b == pytest.approx(a, rel=1e-12)

    def test_hypervolume_columns_rejects_bad_reference(self):
        with pytest.raises(ValueError, match="weakly worse"):
            hypervolume_columns(
                np.array([1.0, 5.0]), np.array([2.0, 1.0]), (4.0, 4.0)
            )


# ----------------------------------------------------------------------
# single-writer lock: one writer process per store directory
# ----------------------------------------------------------------------
class TestWriterLock:
    def test_second_process_fails_fast(self, tmp_path):
        d = str(tmp_path / "d.store")
        store = ColumnarStore(d)
        store.append(mixed_records()[:2])  # acquires the writer lock
        code = f"""
from repro.analysis.store import ColumnarStore
from repro.analysis.experiments import ScenarioRecord
store = ColumnarStore({d!r})
store.append([ScenarioRecord("x", 1, 2, "h", 1.0, 1.0, 1.0, 1.0)])
"""
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONPATH": _pythonpath()},
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode != 0
        assert b"already has a live writer" in proc.stderr
        assert f"pid {os.getpid()}" in proc.stderr.decode()
        # the loser changed nothing and the holder keeps appending
        assert store.count() == 2
        store.append(mixed_records()[2:3])
        store.close()

    def test_lock_released_allows_next_process(self, tmp_path):
        d = str(tmp_path / "d.store")
        store = ColumnarStore(d)
        store.append(mixed_records()[:2])
        store.close()
        code = f"""
from repro.analysis.store import ColumnarStore
from repro.analysis.experiments import ScenarioRecord
store = ColumnarStore({d!r})
store.append([ScenarioRecord("x", 1, 2, "h", 1.0, 1.0, 1.0, 1.0)])
store.close()
"""
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONPATH": _pythonpath()},
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr.decode()
        fresh = ColumnarStore(d)
        assert fresh.count() == 3

    def test_stale_dead_pid_lock_is_broken(self, tmp_path):
        d = str(tmp_path / "d.store")
        store = ColumnarStore(d)
        store.append(mixed_records()[:2])
        store.close()
        # a pid that existed and is now certainly gone
        ghost = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            timeout=120,
        )
        dead_pid = int(ghost.stdout)
        with open(os.path.join(d, ".writer.lock"), "w") as fh:
            fh.write(str(dead_pid))
        again = ColumnarStore(d)
        again.append(mixed_records()[2:3])  # breaks the stale lock
        assert again.count() == 3
        again.close()

    def test_same_process_stores_share_the_lock(self, tmp_path):
        # save_records(append=True) style: two live store objects of
        # one process serialize through a refcounted shared lock
        d = str(tmp_path / "d.store")
        a = ColumnarStore(d)
        a.append(mixed_records()[:2])
        b = ColumnarStore(d)
        b.append(mixed_records()[2:4])
        a.close()  # refcount drops to one: still locked
        assert os.path.exists(os.path.join(d, ".writer.lock"))
        b.close()
        assert not os.path.exists(os.path.join(d, ".writer.lock"))
        assert ColumnarStore(d).count() == 4

    def test_finalize_releases_the_lock(self, tmp_path):
        d = str(tmp_path / "d.store")
        store = ColumnarStore(d)
        store.append(mixed_records())
        store.finalize()
        assert not os.path.exists(os.path.join(d, ".writer.lock"))
