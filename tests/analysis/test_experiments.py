"""Tests for the experiment runner and record serialization."""

import pytest

from repro.analysis.experiments import (
    ScenarioRecord,
    load_records,
    run_experiments,
    save_records,
)
from repro.workloads.dataset import TreeInstance
from repro.workloads.synthetic import random_weighted_tree


@pytest.fixture
def instances(rng):
    return [
        TreeInstance(
            name=f"t{k}",
            tree=random_weighted_tree(25, rng),
            matrix_name="synthetic",
            ordering="none",
            amalgamation=1,
        )
        for k in range(3)
    ]


class TestRunner:
    def test_record_count(self, instances):
        records = run_experiments(instances, processor_counts=(2, 4))
        assert len(records) == 3 * 2 * 4  # trees x p x heuristics

    def test_lower_bounds_attached(self, instances):
        records = run_experiments(instances, processor_counts=(2,), validate=True)
        for r in records:
            assert r.memory >= r.memory_lb - 1e-9
            assert r.makespan >= r.makespan_lb - 1e-9
            assert r.memory_ratio >= 1.0 - 1e-9
            assert r.makespan_ratio >= 1.0 - 1e-9

    def test_heuristic_subset(self, instances):
        records = run_experiments(
            instances, processor_counts=(2,), heuristics=("ParSubtrees",)
        )
        assert {r.heuristic for r in records} == {"ParSubtrees"}

    def test_memory_lb_constant_across_p(self, instances):
        records = run_experiments(instances[:1], processor_counts=(2, 8))
        lbs = {r.memory_lb for r in records}
        assert len(lbs) == 1


class TestBatchPipeline:
    def test_parallel_records_byte_identical(self, instances, tmp_path):
        """workers=N must reproduce the serial record stream exactly."""
        serial = run_experiments(instances, processor_counts=(2, 4))
        fanned = run_experiments(instances, processor_counts=(2, 4), workers=3)
        assert fanned == serial
        a, b = str(tmp_path / "serial.json"), str(tmp_path / "fanned.json")
        save_records(serial, a)
        save_records(fanned, b)
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_shared_memory_byte_identical(self, instances, tmp_path):
        """shared_memory=True must reproduce the serial record stream
        exactly -- same objects, same serialised bytes."""
        serial = run_experiments(instances, processor_counts=(2, 4))
        shared = run_experiments(
            instances, processor_counts=(2, 4), workers=2, shared_memory=True
        )
        assert shared == serial
        a, b = str(tmp_path / "serial.json"), str(tmp_path / "shared.json")
        save_records(serial, a)
        save_records(shared, b)
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_shared_memory_paper_dataset_tier(self, tmp_path):
        """The paper-campaign pipeline end to end: dataset tier trees
        through the shared-memory pool, byte-identical to serial."""
        from repro.workloads.dataset import build_dataset

        instances = build_dataset(scale="tiny")[:6]
        serial = run_experiments(instances, processor_counts=(2, 8))
        shared = run_experiments(
            instances,
            processor_counts=(2, 8),
            workers=3,
            shared_memory=True,
            stream_to=str(tmp_path / "stream.jsonl"),
        )
        assert shared == serial
        assert load_records(str(tmp_path / "stream.jsonl")) == serial

    def test_registry_algorithms_accepted(self, instances):
        records = run_experiments(
            instances,
            processor_counts=(2,),
            heuristics=("ParDeepestFirst/hops", "MemoryBounded"),
        )
        assert {r.heuristic for r in records} == {
            "ParDeepestFirst/hops",
            "MemoryBounded",
        }

    def test_streaming_jsonl(self, instances, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        records = run_experiments(
            instances, processor_counts=(2,), workers=2, stream_to=path
        )
        assert load_records(path) == records

    def test_streaming_requires_jsonl(self, instances, tmp_path):
        with pytest.raises(ValueError, match="jsonl"):
            run_experiments(
                instances,
                processor_counts=(2,),
                stream_to=str(tmp_path / "stream.json"),
            )


class TestSerialization:
    def test_roundtrip(self, instances, tmp_path):
        records = run_experiments(instances, processor_counts=(2,))
        path = str(tmp_path / "records.json")
        save_records(records, path)
        loaded = load_records(path)
        assert loaded == records

    def test_jsonl_roundtrip(self, instances, tmp_path):
        records = run_experiments(instances, processor_counts=(2,))
        path = str(tmp_path / "records.jsonl")
        save_records(records, path)
        assert load_records(path) == records

    def test_jsonl_append(self, instances, tmp_path):
        records = run_experiments(instances, processor_counts=(2,))
        path = str(tmp_path / "records.jsonl")
        save_records(records[:3], path)
        save_records(records[3:], path, append=True)
        assert load_records(path) == records

    def test_append_requires_jsonl(self, tmp_path):
        r = ScenarioRecord("t", 5, 2, "H", 10.0, 20.0, 10.0, 5.0)
        with pytest.raises(ValueError, match="jsonl"):
            save_records([r], str(tmp_path / "records.json"), append=True)

    def test_ratios(self):
        r = ScenarioRecord("t", 5, 2, "H", 10.0, 20.0, 10.0, 5.0)
        assert r.memory_ratio == 2.0
        assert r.makespan_ratio == 2.0
