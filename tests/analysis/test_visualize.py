"""Tests for the ASCII visualizations."""

from repro.analysis.visualize import render_memory_profile, render_tree
from repro.core.schedule import Schedule
from repro.core.tree import TaskTree


class TestRenderTree:
    def test_small_tree(self, paper_example):
        text = render_tree(paper_example)
        assert text.splitlines()[0].startswith("0 ")
        assert "`--" in text
        assert text.count("w=") == paper_example.n

    def test_weights_off(self, chain5):
        text = render_tree(chain5, weights=False)
        assert "w=" not in text

    def test_large_tree_elided(self):
        t = TaskTree.from_parents([-1] + [0] * 200)
        text = render_tree(t, max_nodes=10)
        assert "..." in text
        assert "201 nodes total" in text

    def test_every_node_once(self, paper_example):
        text = render_tree(paper_example)
        for i in range(paper_example.n):
            assert f"{i} (" in text


class TestRenderMemoryProfile:
    def test_profile_renders(self, paper_example):
        sch = Schedule.sequential(paper_example, paper_example.postorder())
        text = render_memory_profile(sch)
        assert "#" in text
        assert "peak:" in text

    def test_reference_line(self, star5):
        sch = Schedule.sequential(star5, [1, 2, 3, 4, 0])
        text = render_memory_profile(sch, reference=10.0)
        assert "reference level" in text

    def test_peak_value_reported(self, star5):
        sch = Schedule.sequential(star5, [1, 2, 3, 4, 0])
        text = render_memory_profile(sch)
        assert "peak: 5" in text
