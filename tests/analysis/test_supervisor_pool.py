"""Persistent :class:`SupervisorPool`: probe reuse, epochs, abort.

The one-shot :func:`run_supervised` chaos behaviour is covered by
``test_faults.py``; this module pins the pool-level contracts the
scheduling service depends on: one live backend probe per pool (every
respawn and every later run adopts the cached decision), worker reuse
across runs, and the ``abort`` event raising
:class:`CampaignAborted` while leaving the pool usable.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis.campaign import Campaign
from repro.analysis.experiments import ScenarioRecord
from repro.analysis.supervisor import (
    CampaignAborted,
    SupervisorPool,
    run_supervised,
)
from repro.testing.faults import ENV_VAR, Fault, FaultPlan, install
from repro.workloads.dataset import TreeInstance
from repro.workloads.synthetic import random_weighted_tree


@pytest.fixture(autouse=True)
def _no_ambient_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    install(None)
    yield
    install(None)


@pytest.fixture
def instances():
    rng = np.random.default_rng(7)
    return [
        TreeInstance(
            name=f"t{k}",
            tree=random_weighted_tree(20 + 5 * k, rng),
            matrix_name="synthetic",
            ordering="none",
            amalgamation=1,
        )
        for k in range(2)
    ]


@pytest.fixture
def tasks(instances):
    campaign = Campaign(
        algorithms=("ParSubtrees", "ParDeepestFirst"), processor_counts=(2, 4)
    )
    return [
        (gi, sc)
        for gi, inst in enumerate(instances)
        for sc in campaign.scenarios_for(inst.name)
    ]


def collect(emitted):
    def emit(gi, record):
        emitted.append((gi, record))

    return emit


class TestProbeReuse:
    def test_respawned_workers_skip_the_probe(self, instances, tasks):
        # one worker, crashed twice by the plan: the pool respawns it,
        # but only the very first worker pays the two-node probe sweep
        plan = FaultPlan(
            tuple(Fault(kind="crash", index=i, attempts=(0,)) for i in (1, 4))
        )
        emitted: list = []
        report = run_supervised(
            instances,
            tasks,
            workers=1,
            retries=2,
            backoff=0.02,
            fault_plan=plan,
            emit=collect(emitted),
        )
        assert report.respawns >= 2
        assert len(report.backends) >= 3  # the original + each respawn
        assert report.probes == 1
        # all workers converged on the same (cached) decision
        assert len({chosen for _, chosen, _ in report.backends}) == 1
        assert len(emitted) == len(tasks)

    def test_second_run_probes_nothing(self, instances, tasks):
        with SupervisorPool(workers=2) as pool:
            first: list = []
            r1 = pool.run(instances, tasks, emit=collect(first))
            second: list = []
            r2 = pool.run(instances, tasks, emit=collect(second))
        assert r1.probes >= 1
        assert r2.probes == 0  # held-over workers, no new spawn, no probe
        assert r2.respawns == 0
        assert r2.backends  # survivors still reported with their backend
        assert [rec for _, rec in second] == [rec for _, rec in first]


class TestPersistentPool:
    def test_records_match_one_shot_runs(self, instances, tasks):
        ref: list = []
        run_supervised(instances, tasks, emit=collect(ref))
        with SupervisorPool(workers=2) as pool:
            for _ in range(3):
                got: list = []
                pool.run(instances, tasks, emit=collect(got))
                assert got == ref

    def test_shared_memory_transport_per_run(self, instances, tasks):
        ref: list = []
        run_supervised(instances, tasks, emit=collect(ref))
        with SupervisorPool(workers=2) as pool:
            a: list = []
            pool.run(instances, tasks, shared_memory=True, emit=collect(a))
            b: list = []
            pool.run(instances, tasks, shared_memory=True, emit=collect(b))
        assert a == ref and b == ref

    def test_closed_pool_rejects_runs(self, instances, tasks):
        pool = SupervisorPool(workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run(instances, tasks, emit=lambda gi, r: None)
        pool.close()  # idempotent


class TestAbort:
    def test_abort_stops_cleanly_and_pool_survives(self, instances, tasks):
        ref: list = []
        run_supervised(instances, tasks, emit=collect(ref))
        with SupervisorPool(workers=1) as pool:
            stop = threading.Event()
            emitted: list = []

            def emit(gi, record):
                emitted.append((gi, record))
                if len(emitted) == 3:
                    stop.set()

            with pytest.raises(CampaignAborted):
                pool.run(instances, tasks, emit=emit, abort=stop)
            # the emitted prefix is the reference prefix, in order
            assert emitted == ref[: len(emitted)]
            assert len(emitted) < len(tasks)

            # the pool is still serviceable: a fresh run completes and
            # any stale in-flight result is dropped by the epoch filter
            again: list = []
            report = pool.run(instances, tasks, emit=collect(again))
            assert again == ref
            assert all(
                isinstance(rec, ScenarioRecord) for _, rec in again
            )
            assert report.probes == 0  # worker survived the abort

    def test_preset_abort_emits_nothing(self, instances, tasks):
        stop = threading.Event()
        stop.set()
        emitted: list = []
        with SupervisorPool(workers=1) as pool:
            with pytest.raises(CampaignAborted):
                pool.run(instances, tasks, emit=collect(emitted), abort=stop)
        assert emitted == []


class TestCampaignIntegration:
    @pytest.fixture
    def grid(self):
        return Campaign(
            algorithms=("ParSubtrees", "ParDeepestFirst"), processor_counts=(2, 4)
        )

    def test_run_campaign_on_persistent_pool(self, instances, grid):
        from repro.analysis.campaign import run_campaign

        ref = run_campaign(instances, grid)
        with SupervisorPool(workers=2) as pool:
            reports: list = []
            a = run_campaign(instances, grid, pool=pool, report=reports)
            b = run_campaign(instances, grid, pool=pool, report=reports)
        assert a == ref and b == ref
        assert reports[0].probes >= 1
        assert reports[1].probes == 0  # pool reuse: no second probe

    def test_serial_prepare_hook(self, instances, grid):
        from repro.analysis.campaign import run_campaign
        from repro.core.prepared import PreparedTree

        ref = run_campaign(instances, grid)
        calls: list[str] = []

        def provider(inst):
            calls.append(inst.name)
            return PreparedTree(inst.tree)

        got = run_campaign(instances, grid, prepare=provider)
        assert got == ref
        assert calls == [inst.name for inst in instances]

    def test_abort_checkpoints_prefix_then_resume_heals(
        self, instances, grid, tmp_path
    ):
        from repro.analysis.campaign import run_campaign

        ref_path = tmp_path / "ref.jsonl"
        ref = run_campaign(instances, grid, checkpoint=str(ref_path))

        stop = threading.Event()

        def provider(inst):
            from repro.core.prepared import PreparedTree

            if inst.name == instances[1].name:  # abort before group 1 lands
                stop.set()
            return PreparedTree(inst.tree)

        path = tmp_path / "ck.jsonl"
        with pytest.raises(CampaignAborted):
            run_campaign(
                instances, grid, checkpoint=str(path),
                prepare=provider, abort=stop,
            )
        import filecmp

        resumed = run_campaign(instances, grid, checkpoint=str(path), resume=True)
        assert resumed == ref
        assert filecmp.cmp(str(ref_path), str(path), shallow=False)
