"""Tests for the EXPERIMENTS.md report generator."""

import pytest

from repro.analysis.experiments import run_experiments
from repro.analysis.report import build_report
from repro.workloads.dataset import build_dataset


@pytest.fixture(scope="module")
def report():
    instances = build_dataset(scale="tiny")[:8]
    records = run_experiments(instances, processor_counts=(2,))
    return build_report(records, instances), instances


class TestReport:
    def test_sections_present(self, report):
        text, _ = report
        for heading in (
            "# EXPERIMENTS",
            "## Data set",
            "## Table 1",
            "## Figure 6",
            "## Figure 7",
            "## Figure 8",
        ):
            assert heading in text

    def test_paper_rows_interleaved(self, report):
        text, _ = report
        assert "(paper) | 81.1 | 85.2 | 133.0" in text

    def test_measured_rows_for_all_heuristics(self, report):
        text, _ = report
        for name in (
            "ParSubtrees",
            "ParSubtreesOptim",
            "ParInnerFirst",
            "ParDeepestFirst",
        ):
            assert f"**{name}** (measured)" in text

    def test_dataset_size_reported(self, report):
        text, instances = report
        assert f"{len(instances)} assembly trees" in text
