"""Tests for the data-set shape summary."""

import pytest

from repro.analysis.shape_stats import render_shape_table, summarize_shapes
from repro.workloads.dataset import TreeInstance
from repro.workloads.synthetic import random_weighted_tree


@pytest.fixture
def instances(rng):
    return [
        TreeInstance(
            name=f"t{k}",
            tree=random_weighted_tree(20 + 10 * k, rng),
            matrix_name="synthetic",
            ordering="none",
            amalgamation=1,
        )
        for k in range(4)
    ]


class TestSummary:
    def test_statistics_present(self, instances):
        summaries = {s.name: s for s in summarize_shapes(instances)}
        assert set(summaries) == {"nodes", "depth", "max degree", "leaves"}
        assert summaries["nodes"].minimum == 20
        assert summaries["nodes"].maximum == 50

    def test_min_le_median_le_max(self, instances):
        for s in summarize_shapes(instances):
            assert s.minimum <= s.median <= s.maximum

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_shapes([])


class TestRendering:
    def test_table_contains_paper_ranges(self, instances):
        text = render_shape_table(summarize_shapes(instances))
        assert "paper range" in text
        assert "2,000 - 1,000,000" in text
        assert "nodes" in text
