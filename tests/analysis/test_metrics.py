"""Tests for the Table 1 statistics."""

import pytest

from repro.analysis.experiments import ScenarioRecord
from repro.analysis.metrics import compute_table1_stats, group_by_scenario


def rec(tree, p, heuristic, makespan, memory, mem_lb=10.0, mk_lb=1.0):
    return ScenarioRecord(tree, 5, p, heuristic, makespan, memory, mem_lb, mk_lb)


class TestGrouping:
    def test_group_by_scenario(self):
        records = [
            rec("a", 2, "H1", 5, 20),
            rec("a", 2, "H2", 4, 30),
            rec("a", 4, "H1", 3, 25),
            rec("a", 4, "H2", 3, 25),
        ]
        groups = group_by_scenario(records)
        assert set(groups) == {("a", 2), ("a", 4)}
        assert len(groups[("a", 2)]) == 2


class TestTable1Stats:
    def test_two_heuristics_one_scenario(self):
        records = [
            rec("a", 2, "H1", makespan=10.0, memory=20.0),
            rec("a", 2, "H2", makespan=8.0, memory=30.0),
        ]
        stats = {s.heuristic: s for s in compute_table1_stats(records)}
        assert stats["H1"].best_memory == 100.0
        assert stats["H2"].best_memory == 0.0
        assert stats["H2"].best_makespan == 100.0
        assert stats["H1"].best_makespan == 0.0
        # deviations: H1 memory 20 vs lb 10 -> 100%; H2 makespan best -> 0%
        assert stats["H1"].avg_dev_seq_memory == pytest.approx(100.0)
        assert stats["H2"].avg_dev_best_makespan == pytest.approx(0.0)
        assert stats["H1"].avg_dev_best_makespan == pytest.approx(25.0)

    def test_within_5_percent(self):
        records = [
            rec("a", 2, "H1", makespan=10.0, memory=20.0),
            rec("a", 2, "H2", makespan=10.4, memory=21.0),  # within 5%
            rec("a", 2, "H3", makespan=11.0, memory=22.0),  # not within 5%
        ]
        stats = {s.heuristic: s for s in compute_table1_stats(records)}
        assert stats["H2"].within5_memory == 100.0
        assert stats["H2"].within5_makespan == 100.0
        assert stats["H3"].within5_memory == 0.0
        assert stats["H3"].within5_makespan == 0.0

    def test_ties_count_for_all(self):
        records = [
            rec("a", 2, "H1", 10.0, 20.0),
            rec("a", 2, "H2", 10.0, 20.0),
        ]
        stats = compute_table1_stats(records)
        assert all(s.best_memory == 100.0 for s in stats)
        assert all(s.best_makespan == 100.0 for s in stats)

    def test_averaged_over_scenarios(self):
        records = [
            rec("a", 2, "H1", 10.0, 20.0),
            rec("a", 2, "H2", 20.0, 10.0),
            rec("b", 2, "H1", 20.0, 10.0),
            rec("b", 2, "H2", 10.0, 20.0),
        ]
        stats = {s.heuristic: s for s in compute_table1_stats(records)}
        assert stats["H1"].best_memory == 50.0
        assert stats["H1"].best_makespan == 50.0
        assert stats["H1"].scenarios == 2

    def test_incomplete_scenario_rejected(self):
        records = [
            rec("a", 2, "H1", 10.0, 20.0),
            rec("a", 2, "H2", 20.0, 10.0),
            rec("b", 2, "H1", 20.0, 10.0),
        ]
        with pytest.raises(ValueError, match="incomplete"):
            compute_table1_stats(records)
