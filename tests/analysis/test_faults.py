"""Chaos suite: the supervised campaign runtime under injected faults.

The acceptance contract of the fault-tolerant runtime is *byte
identity*: whatever combination of worker crashes, forced compile
failures, wedged scenarios and truncated checkpoint appends a
:class:`~repro.testing.faults.FaultPlan` injects, every scenario that
eventually succeeds must produce exactly the record an undisturbed run
produces, in exactly the same stream position -- and quarantined
scenarios must surface as structured ``FailedRecord`` entries that a
resume handles deterministically (skip by default, recompute with
``retry_failed=True``).

The harness itself is deterministic (faults match on scenario identity
and attempt number, never wall-clock or worker id), which is what makes
these assertions exact rather than statistical.
"""

from __future__ import annotations

import filecmp
import json
import os
import signal
import stat
import subprocess
import sys
import time

import pytest

from repro.analysis.campaign import Campaign, recover_checkpoint, run_campaign
from repro.analysis.experiments import (
    FailedRecord,
    ScenarioRecord,
    load_records,
    save_records,
)
from repro.analysis.supervisor import RunReport
from repro.testing.faults import (
    CRASH_EXIT,
    ENV_VAR,
    Fault,
    FaultPlan,
    active_plan,
    install,
    scenario_key,
)
from repro.workloads.dataset import TreeInstance
from repro.workloads.synthetic import random_weighted_tree


@pytest.fixture(autouse=True)
def _no_ambient_plan(monkeypatch):
    """Chaos tests control their plans explicitly; never inherit one."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    install(None)
    yield
    install(None)


@pytest.fixture
def instances(rng):
    return [
        TreeInstance(
            name=f"t{k}",
            tree=random_weighted_tree(25 + 10 * k, rng),
            matrix_name="synthetic",
            ordering="none",
            amalgamation=1,
        )
        for k in range(3)
    ]


@pytest.fixture
def campaign():
    return Campaign(
        algorithms=("ParSubtrees", "ParDeepestFirst"), processor_counts=(2, 4)
    )


@pytest.fixture
def reference(instances, campaign, tmp_path):
    """The undisturbed record stream and its checkpoint bytes."""
    path = tmp_path / "reference.jsonl"
    records = run_campaign(instances, campaign, checkpoint=str(path))
    return records, path


# ----------------------------------------------------------------------
# the fault plan itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_matching_by_scenario_index_and_attempt(self):
        f = Fault(kind="crash", scenario="t|A|2", index=3, attempts=(0, 2))
        assert f.matches("crash", "t|A|2", 3, 0)
        assert f.matches("crash", "t|A|2", 3, 2)
        assert not f.matches("crash", "t|A|2", 3, 1)
        assert not f.matches("crash", "t|A|2", 4, 0)
        assert not f.matches("crash", "t|B|2", 3, 0)
        assert not f.matches("slow", "t|A|2", 3, 0)

    def test_empty_attempts_is_poison(self):
        f = Fault(kind="crash", scenario="t|A|2")
        for attempt in range(5):
            assert f.matches("crash", "t|A|2", 0, attempt)

    def test_wildcards(self):
        f = Fault(kind="compile_failure")
        assert f.matches("compile_failure")
        assert f.matches("compile_failure", "any", 7, 3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(kind="meteor")

    def test_json_round_trip(self):
        plan = FaultPlan(
            (
                Fault(kind="crash", scenario="t|A|2", attempts=(0,)),
                Fault(kind="slow", index=4, seconds=1.5),
                Fault(kind="truncate_write", record=2, keep_bytes=7),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_diagnostics(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ValueError, match=r'\{"faults": \[...\]\}'):
            FaultPlan.from_json('{"other": 1}')
        with pytest.raises(ValueError, match="fault #0 is invalid"):
            FaultPlan.from_json('{"faults": [{"kind": "meteor"}]}')

    def test_without(self):
        plan = FaultPlan(
            (Fault(kind="crash"), Fault(kind="compile_failure"), Fault(kind="crash"))
        )
        assert plan.without("crash") == FaultPlan((Fault(kind="compile_failure"),))

    def test_env_activation_inline_and_file(self, monkeypatch, tmp_path):
        plan = FaultPlan((Fault(kind="compile_failure"),))
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        assert active_plan() == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        monkeypatch.setenv(ENV_VAR, f"@{path}")
        assert active_plan() == plan
        monkeypatch.delenv(ENV_VAR)
        assert active_plan() is None

    def test_installed_plan_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, FaultPlan((Fault(kind="crash"),)).to_json())
        installed = FaultPlan((Fault(kind="compile_failure"),))
        install(installed)
        assert active_plan() == installed

    def test_scenario_key_matches_record_identity(self):
        assert scenario_key("t1", "MemoryBounded@cap1.5", 4) == "t1|MemoryBounded@cap1.5|4"


# ----------------------------------------------------------------------
# supervised mode: fault-free byte identity
# ----------------------------------------------------------------------
class TestSupervisedEquivalence:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_fault_free_supervised_is_byte_identical(
        self, instances, campaign, reference, tmp_path, workers
    ):
        records, ref_path = reference
        path = tmp_path / "supervised.jsonl"
        got = run_campaign(
            instances, campaign, checkpoint=str(path), supervise=True, workers=workers
        )
        assert got == records
        assert filecmp.cmp(str(ref_path), str(path), shallow=False)

    def test_fault_free_shared_memory_supervised(
        self, instances, campaign, reference, tmp_path
    ):
        records, ref_path = reference
        path = tmp_path / "shm.jsonl"
        got = run_campaign(
            instances,
            campaign,
            checkpoint=str(path),
            supervise=True,
            workers=2,
            shared_memory=True,
        )
        assert got == records
        assert filecmp.cmp(str(ref_path), str(path), shallow=False)

    def test_report_records_backends_and_clean_run(self, instances, campaign):
        reports: list[RunReport] = []
        run_campaign(instances, campaign, supervise=True, workers=2, report=reports)
        (rep,) = reports
        assert rep.workers == 2
        assert len(rep.backends) >= 1
        for _wid, chosen, _skipped in rep.backends:
            assert chosen in ("python", "numba", "c", "kernel")
        assert rep.respawns == 0
        assert not rep.retried and not rep.quarantined
        assert "no retries, no quarantines" in rep.summary()


# ----------------------------------------------------------------------
# chaos equivalence: crash + compile failure + timeout in one run
# ----------------------------------------------------------------------
class TestChaosEquivalence:
    def test_crash_compile_failure_and_timeout_heal_to_byte_identity(
        self, instances, campaign, reference, tmp_path
    ):
        """The issue's acceptance scenario: at least one worker crash,
        one forced compile failure and one scenario timeout with retry
        in a single campaign -- every record byte-identical to the
        undisturbed run."""
        records, ref_path = reference
        plan = FaultPlan(
            (
                Fault(kind="crash", index=3, attempts=(0,)),
                Fault(kind="slow", index=7, attempts=(0,), seconds=8.0),
                Fault(kind="compile_failure"),
            )
        )
        path = tmp_path / "chaos.jsonl"
        reports: list[RunReport] = []
        got = run_campaign(
            instances,
            campaign,
            checkpoint=str(path),
            supervise=True,
            workers=2,
            retries=2,
            timeout=1.0,
            backoff=0.05,
            fault_plan=plan,
            report=reports,
        )
        assert got == records
        assert filecmp.cmp(str(ref_path), str(path), shallow=False)
        (rep,) = reports
        assert rep.respawns >= 1  # the crashed worker was replaced
        statuses = {a.status for s in rep.scenarios for a in s.attempts}
        assert "crash" in statuses and "timeout" in statuses
        assert not rep.quarantined  # everything recovered
        # the injected compile failure forced the chain off the C backend
        for _wid, chosen, _skipped in rep.backends:
            assert chosen != "c"

    def test_crash_on_every_worker_still_completes(
        self, instances, campaign, reference
    ):
        records, _ = reference
        # first attempt of four different scenarios crashes the worker
        plan = FaultPlan(
            tuple(Fault(kind="crash", index=i, attempts=(0,)) for i in (0, 4, 8, 11))
        )
        got = run_campaign(
            instances,
            campaign,
            supervise=True,
            workers=2,
            retries=1,
            backoff=0.02,
            fault_plan=plan,
        )
        assert got == records


# ----------------------------------------------------------------------
# quarantine and deterministic resume
# ----------------------------------------------------------------------
class TestQuarantine:
    POISON = "t1|ParSubtrees|2"

    def poison_plan(self):
        return FaultPlan((Fault(kind="crash", scenario=self.POISON),))

    def test_poison_scenario_becomes_failed_record(
        self, instances, campaign, tmp_path
    ):
        path = tmp_path / "poison.jsonl"
        reports: list[RunReport] = []
        got = run_campaign(
            instances,
            campaign,
            checkpoint=str(path),
            supervise=True,
            retries=1,
            backoff=0.02,
            fault_plan=self.poison_plan(),
            report=reports,
        )
        failed = [r for r in got if isinstance(r, FailedRecord)]
        assert len(failed) == 1
        (fr,) = failed
        assert (fr.tree, fr.heuristic, fr.p) == ("t1", "ParSubtrees", 2)
        assert fr.attempts == 2  # retries=1 -> two attempts total
        assert f"exit code {CRASH_EXIT}" in fr.error
        # the record sits at its exact stream position in the checkpoint
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        expected = [
            sc.key() for inst in instances for sc in campaign.scenarios_for(inst.name)
        ]
        assert [(r["tree"], r["heuristic"], r["p"]) for r in rows] == expected
        assert [bool(r.get("failed")) for r in rows].count(True) == 1
        (rep,) = reports
        assert [s.key for s in rep.quarantined] == [self.POISON]

    def test_resume_skips_failed_records_by_default(
        self, instances, campaign, tmp_path
    ):
        path = tmp_path / "poison.jsonl"
        first = run_campaign(
            instances,
            campaign,
            checkpoint=str(path),
            supervise=True,
            retries=0,
            fault_plan=self.poison_plan(),
        )
        before = path.read_bytes()
        resumed = run_campaign(
            instances, campaign, checkpoint=str(path), resume=True, supervise=True
        )
        assert resumed == first  # nothing recomputed, failure preserved
        assert path.read_bytes() == before

    def test_retry_failed_heals_to_byte_identity(
        self, instances, campaign, reference, tmp_path
    ):
        records, ref_path = reference
        path = tmp_path / "poison.jsonl"
        run_campaign(
            instances,
            campaign,
            checkpoint=str(path),
            supervise=True,
            retries=0,
            fault_plan=self.poison_plan(),
        )
        healed = run_campaign(
            instances,
            campaign,
            checkpoint=str(path),
            resume=True,
            supervise=True,
            retry_failed=True,  # the fault is gone: recompute from there
        )
        assert healed == records
        assert filecmp.cmp(str(ref_path), str(path), shallow=False)

    def test_deterministic_error_quarantines_without_retry(self, instances):
        """An infeasible memory cap raises MemoryCapError on every
        attempt; the supervisor must not burn retries on it."""
        camp = Campaign(
            algorithms=("MemoryBounded",),
            processor_counts=(2,),
            cap_factors=(0.05,),  # far below the sequential optimum
        )
        reports: list[RunReport] = []
        got = run_campaign(
            instances[:1], camp, supervise=True, retries=3, report=reports
        )
        (fr,) = got
        assert isinstance(fr, FailedRecord)
        assert fr.attempts == 1  # quarantined on first sight
        assert "MemoryCapError" in fr.error
        (rep,) = reports
        assert rep.quarantined and len(rep.quarantined[0].attempts) == 1

    def test_recover_checkpoint_round_trips_failed_records(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        ok = ScenarioRecord("t", 5, 2, "A", 1.0, 2.0, 1.0, 1.0)
        bad = FailedRecord("t", 5, 2, "B", "MemoryCapError: infeasible", 1)
        save_records([ok, bad], str(path), append=True)
        records, _pos = recover_checkpoint(str(path))
        assert records == [ok, bad]

    def test_load_records_filters_failed_by_default(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        ok = ScenarioRecord("t", 5, 2, "A", 1.0, 2.0, 1.0, 1.0)
        bad = FailedRecord("t", 5, 2, "B", "boom", 2)
        save_records([ok, bad], str(path), append=True)
        assert load_records(str(path)) == [ok]
        assert load_records(str(path), include_failed=True) == [ok, bad]


# ----------------------------------------------------------------------
# durability: fsync pinning for checkpoints (satellite)
# ----------------------------------------------------------------------
class TestDurability:
    def records(self):
        return [ScenarioRecord("t", 5, 2, "A", 1.0, 2.0, 1.0, 1.0)]

    def test_jsonl_append_fsyncs_before_returning(self, tmp_path, monkeypatch):
        calls: list[int] = []
        real = os.fsync

        def spy(fd):
            calls.append(fd)
            return real(fd)

        monkeypatch.setattr(os, "fsync", spy)
        save_records(self.records(), str(tmp_path / "r.jsonl"), append=True)
        assert calls, "append path returned without fsync"

    def test_fresh_write_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        synced: list[tuple[int, bool]] = []
        real = os.fsync

        def spy(fd):
            synced.append((fd, stat.S_ISDIR(os.fstat(fd).st_mode)))
            return real(fd)

        monkeypatch.setattr(os, "fsync", spy)
        save_records(self.records(), str(tmp_path / "r.json"))
        kinds = [is_dir for _fd, is_dir in synced]
        assert False in kinds, "file contents not fsynced"
        assert True in kinds, "containing directory not fsynced after rename"


# ----------------------------------------------------------------------
# subprocess chaos: truncated writes, SIGKILL, CLI signals
# ----------------------------------------------------------------------
_GRID_SRC = """
import numpy as np
from repro.analysis.campaign import Campaign, run_campaign
from repro.workloads.dataset import TreeInstance
from repro.workloads.synthetic import random_weighted_tree

def make_grid(sizes=(25, 35, 45), backend=None):
    rng = np.random.default_rng(20130520)
    instances = [
        TreeInstance(name=f"t{k}", tree=random_weighted_tree(n, rng),
                     matrix_name="synthetic", ordering="none", amalgamation=1)
        for k, n in enumerate(sizes)
    ]
    campaign = Campaign(algorithms=("ParSubtrees", "ParDeepestFirst"),
                        processor_counts=(2, 4), backend=backend)
    return instances, campaign
"""

#: sizes that keep a python-backend run alive for a few seconds, with
#: the small first tree delivering early checkpoint lines to gate on
_SLOW_SIZES = (2000, 50000, 70000)


def _grid(sizes=(25, 35, 45), backend=None):
    namespace: dict = {}
    exec(_GRID_SRC, namespace)
    return namespace["make_grid"](sizes=sizes, backend=backend)


def _wait_for_lines(path, k, proc, deadline=120.0):
    """Block until ``path`` holds ``k`` complete lines (or the process
    exits first); returns the observed line count."""
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline:
        try:
            lines = open(path, "rb").read().count(b"\n")
        except FileNotFoundError:
            lines = 0
        if lines >= k or proc.poll() is not None:
            return lines
        time.sleep(0.005)
    raise AssertionError(f"checkpoint never reached {k} lines")


class TestTruncatedWrites:
    def test_truncated_append_then_resume_heals(self, tmp_path):
        """A power-loss-shaped fault: the 5th checkpoint append writes
        half a line and hard-exits. The resume drops the residue and
        the healed file is byte-identical to an undisturbed run."""
        instances, campaign = _grid()
        ref = tmp_path / "ref.jsonl"
        run_campaign(instances, campaign, checkpoint=str(ref))

        ck = tmp_path / "ck.jsonl"
        code = (
            _GRID_SRC
            + f"""
instances, campaign = make_grid()
run_campaign(instances, campaign, checkpoint={str(ck)!r})
"""
        )
        plan = FaultPlan((Fault(kind="truncate_write", record=4),))
        env = {**os.environ, ENV_VAR: plan.to_json(), "PYTHONPATH": _pythonpath()}
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, timeout=300
        )
        assert proc.returncode == CRASH_EXIT, proc.stderr.decode()
        data = ck.read_bytes()
        assert data.count(b"\n") == 4  # four whole records survived
        assert not data.endswith(b"\n")  # ...plus the torn fifth line
        records, pos = recover_checkpoint(str(ck))
        assert len(records) == 4 and pos < len(data)

        resumed = run_campaign(
            instances, campaign, checkpoint=str(ck), resume=True
        )
        assert resumed == run_campaign(instances, campaign)
        assert filecmp.cmp(str(ref), str(ck), shallow=False)


class TestKillResume:
    """SIGKILL mid-grid under every execution mode, then resume: the
    healed checkpoint must be byte-identical to an undisturbed run."""

    MODES = {
        "megabatch-serial": {"workers": 1},
        "pooled": {"workers": 2},
        "shared-memory": {"workers": 2, "shared_memory": True},
    }

    @pytest.fixture(scope="class")
    def slow_reference(self, tmp_path_factory):
        instances, campaign = _grid(sizes=_SLOW_SIZES, backend="python")
        path = tmp_path_factory.mktemp("killref") / "ref.jsonl"
        run_campaign(instances, campaign, checkpoint=str(path))
        return path

    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_sigkill_then_resume_is_byte_identical(
        self, mode, slow_reference, tmp_path
    ):
        kwargs = self.MODES[mode]
        ck = tmp_path / "ck.jsonl"
        code = (
            _GRID_SRC
            + f"""
instances, campaign = make_grid(sizes={_SLOW_SIZES!r}, backend="python")
run_campaign(instances, campaign, checkpoint={str(ck)!r}, **{kwargs!r})
"""
        )
        env = {**os.environ, "PYTHONPATH": _pythonpath()}
        proc = subprocess.Popen(
            [sys.executable, "-c", code],
            env=env,
            start_new_session=True,  # killpg reaps pool workers too
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            _wait_for_lines(ck, 1, proc)
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - safety net
                os.killpg(proc.pid, signal.SIGKILL)
        assert proc.returncode == -signal.SIGKILL, (
            "grid finished before the kill; grow _SLOW_SIZES"
        )

        instances, campaign = _grid(sizes=_SLOW_SIZES, backend="python")
        run_campaign(instances, campaign, checkpoint=str(ck), resume=True)
        assert filecmp.cmp(str(slow_reference), str(ck), shallow=False)


def _pythonpath() -> str:
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    existing = os.environ.get("PYTHONPATH", "")
    return os.path.abspath(src) + (os.pathsep + existing if existing else "")


class TestCliSignals:
    def test_sigterm_flushes_and_hints_resume(self, tmp_path):
        """`repro campaign` under SIGTERM: exits 128+15, keeps the
        flushed checkpoint, prints the resume hint, and leaves no
        wedged worker behind."""
        ck = tmp_path / "ck.jsonl"
        # scenario #2 wedges for 300s: the run is guaranteed to be
        # mid-flight (with 2 records flushed) whenever the signal lands
        plan = FaultPlan((Fault(kind="slow", index=2, seconds=300.0),))
        env = {
            **os.environ,
            ENV_VAR: plan.to_json(),
            "PYTHONPATH": _pythonpath(),
        }
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "campaign",
                "--scale",
                "tiny",
                "--limit",
                "2",
                "--algos",
                "ParSubtrees,ParDeepestFirst",
                "--procs",
                "2,4",
                "--supervise",
                "--resume",
                str(ck),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            start_new_session=True,
        )
        try:
            _wait_for_lines(ck, 2, proc)
            assert proc.poll() is None, proc.stderr.read().decode()
            proc.send_signal(signal.SIGTERM)
            _out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - safety net
                os.killpg(proc.pid, signal.SIGKILL)
        assert proc.returncode == 128 + signal.SIGTERM
        text = err.decode()
        assert "interrupted by SIGTERM" in text
        assert f"--resume {ck}" in text
        # the flushed prefix is intact and resumable
        records, _pos = recover_checkpoint(str(ck))
        assert len(records) >= 2
