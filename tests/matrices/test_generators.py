"""Tests for the synthetic matrix generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices.generators import (
    banded,
    grid2d,
    grid3d,
    random_symmetric,
    scale_free,
    symmetrize,
)


def assert_valid_pattern(a: sp.csr_matrix):
    """Square, pattern-symmetric, full diagonal, binary values."""
    assert a.shape[0] == a.shape[1]
    diff = (a != a.T).nnz
    assert diff == 0
    assert np.all(a.diagonal() == 1.0)
    assert np.all(a.data == 1.0)


class TestGenerators:
    def test_grid2d(self):
        a = grid2d(5)
        assert a.shape == (25, 25)
        assert_valid_pattern(a)
        # interior nodes have 4 neighbours + diagonal
        degrees = np.diff(a.indptr)
        assert degrees.max() == 5

    def test_grid3d(self):
        a = grid3d(3)
        assert a.shape == (27, 27)
        assert_valid_pattern(a)
        assert np.diff(a.indptr).max() == 7

    def test_banded(self):
        a = banded(20, 3)
        assert_valid_pattern(a)
        rows, cols = a.nonzero()
        assert np.abs(rows - cols).max() == 3

    def test_random_symmetric(self, rng):
        a = random_symmetric(50, 4.0, rng)
        assert_valid_pattern(a)
        assert a.nnz / 50 >= 2.0  # roughly the requested density

    def test_scale_free(self, rng):
        a = scale_free(60, 2, rng)
        assert_valid_pattern(a)
        degrees = np.diff(a.indptr)
        assert degrees.max() > degrees.mean() * 2  # heavy tail

    def test_symmetrize_arbitrary(self, rng):
        raw = sp.random(10, 10, density=0.2, random_state=42, format="csr")
        a = symmetrize(raw)
        assert_valid_pattern(a)

    @pytest.mark.parametrize("fn,arg", [(grid2d, 0), (grid3d, 0), (banded, 0)])
    def test_rejects_degenerate(self, fn, arg):
        with pytest.raises(ValueError):
            fn(arg) if fn is not banded else fn(arg, 1)

    def test_banded_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            banded(10, 0)

    def test_determinism(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        a = random_symmetric(30, 3.0, rng1)
        b = random_symmetric(30, 3.0, rng2)
        assert (a != b).nnz == 0
