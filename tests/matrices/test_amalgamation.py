"""Tests for relaxed node amalgamation and the weight model."""

import numpy as np
import pytest

from repro.matrices.amalgamation import amalgamate
from repro.matrices.generators import banded, grid2d, random_symmetric
from repro.matrices.ordering import apply_ordering, nested_dissection
from repro.matrices.symbolic import symbolic_cholesky
from repro.matrices.weights import node_weights


class TestNoAmalgamation:
    def test_cap1_is_identity(self):
        sym = symbolic_cholesky(grid2d(5))
        at = amalgamate(sym, 1)
        # every elimination node is its own assembly node (one tree root
        # for a connected grid, no virtual root needed)
        assert at.tree.n == sym.n
        assert np.all(at.eta == 1)
        assert np.array_equal(at.mu, sym.counts)

    def test_cap1_weights_formula(self):
        sym = symbolic_cholesky(banded(6, 1))
        at = amalgamate(sym, 1)
        for k in range(at.tree.n):
            n_i, w_i, f_i = node_weights(int(at.eta[k]), int(at.mu[k]))
            assert at.tree.sizes[k] == n_i
            assert at.tree.w[k] == w_i
            assert at.tree.f[k] == f_i


class TestCaps:
    @pytest.mark.parametrize("cap", [2, 4, 16])
    def test_eta_within_cap_and_conserved(self, cap):
        sym = symbolic_cholesky(grid2d(6))
        at = amalgamate(sym, cap)
        assert at.eta.max() <= cap
        # every elimination node is in exactly one group
        assert at.eta.sum() >= sym.n
        assert sorted(set(at.group_of)) == list(range(len(set(at.group_of))))

    def test_monotone_coarsening(self):
        """Bigger caps yield (weakly) fewer assembly nodes."""
        sym = symbolic_cholesky(grid2d(8))
        ns = [amalgamate(sym, cap).tree.n for cap in (1, 2, 4, 16)]
        assert ns == sorted(ns, reverse=True)

    def test_chain_amalgamation(self):
        """A tridiagonal etree is a chain of perfectly nested columns:
        cap=4 packs nodes in groups of 4."""
        sym = symbolic_cholesky(banded(16, 1))
        at = amalgamate(sym, 4, relax=0.5)
        assert at.tree.n < 16
        assert at.eta.max() == 4

    def test_rejects_bad_cap(self):
        sym = symbolic_cholesky(banded(4, 1))
        with pytest.raises(ValueError):
            amalgamate(sym, 0)


class TestTreeValidity:
    def test_forest_gets_virtual_root(self):
        import scipy.sparse as sp

        sym = symbolic_cholesky(sp.identity(4, format="csr"))
        at = amalgamate(sym, 1)
        assert at.tree.n == 5  # 4 + virtual root
        assert at.tree.degree(at.tree.root) == 4
        assert at.tree.f[at.tree.root] == 0.0

    def test_parent_consistency(self, rng):
        """Assembly-tree edges reflect etree edges between groups."""
        a = random_symmetric(40, 3.0, rng)
        perm = nested_dissection(a, leaf_size=8)
        sym = symbolic_cholesky(apply_ordering(a, perm))
        at = amalgamate(sym, 4)
        for j in range(sym.n):
            p = int(sym.parent[j])
            if p == -1:
                continue
            gj, gp = int(at.group_of[j]), int(at.group_of[p])
            if gj != gp:
                # gp must be on the assembly path above gj
                anc = int(at.tree.parent[gj])
                assert anc == gp or anc != -1

    def test_weights_positive(self):
        sym = symbolic_cholesky(grid2d(6))
        at = amalgamate(sym, 4)
        assert np.all(at.tree.w > 0)
        assert np.all(at.tree.sizes > 0)
        assert np.all(at.tree.f >= 0)


class TestWeightsFormulas:
    def test_pebble_like_minimum(self):
        assert node_weights(1, 1) == (1.0, 2.0 / 3.0, 0.0)

    def test_known_values(self):
        n_i, w_i, f_i = node_weights(2, 4)
        assert n_i == 4 + 2 * 2 * 3
        assert w_i == (2 / 3) * 8 + 4 * 3 + 2 * 9
        assert f_i == 9.0

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            node_weights(0, 1)
        with pytest.raises(ValueError):
            node_weights(1, 0)
