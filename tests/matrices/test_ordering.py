"""Tests for the fill-reducing orderings."""

import numpy as np
import pytest

from repro.matrices.generators import banded, grid2d, random_symmetric
from repro.matrices.ordering import (
    ORDERINGS,
    apply_ordering,
    minimum_degree,
    natural,
    nested_dissection,
    rcm,
)
from repro.matrices.symbolic import symbolic_cholesky


class TestPermutationValidity:
    @pytest.mark.parametrize("name", sorted(ORDERINGS))
    def test_is_permutation(self, name, rng):
        a = random_symmetric(40, 3.0, rng)
        perm = ORDERINGS[name](a)
        assert sorted(perm) == list(range(40))

    def test_apply_ordering_preserves_structure(self, rng):
        a = random_symmetric(20, 3.0, rng)
        perm = minimum_degree(a)
        b = apply_ordering(a, perm)
        assert b.nnz == a.nnz
        assert (b != b.T).nnz == 0


class TestFillReduction:
    def test_min_degree_beats_natural_on_grid(self):
        a = grid2d(10)
        nat = symbolic_cholesky(a).factor_nnz
        md = symbolic_cholesky(apply_ordering(a, minimum_degree(a))).factor_nnz
        assert md < nat

    def test_nested_dissection_beats_natural_on_grid(self):
        a = grid2d(10)
        nat = symbolic_cholesky(a).factor_nnz
        nd = symbolic_cholesky(apply_ordering(a, nested_dissection(a))).factor_nnz
        assert nd < nat

    def test_min_degree_optimal_on_tridiagonal(self):
        """A tridiagonal matrix has no fill under the natural order and
        minimum degree must not do worse."""
        a = banded(30, 1)
        base = symbolic_cholesky(a).factor_nnz
        md = symbolic_cholesky(apply_ordering(a, minimum_degree(a))).factor_nnz
        assert md == base

    def test_rcm_reduces_bandwidth(self, rng):
        a = random_symmetric(50, 3.0, rng)
        perm = rcm(a)
        b = apply_ordering(a, perm)
        rows, cols = a.nonzero()
        rows2, cols2 = b.nonzero()
        assert np.abs(rows2 - cols2).max() <= np.abs(rows - cols).max()


class TestTreeShapes:
    def test_nd_gives_shallower_etree_than_rcm(self):
        """The key shape contrast of the data set: nested dissection
        yields bushy trees, RCM chain-like ones."""
        a = grid2d(12)
        nd_sym = symbolic_cholesky(apply_ordering(a, nested_dissection(a)))
        rcm_sym = symbolic_cholesky(apply_ordering(a, rcm(a)))
        assert nd_sym.height() < rcm_sym.height()

    def test_natural_identity(self):
        a = grid2d(4)
        assert list(natural(a)) == list(range(16))

    def test_nested_dissection_disconnected(self):
        """ND must handle disconnected graphs (separator recursion)."""
        import scipy.sparse as sp

        a = sp.block_diag([grid2d(5), grid2d(4)], format="csr")
        perm = nested_dissection(a, leaf_size=8)
        assert sorted(perm) == list(range(41))
