"""Tests for the numeric multifrontal Cholesky executor."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices.generators import banded, grid2d, random_symmetric
from repro.matrices.multifrontal import (
    column_structures,
    multifrontal_cholesky,
)
from repro.matrices.etree import elimination_tree
from repro.matrices.symbolic import dense_symbolic_cholesky


def make_spd(pattern: sp.csr_matrix, rng=None) -> sp.csr_matrix:
    """Turn a symmetric pattern into an SPD matrix (diagonal dominance)."""
    rng = rng or np.random.default_rng(0)
    a = sp.csr_matrix(pattern, copy=True).astype(np.float64)
    a.data = rng.uniform(0.1, 1.0, a.nnz)
    a = (a + a.T) / 2
    a = a + sp.diags(np.asarray(abs(a).sum(axis=1)).ravel() + 1.0)
    return sp.csr_matrix(a)


class TestColumnStructures:
    def test_matches_dense_pattern(self, rng):
        pattern = random_symmetric(15, 3.0, rng)
        parent = elimination_tree(pattern)
        structs = column_structures(pattern, parent)
        L = dense_symbolic_cholesky(pattern)
        for j in range(15):
            assert list(structs[j]) == list(np.flatnonzero(L[:, j]))

    def test_tridiagonal(self):
        pattern = banded(5, 1)
        structs = column_structures(pattern, elimination_tree(pattern))
        assert list(structs[0]) == [0, 1]
        assert list(structs[4]) == [4]


class TestNumericCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_numpy_cholesky(self, seed):
        rng = np.random.default_rng(seed)
        a = make_spd(random_symmetric(20, 3.0, rng), rng)
        result = multifrontal_cholesky(a)
        ref = np.linalg.cholesky(a.toarray())
        assert np.allclose(result.L, ref, atol=1e-8)

    def test_grid(self):
        a = make_spd(grid2d(5))
        result = multifrontal_cholesky(a)
        assert np.allclose(result.L @ result.L.T, a.toarray(), atol=1e-8)

    def test_any_topological_order_same_factor(self, rng):
        """The key scheduling property: the factor is order-invariant."""
        a = make_spd(random_symmetric(15, 3.0, rng), rng)
        parent = elimination_tree(a)
        ref = multifrontal_cholesky(a).L
        # a random topological order: repeatedly pick a random ready node
        remaining = [sum(1 for j in range(15) if parent[j] == i) for i in range(15)]
        ready = [i for i in range(15) if remaining[i] == 0]
        order = []
        while ready:
            k = int(rng.integers(0, len(ready)))
            node = ready.pop(k)
            order.append(node)
            p = int(parent[node])
            if p != -1:
                remaining[p] -= 1
                if remaining[p] == 0:
                    ready.append(p)
        alt = multifrontal_cholesky(a, order=np.asarray(order)).L
        assert np.allclose(alt, ref, atol=1e-10)

    def test_non_topological_order_rejected(self):
        a = make_spd(banded(4, 1))
        with pytest.raises(ValueError, match="not topological"):
            multifrontal_cholesky(a, order=np.array([3, 2, 1, 0]))

    def test_non_spd_rejected(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0], [2.0, 1.0]]))  # indefinite
        with pytest.raises(np.linalg.LinAlgError, match="pivot"):
            multifrontal_cholesky(a)


class TestScheduleDriven:
    def test_heuristic_schedules_compute_correct_factor(self, rng):
        """End-to-end: every heuristic's schedule of the elimination
        tree drives a correct numeric factorization."""
        from repro.matrices.amalgamation import amalgamate
        from repro.matrices.symbolic import symbolic_cholesky
        from repro.parallel import HEURISTICS

        a = make_spd(grid2d(4), rng)
        tree = amalgamate(symbolic_cholesky(a), 1).tree  # eta=1: one node/column
        ref = np.linalg.cholesky(a.toarray())
        for name, fn in HEURISTICS.items():
            schedule = fn(tree, 3)
            result = multifrontal_cholesky(a, schedule=schedule)
            assert np.allclose(result.L, ref, atol=1e-8), name

    def test_update_memory_positive(self, rng):
        a = make_spd(grid2d(4), rng)
        result = multifrontal_cholesky(a)
        assert result.peak_update_memory > 0
