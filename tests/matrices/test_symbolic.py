"""Tests for the symbolic factorization wrapper."""

import numpy as np
import scipy.sparse as sp

from repro.matrices.generators import banded, grid2d, random_symmetric
from repro.matrices.symbolic import (
    dense_symbolic_cholesky,
    symbolic_cholesky,
)


class TestSymbolicFactorization:
    def test_tridiagonal(self):
        sym = symbolic_cholesky(banded(8, 1))
        assert sym.n == 8
        assert sym.factor_nnz == 2 * 8 - 1
        assert sym.height() == 7
        assert sym.n_roots() == 1

    def test_identity_forest(self):
        sym = symbolic_cholesky(sp.identity(6, format="csr"))
        assert sym.n_roots() == 6
        assert sym.factor_nnz == 6
        assert sym.height() == 0

    def test_factor_nnz_matches_dense(self, rng):
        for _ in range(5):
            a = random_symmetric(int(rng.integers(5, 25)), 3.0, rng)
            sym = symbolic_cholesky(a)
            L = dense_symbolic_cholesky(a)
            assert sym.factor_nnz == int(L.sum())

    def test_grid_counts_positive(self):
        sym = symbolic_cholesky(grid2d(6))
        assert np.all(sym.counts >= 1)
        assert sym.counts[-1] == 1  # last column: diagonal only


class TestDenseReference:
    def test_no_fill_on_tridiagonal(self):
        L = dense_symbolic_cholesky(banded(6, 1))
        assert int(L.sum()) == 11

    def test_full_fill_on_arrow_reversed(self):
        """Arrow pointing up-left creates total fill below the spike."""
        n = 5
        a = sp.lil_matrix((n, n))
        a[np.arange(n), np.arange(n)] = 1
        a[0, :] = 1
        a[:, 0] = 1
        L = dense_symbolic_cholesky(sp.csr_matrix(a))
        assert int(L.sum()) == n * (n + 1) // 2  # completely dense

    def test_lower_triangular(self, rng):
        a = random_symmetric(12, 3.0, rng)
        L = dense_symbolic_cholesky(a)
        assert not np.any(np.triu(L, k=1))
