"""Tests for the Matrix Market reader/writer."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices.generators import grid2d, random_symmetric
from repro.matrices.io import (
    MatrixMarketError,
    read_matrix_market,
    write_matrix_market,
)


class TestRoundTrip:
    def test_general_roundtrip(self, tmp_path, rng):
        a = random_symmetric(20, 3.0, rng)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, a)
        b = read_matrix_market(path)
        assert (a != b).nnz == 0

    def test_symmetric_roundtrip(self, tmp_path):
        a = grid2d(6)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, a, symmetric=True)
        b = read_matrix_market(path)
        assert (a != b).nnz == 0
        # the file stores only the lower triangle
        with open(path) as fh:
            header = fh.readline()
        assert "symmetric" in header

    def test_gzip_roundtrip(self, tmp_path):
        a = grid2d(4)
        path = tmp_path / "m.mtx.gz"
        write_matrix_market(path, a, symmetric=True)
        b = read_matrix_market(path)
        assert (a != b).nnz == 0

    def test_values_preserved(self, tmp_path):
        a = sp.csr_matrix(np.array([[1.5, 0.0], [2.25, 3.0]]))
        path = tmp_path / "v.mtx"
        write_matrix_market(path, a)
        b = read_matrix_market(path)
        assert np.allclose(b.toarray(), a.toarray())


class TestParsing:
    def write(self, tmp_path, text):
        path = tmp_path / "x.mtx"
        path.write_text(text)
        return path

    def test_pattern_field(self, tmp_path):
        path = self.write(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n1 1\n2 2\n",
        )
        a = read_matrix_market(path)
        assert a.nnz == 2
        assert a[0, 0] == 1.0

    def test_comments_skipped(self, tmp_path):
        path = self.write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n"
            "1 1 1\n1 1 2.0\n",
        )
        a = read_matrix_market(path)
        assert a[0, 0] == 2.0

    def test_symmetric_expansion(self, tmp_path):
        path = self.write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "2 2 2\n1 1 1.0\n2 1 5.0\n",
        )
        a = read_matrix_market(path)
        assert a[0, 1] == 5.0 and a[1, 0] == 5.0

    def test_missing_header(self, tmp_path):
        path = self.write(tmp_path, "2 2 1\n1 1 1.0\n")
        with pytest.raises(MatrixMarketError, match="header"):
            read_matrix_market(path)

    def test_unsupported_field(self, tmp_path):
        path = self.write(
            tmp_path,
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
        )
        with pytest.raises(MatrixMarketError, match="unsupported field"):
            read_matrix_market(path)

    def test_truncated_entries(self, tmp_path):
        path = self.write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
        )
        with pytest.raises(MatrixMarketError, match="expected 2"):
            read_matrix_market(path)

    def test_out_of_bounds_index(self, tmp_path):
        path = self.write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
        )
        with pytest.raises(MatrixMarketError, match="out of bounds"):
            read_matrix_market(path)

    def test_write_asymmetric_as_symmetric_rejected(self, tmp_path):
        a = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))
        with pytest.raises(MatrixMarketError, match="not symmetric"):
            write_matrix_market(tmp_path / "x.mtx", a, symmetric=True)


class TestPipelineIntegration:
    def test_mtx_to_assembly_tree(self, tmp_path):
        """A .mtx file can feed the full pipeline, as with real UFL data."""
        from repro.matrices import amalgamate, symbolic_cholesky

        path = tmp_path / "grid.mtx"
        write_matrix_market(path, grid2d(5), symmetric=True)
        a = read_matrix_market(path)
        tree = amalgamate(symbolic_cholesky(a), 2).tree
        assert tree.n > 1
