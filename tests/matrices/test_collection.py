"""Tests for the synthetic matrix collection."""

import pytest

from repro.matrices.collection import SCALES, default_collection


class TestCollection:
    def test_tiny_scale(self):
        mats = default_collection("tiny")
        assert len(mats) >= 6
        names = [m.name for m in mats]
        assert len(set(names)) == len(names)  # unique names

    def test_ufl_like_filters(self):
        """Every matrix satisfies the paper's structural filters
        (square, symmetric pattern; density is scale-dependent)."""
        for m in default_collection("tiny"):
            a = m.matrix
            assert a.shape[0] == a.shape[1]
            assert (a != a.T).nnz == 0
            assert m.nnz_per_row >= 1.5

    def test_deterministic(self):
        a = default_collection("tiny", seed=11)
        b = default_collection("tiny", seed=11)
        for ma, mb in zip(a, b):
            assert ma.name == mb.name
            assert (ma.matrix != mb.matrix).nnz == 0

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            default_collection("huge")

    def test_scales_increase(self):
        assert SCALES["tiny"] < SCALES["small"] < SCALES["medium"]
