"""Tests certifying the elimination tree and column counts."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices.etree import column_counts, elimination_tree, etree_heights
from repro.matrices.generators import banded, grid2d, random_symmetric
from repro.matrices.symbolic import dense_symbolic_cholesky


def reference_etree_and_counts(a):
    """Derive etree and counts from the dense factor pattern."""
    L = dense_symbolic_cholesky(a)
    n = L.shape[0]
    parent = np.full(n, -1, dtype=np.int64)
    counts = np.zeros(n, dtype=np.int64)
    for j in range(n):
        below = np.flatnonzero(L[:, j])
        below = below[below >= j]
        counts[j] = below.shape[0]
        strict = below[below > j]
        if strict.shape[0]:
            parent[j] = strict[0]
    return parent, counts


class TestKnownMatrices:
    def test_diagonal_matrix_forest(self):
        a = sp.identity(5, format="csr")
        parent = elimination_tree(a)
        assert np.all(parent == -1)
        assert np.all(column_counts(a, parent) == 1)

    def test_tridiagonal_is_chain(self):
        a = banded(6, 1)
        parent = elimination_tree(a)
        assert list(parent) == [1, 2, 3, 4, 5, -1]
        # no fill on a tridiagonal: counts = 2 except last
        assert list(column_counts(a, parent)) == [2, 2, 2, 2, 2, 1]

    def test_arrow_matrix(self):
        """Arrow pointing down-right: every column hits the last row."""
        n = 5
        a = sp.lil_matrix((n, n))
        a[np.arange(n), np.arange(n)] = 1
        a[n - 1, :] = 1
        a[:, n - 1] = 1
        parent = elimination_tree(sp.csr_matrix(a))
        assert all(parent[j] == n - 1 for j in range(n - 1))
        assert parent[n - 1] == -1

    def test_heights(self):
        a = banded(6, 1)
        h = etree_heights(elimination_tree(a))
        assert h[5] == 5 and h[0] == 0

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            elimination_tree(sp.csr_matrix(np.ones((3, 4))))


class TestAgainstDenseReference:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_matrices(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 32))
        a = random_symmetric(n, 3.0, rng)
        ref_parent, ref_counts = reference_etree_and_counts(a)
        parent = elimination_tree(a)
        counts = column_counts(a, parent)
        assert np.array_equal(parent, ref_parent)
        assert np.array_equal(counts, ref_counts)

    def test_grid(self):
        a = grid2d(4)
        ref_parent, ref_counts = reference_etree_and_counts(a)
        assert np.array_equal(elimination_tree(a), ref_parent)
        assert np.array_equal(column_counts(a), ref_counts)

    def test_counts_lower_bound_is_matrix_column(self):
        """Factor columns contain at least the matrix columns."""
        a = grid2d(5)
        counts = column_counts(a)
        lower = sp.tril(a, format="csc")
        matrix_counts = np.diff(lower.indptr)
        assert np.all(counts >= matrix_counts)
