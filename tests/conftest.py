"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.tree import TaskTree, NO_PARENT


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def parent_vectors(draw, min_nodes: int = 1, max_nodes: int = 24):
    """A random in-tree parent vector: node i attaches to some j < i."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    parents = [NO_PARENT]
    for i in range(1, n):
        parents.append(draw(st.integers(min_value=0, max_value=i - 1)))
    return parents


@st.composite
def task_trees(
    draw,
    min_nodes: int = 1,
    max_nodes: int = 24,
    max_w: int = 9,
    max_f: int = 9,
    max_size: int = 5,
    min_w: int = 1,
):
    """A random weighted task tree with small integer weights."""
    parents = draw(parent_vectors(min_nodes, max_nodes))
    n = len(parents)
    w = [draw(st.integers(min_value=min_w, max_value=max_w)) for _ in range(n)]
    f = [draw(st.integers(min_value=1, max_value=max_f)) for _ in range(n)]
    sizes = [draw(st.integers(min_value=0, max_value=max_size)) for _ in range(n)]
    return TaskTree.from_parents(parents, w, f, sizes)


@st.composite
def pebble_trees(draw, min_nodes: int = 1, max_nodes: int = 24):
    """A random Pebble-Game tree (f=1, n=0, w=1)."""
    return TaskTree.pebble_game(draw(parent_vectors(min_nodes, max_nodes)))


# ----------------------------------------------------------------------
# plain fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for non-hypothesis randomized tests."""
    return np.random.default_rng(20130520)


@pytest.fixture
def chain5() -> TaskTree:
    """A 5-node chain: 0 <- 1 <- 2 <- 3 <- 4 (node 0 is the root)."""
    return TaskTree.from_parents([-1, 0, 1, 2, 3], w=1.0, f=1.0, sizes=0.0)


@pytest.fixture
def star5() -> TaskTree:
    """A root with 4 leaves."""
    return TaskTree.from_parents([-1, 0, 0, 0, 0], w=1.0, f=1.0, sizes=0.0)


@pytest.fixture
def paper_example() -> TaskTree:
    """A small irregular tree with distinct weights used across tests.

    Structure::

          0 (root)
         / \\
        1   2
       /|   |\\
      3 4   5 6
    """
    return TaskTree.from_parents(
        [-1, 0, 0, 1, 1, 2, 2],
        w=[3, 2, 4, 1, 2, 5, 1],
        f=[0, 3, 2, 4, 1, 5, 2],
        sizes=[1, 0, 2, 0, 1, 0, 3],
    )


def random_tree(rng: np.random.Generator, n: int, bias: float = 0.0) -> TaskTree:
    """Helper mirroring workloads.synthetic.random_weighted_tree."""
    from repro.workloads.synthetic import random_weighted_tree

    return random_weighted_tree(n, rng, bias)
