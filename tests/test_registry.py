"""Tests for the central algorithm registry and the generic CLI runner."""

import numpy as np
import pytest

from repro import registry
from repro.cli import main
from repro.core.validation import validate_schedule
from repro.parallel.heuristics import HEURISTICS
from repro.parallel.variants import VARIANTS
from repro.workloads.synthetic import random_weighted_tree


@pytest.fixture(scope="module")
def tree():
    return random_weighted_tree(40, np.random.default_rng(5))


class TestCatalogue:
    def test_paper_heuristics_registered_in_order(self):
        assert registry.names("parallel")[:4] == list(HEURISTICS)

    def test_variants_registered(self):
        for name in VARIANTS:
            assert registry.get(name).kind == "parallel"

    def test_sequential_traversals_registered(self):
        names = registry.names("sequential")
        assert "optimal_postorder" in names
        assert "liu_optimal_traversal" in names

    def test_heuristics_view_is_registry_backed(self):
        for name, fn in HEURISTICS.items():
            assert registry.get(name).fn is fn

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="known:"):
            registry.get("NoSuchAlgorithm")

    def test_duplicate_rejected(self):
        algo = registry.get("ParSubtrees")
        with pytest.raises(ValueError, match="already registered"):
            registry.register(algo)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            registry.Algorithm(name="x", kind="quantum", fn=lambda t: t)

    def test_metadata_present(self):
        for algo in registry.algorithms():
            assert algo.doc
            assert algo.kind in ("sequential", "parallel")


class TestRun:
    def test_every_algorithm_runs_and_validates(self, tree):
        for name in registry.names():
            for p in (1, 4):
                schedule = registry.run(name, tree, p)
                validate_schedule(schedule)
                assert schedule.p == max(1, p)

    def test_sequential_runs_serially(self, tree):
        schedule = registry.run("optimal_postorder", tree, 4)
        assert set(schedule.proc.tolist()) == {0}
        assert schedule.makespan == pytest.approx(tree.total_work())

    def test_param_override(self, tree):
        from repro.core.simulator import simulate
        from repro.sequential.postorder import optimal_postorder

        mseq = optimal_postorder(tree).peak_memory
        tight = simulate(registry.run("MemoryBounded", tree, 4, cap_factor=1.0))
        loose = simulate(registry.run("MemoryBounded", tree, 4, cap_factor=4.0))
        assert tight.peak_memory <= 1.0 * mseq + 1e-9
        assert loose.makespan <= tight.makespan + 1e-9

    def test_unknown_param_rejected(self, tree):
        with pytest.raises(TypeError, match="unknown"):
            registry.run("MemoryBounded", tree, 2, banana=1)
        with pytest.raises(TypeError, match="accepts params"):
            registry.run("ParSubtrees", tree, 2, cap_factor=2.0)


class TestCliRun:
    def test_algos_lists_registry(self, capsys):
        assert main(["algos"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out

    @pytest.mark.parametrize("name", registry.names())
    def test_run_works_for_every_registry_name(self, name, capsys):
        assert (
            main(
                [
                    "run",
                    "--algo",
                    name,
                    "--scale",
                    "tiny",
                    "--limit",
                    "1",
                    "--processors",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "makespan" in out
        assert len(out.strip().splitlines()) >= 2  # header + 1 record row

    def test_run_unknown_algo_fails_cleanly(self, capsys):
        assert main(["run", "--algo", "Nope", "--scale", "tiny"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err
