"""End-to-end integration tests: matrix -> tree -> schedules -> analysis.

These exercise the full pipeline the way the benchmark harness does, and
check the paper's qualitative findings on a miniature data set.
"""

import numpy as np
import pytest

from repro.analysis import compute_table1_stats, figure_data, run_experiments
from repro.core import memory_lower_bound, simulate
from repro.core.validation import validate_schedule
from repro.matrices import (
    amalgamate,
    apply_ordering,
    grid2d,
    minimum_degree,
    symbolic_cholesky,
)
from repro.parallel import HEURISTICS, memory_bounded_schedule
from repro.sequential import liu_optimal_traversal, optimal_postorder
from repro.workloads import build_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(scale="tiny")


@pytest.fixture(scope="module")
def records(dataset):
    return run_experiments(dataset, processor_counts=(2, 8))


class TestPipeline:
    def test_matrix_to_schedule(self):
        a = grid2d(10)
        sym = symbolic_cholesky(apply_ordering(a, minimum_degree(a)))
        tree = amalgamate(sym, 4).tree
        for name, fn in HEURISTICS.items():
            sch = fn(tree, 4)
            validate_schedule(sch)
            sim = simulate(sch)
            assert sim.makespan > 0 and sim.peak_memory > 0

    def test_dataset_complete(self, dataset):
        assert len(dataset) >= 40  # matrices x orderings x caps

    def test_records_complete(self, records, dataset):
        assert len(records) == len(dataset) * 2 * len(HEURISTICS)


class TestPaperFindings:
    """The paper's qualitative conclusions on the miniature campaign."""

    def test_parsubtrees_wins_memory(self, records):
        stats = {s.heuristic: s for s in compute_table1_stats(records)}
        assert stats["ParSubtrees"].best_memory == max(
            s.best_memory for s in stats.values()
        )

    def test_deepest_first_wins_makespan(self, records):
        stats = {s.heuristic: s for s in compute_table1_stats(records)}
        assert stats["ParDeepestFirst"].best_makespan == max(
            s.best_makespan for s in stats.values()
        )
        assert stats["ParDeepestFirst"].avg_dev_best_makespan <= 1.0

    def test_memory_focused_beats_makespan_focused_on_memory(self, records):
        stats = {s.heuristic: s for s in compute_table1_stats(records)}
        assert (
            stats["ParSubtrees"].avg_dev_seq_memory
            < stats["ParDeepestFirst"].avg_dev_seq_memory
        )

    def test_figure6_ratios_at_least_one(self, records):
        for series in figure_data(records, 6):
            assert np.all(series.x >= 1.0 - 1e-9)
            assert np.all(series.y >= 1.0 - 1e-9)

    def test_optim_improves_makespan_on_average(self, records):
        """ParSubtreesOptim trades memory for makespan vs ParSubtrees."""
        stats = {s.heuristic: s for s in compute_table1_stats(records)}
        assert (
            stats["ParSubtreesOptim"].avg_dev_best_makespan
            <= stats["ParSubtrees"].avg_dev_best_makespan + 1e-9
        )


class TestSequentialParallelConsistency:
    def test_memory_cap_pareto(self, dataset):
        """Sweeping the cap yields a monotone makespan trade-off curve."""
        tree = dataset[0].tree
        mseq = memory_lower_bound(tree)
        spans = []
        for factor in (1.0, 2.0, 4.0):
            sch = memory_bounded_schedule(tree, 8, factor * mseq)
            sim = simulate(sch)
            assert sim.peak_memory <= factor * mseq + 1e-6
            spans.append(sim.makespan)
        assert spans[0] >= spans[-1] - 1e-9

    def test_liu_vs_postorder_on_assembly_trees(self, dataset):
        """Paper 6.1: optimal postorder is near-optimal on assembly
        trees; Liu's exact algorithm never does worse."""
        for inst in dataset[:6]:
            po = optimal_postorder(inst.tree).peak_memory
            liu = liu_optimal_traversal(inst.tree).peak_memory
            assert liu <= po + 1e-9
            assert po <= 1.2 * liu  # near-optimality on realistic trees

    def test_parallel_memory_dominates_sequential(self, records):
        for r in records:
            assert r.memory >= r.memory_lb - 1e-6
