"""Tests for the paper-analog data set builder."""

import pytest

from repro.workloads.dataset import (
    AMALGAMATIONS,
    PROCESSOR_COUNTS,
    TreeInstance,
    build_dataset,
)


class TestPaperParameters:
    def test_processor_sweep(self):
        assert PROCESSOR_COUNTS == (2, 4, 8, 16, 32)

    def test_amalgamation_sweep(self):
        assert AMALGAMATIONS == (1, 2, 4, 16)


class TestBuildDataset:
    @pytest.fixture(scope="class")
    def tiny(self):
        return build_dataset(scale="tiny")

    def test_cross_product_structure(self, tiny):
        """matrix x ordering x amalgamation, like the paper's 608 trees."""
        names = {i.name for i in tiny}
        assert len(names) == len(tiny)
        orderings = {i.ordering for i in tiny}
        caps = {i.amalgamation for i in tiny}
        assert orderings == {"nd", "md"}
        assert caps == set(AMALGAMATIONS)

    def test_trees_valid(self, tiny):
        for inst in tiny:
            assert isinstance(inst, TreeInstance)
            assert inst.tree.n >= 16
            assert inst.tree.total_work() > 0

    def test_shape_diversity(self, tiny):
        """The set must include both bushy and deep trees."""
        heights = [i.tree.height() for i in tiny]
        assert max(heights) > 2 * min(heights)

    def test_amalgamation_coarsens(self, tiny):
        by_key = {}
        for i in tiny:
            by_key[(i.matrix_name, i.ordering, i.amalgamation)] = i.tree.n
        for (mat, order, cap), n in by_key.items():
            if cap > 1 and (mat, order, 1) in by_key:
                assert n <= by_key[(mat, order, 1)]

    def test_deterministic(self):
        a = build_dataset(scale="tiny", seed=3)
        b = build_dataset(scale="tiny", seed=3)
        assert [i.name for i in a] == [i.name for i in b]
        assert [i.tree.n for i in a] == [i.tree.n for i in b]

    def test_rcm_ordering_available(self):
        data = build_dataset(scale="tiny", orderings=("rcm",), amalgamations=(1,))
        assert all(i.ordering == "rcm" for i in data)
        assert data
