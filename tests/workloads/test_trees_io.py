"""Tests for the task-tree serialization format."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.workloads.trees_io import TreeFormatError, load_tree, save_tree
from tests.conftest import task_trees


class TestRoundTrip:
    @given(task_trees(max_nodes=20))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, tree):
        import tempfile

        with tempfile.TemporaryDirectory() as d:
            path = f"{d}/t.tree"
            save_tree(path, tree)
            loaded = load_tree(path)
        assert np.array_equal(loaded.parent, tree.parent)
        assert np.allclose(loaded.w, tree.w)
        assert np.allclose(loaded.f, tree.f)
        assert np.allclose(loaded.sizes, tree.sizes)

    def test_gzip(self, paper_example, tmp_path):
        path = tmp_path / "t.tree.gz"
        save_tree(path, paper_example)
        loaded = load_tree(path)
        assert loaded.n == paper_example.n

    def test_dataset_tree_roundtrip(self, tmp_path):
        from repro.workloads import build_dataset

        inst = build_dataset(scale="tiny")[0]
        path = tmp_path / "asm.tree"
        save_tree(path, inst.tree)
        loaded = load_tree(path)
        assert loaded.total_work() == inst.tree.total_work()


class TestErrors:
    def write(self, tmp_path, text):
        path = tmp_path / "bad.tree"
        path.write_text(text)
        return path

    def test_missing_size(self, tmp_path):
        with pytest.raises(TreeFormatError, match="size line"):
            load_tree(self.write(tmp_path, "0 -1 1 1 0\n"))

    def test_wrong_columns(self, tmp_path):
        with pytest.raises(TreeFormatError, match="5 columns"):
            load_tree(self.write(tmp_path, "n 1\n0 -1 1\n"))

    def test_missing_nodes(self, tmp_path):
        with pytest.raises(TreeFormatError, match="expected 2"):
            load_tree(self.write(tmp_path, "n 2\n0 -1 1 1 0\n"))

    def test_out_of_range_id(self, tmp_path):
        with pytest.raises(TreeFormatError, match="out of range"):
            load_tree(self.write(tmp_path, "n 1\n5 -1 1 1 0\n"))

    def test_duplicate_size(self, tmp_path):
        with pytest.raises(TreeFormatError, match="duplicate"):
            load_tree(self.write(tmp_path, "n 1\nn 1\n0 -1 1 1 0\n"))

    def test_comments_ignored(self, tmp_path):
        tree = load_tree(
            self.write(tmp_path, "# hello\nn 1\n# mid comment\n0 -1 2 3 4\n")
        )
        assert tree.w[0] == 2 and tree.f[0] == 3 and tree.sizes[0] == 4
