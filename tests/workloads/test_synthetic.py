"""Tests for the synthetic random-tree generators."""

import numpy as np
import pytest

from repro.core.tree import TaskTree
from repro.workloads.synthetic import (
    caterpillar,
    complete_kary_tree,
    deep_tree,
    flat_tree,
    random_attachment_tree,
    random_weighted_tree,
)


class TestParentVectors:
    def test_uniform_valid(self, rng):
        for n in (1, 2, 10, 100):
            parents = random_attachment_tree(n, rng)
            t = TaskTree.from_parents(parents)
            assert t.n == n

    def test_bias_controls_depth(self, rng):
        n = 300
        deep = TaskTree.from_parents(deep_tree(n, rng)).height()
        flat = TaskTree.from_parents(flat_tree(n, rng)).height()
        assert deep > 4 * flat

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            random_attachment_tree(0, rng)


class TestShapes:
    def test_caterpillar(self):
        t = TaskTree.from_parents(caterpillar(4, 3))
        assert t.n == 4 + 4 * 3
        assert t.height() == 4  # spine depth 3 + leg

    def test_caterpillar_no_legs(self):
        t = TaskTree.from_parents(caterpillar(5, 0))
        assert t.n == 5
        assert t.height() == 4

    def test_complete_binary(self):
        t = TaskTree.from_parents(complete_kary_tree(3, 2))
        assert t.n == 15
        assert t.height() == 3
        assert t.n_leaves() == 8

    def test_complete_kary_degenerate(self):
        t = TaskTree.from_parents(complete_kary_tree(0, 3))
        assert t.n == 1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            caterpillar(0, 2)
        with pytest.raises(ValueError):
            complete_kary_tree(-1, 2)


class TestWeightedTrees:
    def test_weight_ranges(self, rng):
        t = random_weighted_tree(50, rng, max_w=3, max_f=4, max_size=2)
        assert t.w.max() <= 3 and t.w.min() >= 1
        assert t.f.max() <= 4 and t.f.min() >= 1
        assert t.sizes.max() <= 2

    def test_deterministic_given_rng(self):
        a = random_weighted_tree(30, np.random.default_rng(9))
        b = random_weighted_tree(30, np.random.default_rng(9))
        assert np.array_equal(a.parent, b.parent)
        assert np.array_equal(a.w, b.w)
