"""Golden regression tests: pinned outputs of the deterministic pipeline.

Everything in the library is seeded and deterministic, so a handful of
exact snapshots guards against silent behavioural drift (a changed
tie-break, a reordered heap, an off-by-one in the amalgamation) that the
property tests -- which only check invariants -- would let through.

If one of these fails after an intentional algorithm change, re-pin the
values *after* confirming the new behaviour is correct.
"""


from repro.core.tree import TaskTree
from repro.matrices import amalgamate, apply_ordering, grid2d, minimum_degree, symbolic_cholesky
from repro.parallel import run_all
from repro.sequential import liu_optimal_traversal, optimal_postorder
from repro.workloads import build_dataset


class TestSequentialGolden:
    def test_grid_postorder_peak(self):
        tree = amalgamate(symbolic_cholesky(grid2d(8)), 1).tree
        assert optimal_postorder(tree).peak_memory == 145.0

    def test_grid_liu_peak(self):
        tree = amalgamate(symbolic_cholesky(grid2d(8)), 1).tree
        assert liu_optimal_traversal(tree).peak_memory == 145.0

    def test_md_ordered_grid(self):
        a = grid2d(8)
        sym = symbolic_cholesky(apply_ordering(a, minimum_degree(a)))
        assert sym.factor_nnz == 359
        tree = amalgamate(sym, 4).tree
        assert tree.n == 40


class TestHeuristicGolden:
    def test_pebble_comb(self):
        """All four heuristics on a fixed comb tree, p=4."""
        from repro.pebble import deepest_first_memory_tree

        tree = deepest_first_memory_tree(8, 4)
        results = {
            name: (r.makespan, r.peak_memory)
            for name, r in run_all(tree, 4, validate=True).items()
        }
        assert results["ParDeepestFirst"] == (19.0, 12.0)
        assert results["ParSubtrees"] == (38.0, 9.0)
        assert results["ParInnerFirst"] == (20.0, 9.0)
        # makespans: every heuristic within Graham of the LB
        W, CP = tree.total_work(), tree.critical_path()
        for name, (mk, _) in results.items():
            assert max(W / 4, CP) <= mk <= W

    def test_fixed_weighted_tree(self):
        tree = TaskTree.from_parents(
            [-1, 0, 0, 1, 1, 2, 2, 3, 3, 4],
            w=[3, 2, 4, 1, 2, 5, 1, 2, 2, 1],
            f=[0, 3, 2, 4, 1, 5, 2, 2, 1, 3],
            sizes=[1, 0, 2, 0, 1, 0, 3, 1, 0, 2],
        )
        results = run_all(tree, 2, validate=True)
        pinned = {
            "ParSubtrees": (13.0, 19.0),
            "ParSubtreesOptim": (13.0, 19.0),
            "ParInnerFirst": (14.0, 19.0),
            "ParDeepestFirst": (14.0, 19.0),
        }
        for name, (mk, mem) in pinned.items():
            assert results[name].makespan == mk, name
            assert results[name].peak_memory == mem, name


class TestDatasetGolden:
    def test_tiny_dataset_fingerprint(self):
        instances = build_dataset(scale="tiny")
        assert len(instances) == 60
        sizes = [inst.tree.n for inst in instances[:5]]
        assert sizes == [64, 41, 31, 26, 64]

    def test_simulation_deterministic(self):
        instances = build_dataset(scale="tiny")[:2]
        a = [
            (r.makespan, r.peak_memory)
            for inst in instances
            for r in run_all(inst.tree, 4).values()
        ]
        b = [
            (r.makespan, r.peak_memory)
            for inst in instances
            for r in run_all(inst.tree, 4).values()
        ]
        assert a == b
