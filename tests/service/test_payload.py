"""Job specs: canonical form, content keys, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.payload import (
    SpecError,
    canonical_bytes,
    canonical_spec,
    job_key,
    spec_from_dataset,
    spec_from_instances,
    to_campaign,
    to_instances,
)
from repro.workloads.dataset import TreeInstance
from repro.workloads.synthetic import random_weighted_tree


def tiny_spec(**run):
    return {
        "trees": [
            {
                "name": "t0",
                "parent": [-1, 0, 0],
                "w": [1.0, 2.0, 3.0],
                "f": [0.0, 1.0, 1.0],
                "sizes": [1.0, 1.0, 1.0],
            }
        ],
        "campaign": {"algorithms": ["ParSubtrees"], "processor_counts": [2]},
        "run": run,
    }


class TestCanonical:
    def test_defaults_filled_and_stable(self):
        c = canonical_spec(tiny_spec())
        assert c["campaign"]["cap_factors"] == []
        assert c["campaign"]["backend"] is None
        assert c["run"] == {
            "supervise": True, "retries": 2, "timeout": None, "backoff": 0.25,
        }
        assert canonical_bytes(tiny_spec()) == canonical_bytes(c)

    def test_key_ignores_representation_not_content(self):
        a = tiny_spec()
        b = {
            "campaign": {"processor_counts": [2.0], "algorithms": ["ParSubtrees"]},
            "trees": [
                {
                    "sizes": [1, 1, 1],
                    "name": "t0",
                    "parent": [-1.0, 0, 0],
                    "w": [1, 2, 3],
                    "f": [0, 1, 1],
                }
            ],
        }
        assert job_key(a) == job_key(b)  # order/int-float normalised
        c = tiny_spec()
        c["campaign"]["processor_counts"] = [4]
        assert job_key(a) != job_key(c)  # different work, different key

    def test_run_config_changes_the_key(self):
        # retries are part of the work description: a retried POST with
        # different policy is a different job, not a dedupe hit
        assert job_key(tiny_spec()) != job_key(tiny_spec(retries=5))


class TestValidation:
    @pytest.mark.parametrize(
        "mangle, msg",
        [
            (lambda s: s.pop("trees"), "trees"),
            (lambda s: s["trees"][0].pop("w"), "missing"),
            (lambda s: s["trees"][0]["w"].append(9.0), "entries"),
            (lambda s: s["trees"][0].update(parent=[0, 0, 1]), "valid task tree"),
            (lambda s: s["campaign"].update(algorithms=["NoSuchAlgo"]),
             "does not expand"),
            (lambda s: s["campaign"].update(processor_counts=[0]), "positive"),
            (lambda s: s["campaign"].update(backend="fortran"), "backend"),
            (lambda s: s.update(run={"retries": -1}), "retries"),
            (lambda s: s.update(extra=1), "unknown"),
        ],
    )
    def test_bad_specs_fail_with_context(self, mangle, msg):
        spec = tiny_spec()
        mangle(spec)
        with pytest.raises(SpecError, match=msg):
            canonical_spec(spec)

    def test_duplicate_tree_names_rejected(self):
        spec = tiny_spec()
        spec["trees"].append(dict(spec["trees"][0]))
        with pytest.raises(SpecError, match="duplicate"):
            canonical_spec(spec)


class TestRoundTrip:
    def test_instances_round_trip_bitwise(self):
        rng = np.random.default_rng(3)
        insts = [
            TreeInstance(
                name=f"t{k}",
                tree=random_weighted_tree(30, rng),
                matrix_name="synthetic",
                ordering="none",
                amalgamation=1,
            )
            for k in range(2)
        ]
        spec = spec_from_instances(
            insts, algorithms=["ParSubtrees"], processor_counts=[2, 4]
        )
        back = to_instances(spec)
        assert [b.name for b in back] == [i.name for i in insts]
        for orig, got in zip(insts, back):
            for col in ("parent", "w", "f", "sizes"):
                assert np.array_equal(
                    getattr(orig.tree, col), getattr(got.tree, col)
                )

    def test_campaign_round_trip(self):
        spec = canonical_spec(tiny_spec())
        camp = to_campaign(spec)
        assert camp.algorithms == ("ParSubtrees",)
        assert camp.processor_counts == (2,)
        assert camp.scenarios_for("t0")

    def test_dataset_spec_is_canonical(self):
        spec = spec_from_dataset(scale="tiny", limit=1)
        assert canonical_spec(spec) == spec
        assert len(spec["trees"]) == 1
