"""Crash drills against a real ``repro serve`` subprocess.

The acceptance scenario of the scheduling service: ``kill -9`` the
server mid-job, restart it, and the job resumes from its checkpoint
and finishes with a record stream **byte-identical** to an
uninterrupted run. Plus the graceful sibling (SIGTERM drains and
exits 0 with the job re-queued) and the chaos drill (worker crashes
and a torn checkpoint append injected via ``REPRO_FAULT_PLAN``)."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error

import pytest

from repro.analysis.campaign import run_campaign
from repro.service import payload as payload_mod
from repro.service.client import ServiceClient
from repro.service.payload import spec_from_dataset
from repro.testing.faults import CRASH_EXIT, ENV_VAR, Fault, FaultPlan


def _pythonpath() -> str:
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    existing = os.environ.get("PYTHONPATH", "")
    return os.path.abspath(src) + (os.pathsep + existing if existing else "")


def start_server(root, log_path, *, plan: FaultPlan | None = None, workers=2,
                 port=0):
    """Launch ``repro serve`` on an ephemeral port; returns
    ``(process, client)`` once /healthz answers."""
    info_path = os.path.join(root, "service.json")
    if os.path.exists(info_path):
        os.unlink(info_path)
    env = {**os.environ, "PYTHONPATH": _pythonpath()}
    env.pop(ENV_VAR, None)
    if plan is not None:
        env[ENV_VAR] = plan.to_json()
    log = open(log_path, "ab")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", root,
            "--port", str(port), "--workers", str(workers),
        ],
        env=env,
        stdout=log,
        stderr=log,
    )
    deadline = time.monotonic() + 120
    client = None
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"server died at startup (exit {proc.returncode}); "
                f"log:\n{open(log_path).read()}"
            )
        if os.path.exists(info_path):
            try:
                base = json.load(open(info_path))["serving"]
                candidate = ServiceClient(base, timeout=10.0)
                if candidate.health()["ok"]:
                    client = candidate
                    break
            except (urllib.error.URLError, OSError, json.JSONDecodeError,
                    ConnectionError):
                pass
        time.sleep(0.05)
    assert client is not None, "server never became healthy"
    return proc, client


def wait_for_state(client, jid, want, timeout=120.0, min_records=0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        st = client.status(jid)
        if st["state"] == want and st["records"] >= min_records:
            return st
        time.sleep(0.05)
    raise AssertionError(f"job {jid} never reached {want}: {st}")


@pytest.fixture
def spec():
    return spec_from_dataset(
        scale="tiny", limit=2,
        algorithms=["ParSubtrees", "ParDeepestFirst"],
        processor_counts=[2, 4],
    )


@pytest.fixture
def reference(spec, tmp_path):
    path = tmp_path / "reference.jsonl"
    run_campaign(
        payload_mod.to_instances(spec),
        payload_mod.to_campaign(spec),
        checkpoint=str(path),
    )
    return path.read_bytes()


def job_dir(root, jid):
    return os.path.join(root, "jobs", jid)


class TestKillDashNine:
    def test_kill9_midjob_then_restart_resumes_byte_identical(
        self, spec, reference, tmp_path
    ):
        root = str(tmp_path / "svc")
        log = str(tmp_path / "serve.log")
        # slow faults stretch the run so the kill lands mid-job; slow
        # never changes records, so the reference still applies
        plan = FaultPlan((Fault(kind="slow", seconds=0.25),))
        proc, client = start_server(root, log, plan=plan)
        try:
            jid = client.submit(spec)["id"]
            wait_for_state(client, jid, "running", min_records=1)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        # the journal still says running: the crash is visible on disk
        st = json.load(open(os.path.join(job_dir(root, jid), "state.json")))
        assert st["state"] == "running"
        partial = open(
            os.path.join(job_dir(root, jid), "records.jsonl"), "rb"
        ).read()
        assert 0 < partial.count(b"\n") < reference.count(b"\n")
        # every complete line is a reference prefix line
        head = partial[: partial.rfind(b"\n") + 1]
        assert reference.startswith(head)

        # restart without faults -- on the SAME port: kill -9 must not
        # leave orphaned pool workers holding the inherited listening
        # socket (workers close it after fork and exit once orphaned)
        port = int(client.base.rsplit(":", 1)[1])
        proc2, client2 = start_server(root, log, port=port)
        try:
            st = wait_for_state(client2, jid, "done", timeout=180)
            assert st["records"] == reference.count(b"\n")
            got = client2.fetch_records(jid)
            assert got == reference
            on_disk = open(
                os.path.join(job_dir(root, jid), "records.jsonl"), "rb"
            ).read()
            assert on_disk == reference
        finally:
            proc2.terminate()
            proc2.wait(timeout=30)


class TestGracefulDrain:
    def test_sigterm_drains_requeues_and_exits_zero(
        self, spec, reference, tmp_path
    ):
        root = str(tmp_path / "svc")
        log = str(tmp_path / "serve.log")
        plan = FaultPlan((Fault(kind="slow", seconds=0.25),))
        proc, client = start_server(root, log, plan=plan)
        jid = client.submit(spec)["id"]
        wait_for_state(client, jid, "running", min_records=1)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0  # graceful: exit 0

        st = json.load(open(os.path.join(job_dir(root, jid), "state.json")))
        assert st["state"] == "queued"  # checkpointed, handed to the next server

        proc2, client2 = start_server(root, log)
        try:
            wait_for_state(client2, jid, "done", timeout=180)
            assert client2.fetch_records(jid) == reference
        finally:
            proc2.terminate()
            proc2.wait(timeout=30)


class TestChaos:
    def test_worker_crashes_heal_in_place(self, spec, reference, tmp_path):
        """Crash faults in the *service workers*: the supervised pool
        retries and the job completes without any restart."""
        root = str(tmp_path / "svc")
        log = str(tmp_path / "serve.log")
        plan = FaultPlan(
            tuple(Fault(kind="crash", index=i, attempts=(0,)) for i in (1, 5))
        )
        proc, client = start_server(root, log, plan=plan)
        try:
            jid = client.submit(spec)["id"]
            wait_for_state(client, jid, "done", timeout=180)
            assert client.fetch_records(jid) == reference
        finally:
            proc.terminate()
            proc.wait(timeout=30)

    def test_torn_append_crashes_server_then_restart_heals(
        self, spec, reference, tmp_path
    ):
        """``truncate_write`` tears the 4th checkpoint append and
        hard-exits the whole server process -- the worst crash point
        (mid-write). Restart drops the torn line, resumes, and packs
        to byte-identity."""
        root = str(tmp_path / "svc")
        log = str(tmp_path / "serve.log")
        plan = FaultPlan((Fault(kind="truncate_write", record=3),))
        proc, client = start_server(root, log, plan=plan)
        jid = client.submit(spec)["id"]
        assert proc.wait(timeout=120) == CRASH_EXIT

        records_path = os.path.join(job_dir(root, jid), "records.jsonl")
        torn = open(records_path, "rb").read()
        assert not torn.endswith(b"\n")  # the torn fourth line
        assert torn.count(b"\n") == 3

        proc2, client2 = start_server(root, log)
        try:
            wait_for_state(client2, jid, "done", timeout=180)
            assert client2.fetch_records(jid) == reference
            assert open(records_path, "rb").read() == reference
        finally:
            proc2.terminate()
            proc2.wait(timeout=30)
