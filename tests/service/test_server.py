"""The service over real HTTP (in-process stdlib server) and the ASGI
adapter: lifecycle, byte-identity, idempotency, backpressure, cancel,
drain, health."""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.request
from http.server import ThreadingHTTPServer

import numpy as np
import pytest

from repro.analysis.campaign import run_campaign
from repro.service import payload as payload_mod
from repro.service.client import ServiceClient, ServiceError
from repro.service.payload import spec_from_instances
from repro.service.server import SchedulerService, _make_handler, build_asgi
from repro.testing.faults import ENV_VAR, Fault, FaultPlan, install
from repro.workloads.dataset import TreeInstance
from repro.workloads.synthetic import random_weighted_tree


@pytest.fixture(autouse=True)
def _no_ambient_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    install(None)
    yield
    install(None)


def make_spec(seed=5, n=25, trees=2, supervise=True, **run):
    rng = np.random.default_rng(seed)
    insts = [
        TreeInstance(
            name=f"t{k}",
            tree=random_weighted_tree(n + 5 * k, rng),
            matrix_name="synthetic",
            ordering="none",
            amalgamation=1,
        )
        for k in range(trees)
    ]
    return spec_from_instances(
        insts,
        algorithms=["ParSubtrees", "ParDeepestFirst"],
        processor_counts=[2, 4],
        supervise=supervise,
        **run,
    )


def reference_bytes(spec, tmp_path, name="ref.jsonl") -> bytes:
    path = tmp_path / name
    run_campaign(
        payload_mod.to_instances(spec),
        payload_mod.to_campaign(spec),
        checkpoint=str(path),
    )
    return path.read_bytes()


class Harness:
    def __init__(self, tmp_path, **kwargs):
        self.service = SchedulerService(str(tmp_path / "svc"), **kwargs)
        self.service.start()
        self.httpd = ThreadingHTTPServer(
            ("127.0.0.1", 0), _make_handler(self.service)
        )
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()
        self.base = f"http://127.0.0.1:{self.httpd.server_address[1]}"
        self.client = ServiceClient(self.base, timeout=30.0)

    def close(self):
        self.httpd.shutdown()
        self.httpd.server_close()
        self.service.drain()


@pytest.fixture
def harness(tmp_path):
    h = Harness(tmp_path, workers=2, queue_depth=4)
    yield h
    h.close()


class TestLifecycle:
    def test_supervised_job_end_to_end_byte_identical(self, harness, tmp_path):
        spec = make_spec(supervise=True)
        job = harness.client.submit(spec)
        assert job["state"] in ("queued", "running", "done")
        st = harness.client.wait(job["id"], timeout=180)
        assert st["state"] == "done", st
        assert st["records"] == 8
        got = harness.client.fetch_records(job["id"])
        assert got == reference_bytes(spec, tmp_path)

    def test_serial_job_uses_prepared_lru(self, harness, tmp_path):
        spec = make_spec(supervise=False)
        st = harness.client.wait(
            harness.client.submit(spec)["id"], timeout=180
        )
        assert st["state"] == "done"
        stats = harness.client.health()["prepared_cache"]
        assert stats["misses"] >= 2  # one per tree
        # same trees, different grid: a distinct job, but warm cache
        spec2 = make_spec(supervise=False, retries=9)
        st2 = harness.client.wait(
            harness.client.submit(spec2)["id"], timeout=180
        )
        assert st2["state"] == "done"
        stats2 = harness.client.health()["prepared_cache"]
        assert stats2["hits"] >= 2
        assert stats2["misses"] == stats["misses"]
        assert harness.client.fetch_records(st2["id"]) == reference_bytes(
            spec2, tmp_path
        )

    def test_idempotent_resubmission(self, harness):
        spec = make_spec()
        first = harness.client.submit(spec)
        harness.client.wait(first["id"], timeout=180)
        again = harness.client.submit(spec)
        assert again["id"] == first["id"]
        assert again["state"] == "done"  # no re-execution
        assert len(harness.client.jobs()) == 1

    def test_status_404_and_bad_spec_400(self, harness):
        with pytest.raises(ServiceError) as exc:
            harness.client.status("deadbeefdeadbeefdeadbeef")
        assert exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            harness.client.submit({"trees": []})
        assert exc.value.status == 400
        assert "trees" in str(exc.value)

    def test_health_and_ready(self, harness):
        h = harness.client.health()
        assert h["ok"] and not h["draining"]
        assert h["prepared_cache"]["capacity"] > 0
        r = harness.client.ready()
        assert r["ready"] and r["backend"] in ("c", "numba", "python")


class TestBackpressure:
    def test_429_with_retry_after_once_queue_is_full(self, tmp_path):
        # no executor: queued jobs stay queued, deterministically
        service = SchedulerService(str(tmp_path / "svc"), queue_depth=2)
        httpd = ThreadingHTTPServer(
            ("127.0.0.1", 0), _make_handler(service)
        )
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            for seed in (1, 2):
                req = urllib.request.Request(
                    base + "/jobs",
                    data=json.dumps(make_spec(seed=seed)).encode(),
                    method="POST",
                )
                with urllib.request.urlopen(req) as resp:
                    assert resp.status == 201
            req = urllib.request.Request(
                base + "/jobs",
                data=json.dumps(make_spec(seed=3)).encode(),
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(req)
            assert exc.value.code == 429
            assert float(exc.value.headers["Retry-After"]) > 0
            body = json.loads(exc.value.read())
            assert "queue full" in body["error"]
            # over-limit work was never journaled as pending
            assert len(service.jobs.ids()) == 2
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_client_submit_retries_through_429(self, tmp_path):
        service = SchedulerService(
            str(tmp_path / "svc"), queue_depth=1, retry_after=0.05
        )
        httpd = ThreadingHTTPServer(
            ("127.0.0.1", 0), _make_handler(service)
        )
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        client = ServiceClient(
            f"http://127.0.0.1:{httpd.server_address[1]}"
        )
        try:
            client.submit(make_spec(seed=1))  # fills the queue
            release = threading.Timer(
                0.2, lambda: service._queue.clear()
            )
            release.start()
            job = client.submit(make_spec(seed=2))  # blocks, then lands
            assert job["state"] == "queued"
        finally:
            release.cancel()
            httpd.shutdown()
            httpd.server_close()


class TestCancelAndDrain:
    def test_cancel_queued_job(self, tmp_path):
        service = SchedulerService(str(tmp_path / "svc"), queue_depth=4)
        job, _ = service.jobs.create(make_spec(seed=11))
        service._queue.append(job.id)
        status, out = service.cancel(job.id)
        assert status == 200 and out["state"] == "cancelled"
        assert job.id not in service._queue

    def test_cancel_running_job_via_http(self, harness):
        # slow faults stretch the job so the cancel lands mid-run
        plan = FaultPlan((Fault(kind="slow", seconds=0.4),))
        install(plan)  # captured by the pool at first supervised job
        try:
            job = harness.client.submit(make_spec(seed=21))
            for _ in range(400):
                st = harness.client.status(job["id"])
                if st["state"] == "running":
                    break
                import time as _t
                _t.sleep(0.01)
            out = harness.client.cancel(job["id"])
            assert out.get("cancelling") or out["state"] == "cancelled"
            st = harness.client.wait(job["id"], timeout=60)
            assert st["state"] == "cancelled"
        finally:
            install(None)

    def test_cancel_done_job_is_409(self, harness):
        job = harness.client.submit(make_spec(seed=31))
        harness.client.wait(job["id"], timeout=180)
        with pytest.raises(ServiceError) as exc:
            harness.client.cancel(job["id"])
        assert exc.value.status == 409

    def test_drain_rejects_submissions_and_readyz(self, harness):
        harness.service.draining = True
        with pytest.raises(ServiceError) as exc:
            harness.client.submit(make_spec(seed=41))
        assert exc.value.status == 503
        with pytest.raises(ServiceError) as exc:
            harness.client.ready()
        assert exc.value.status == 503
        assert harness.client.health()["draining"]  # healthz stays 200


class TestJobTimeout:
    def test_wall_clock_budget_fails_the_job(self, tmp_path):
        plan = FaultPlan((Fault(kind="slow", seconds=0.3),))
        install(plan)
        h = Harness(tmp_path, workers=1, job_timeout=0.5)
        try:
            job = h.client.submit(make_spec(seed=51))
            st = h.client.wait(job["id"], timeout=120)
            assert st["state"] == "failed"
            assert "wall-clock" in st["error"]
        finally:
            install(None)
            h.close()


class TestAsgiAdapter:
    def _call(self, app, method, path, body=b""):
        sent = []

        async def run():
            received = [
                {"type": "http.request", "body": body, "more_body": False}
            ]

            async def receive():
                return received.pop(0)

            async def send(msg):
                sent.append(msg)

            await app(
                {"type": "http", "method": method, "path": path},
                receive,
                send,
            )

        asyncio.run(run())
        status = sent[0]["status"]
        payload = b"".join(m.get("body", b"") for m in sent[1:])
        return status, payload

    def test_same_dispatch_without_uvicorn(self, tmp_path):
        service = SchedulerService(str(tmp_path / "svc"))
        service.start()
        try:
            app = build_asgi(service)
            status, body = self._call(app, "GET", "/healthz")
            assert status == 200 and json.loads(body)["ok"]
            status, body = self._call(
                app, "POST", "/jobs", json.dumps(make_spec(seed=61)).encode()
            )
            assert status == 201
            jid = json.loads(body)["id"]
            # wait in-process, then stream the records through ASGI
            spec = make_spec(seed=61)
            for _ in range(600):
                status, body = self._call(app, "GET", f"/jobs/{jid}")
                if json.loads(body)["state"] == "done":
                    break
                import time as _t
                _t.sleep(0.05)
            assert json.loads(body)["state"] == "done"
            status, data = self._call(app, "GET", f"/jobs/{jid}/records")
            assert status == 200
            assert data.count(b"\n") == 8
            status, _ = self._call(app, "GET", "/nope")
            assert status == 404
        finally:
            service.drain()
