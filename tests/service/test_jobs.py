"""The on-disk job journal: atomic creation, state machine, recovery."""

from __future__ import annotations

import json
import os

import pytest

from repro.service.jobs import JobStore, TransitionError


def tiny_spec(**run):
    return {
        "trees": [
            {
                "name": "t0",
                "parent": [-1, 0, 0],
                "w": [1.0, 2.0, 3.0],
                "f": [0.0, 1.0, 1.0],
                "sizes": [1.0, 1.0, 1.0],
            }
        ],
        "campaign": {"algorithms": ["ParSubtrees"], "processor_counts": [2]},
        "run": run,
    }


@pytest.fixture
def store(tmp_path):
    return JobStore(str(tmp_path / "svc"))


class TestCreate:
    def test_create_is_idempotent(self, store):
        a, created_a = store.create(tiny_spec())
        b, created_b = store.create(tiny_spec())
        assert created_a and not created_b
        assert a.id == b.id
        assert a.state == "queued"
        assert json.load(open(a.spec_path))["campaign"]["algorithms"] == [
            "ParSubtrees"
        ]

    def test_distinct_work_distinct_jobs(self, store):
        a, _ = store.create(tiny_spec())
        b, _ = store.create(tiny_spec(retries=7))
        assert a.id != b.id
        assert sorted(store.ids()) == sorted([a.id, b.id])

    def test_no_stage_dirs_leak(self, store):
        store.create(tiny_spec())
        leftovers = [d for d in os.listdir(store.jobs_dir) if d.startswith(".")]
        assert leftovers == []


class TestStateMachine:
    def test_happy_path(self, store):
        job, _ = store.create(tiny_spec())
        job = store.transition(job.id, "running", expect="queued")
        assert job.state == "running"
        job = store.transition(job.id, "done", detail={"scenarios": 4})
        assert job.state == "done"
        assert job.detail["scenarios"] == 4

    def test_done_is_terminal(self, store):
        job, _ = store.create(tiny_spec())
        store.transition(job.id, "running")
        store.transition(job.id, "done")
        for bad in ("running", "queued", "cancelled", "failed"):
            with pytest.raises(TransitionError):
                store.transition(job.id, bad)

    def test_expect_guards_races(self, store):
        job, _ = store.create(tiny_spec())
        store.transition(job.id, "cancelled")
        with pytest.raises(TransitionError, match="expected queued"):
            store.transition(job.id, "running", expect="queued")

    def test_failed_and_cancelled_can_requeue(self, store):
        job, _ = store.create(tiny_spec())
        store.transition(job.id, "running")
        store.transition(job.id, "failed", error="boom")
        job = store.transition(job.id, "queued")
        assert job.state == "queued" and job.error == ""

    def test_state_file_is_replaced_atomically(self, store):
        job, _ = store.create(tiny_spec())
        store.transition(job.id, "running")
        names = os.listdir(job.path)
        assert "state.json" in names
        assert not [n for n in names if n.endswith(".tmp")]


class TestRecovery:
    def test_running_jobs_flip_back_to_queued_in_order(self, store):
        a, _ = store.create(tiny_spec())
        b, _ = store.create(tiny_spec(retries=9))
        store.transition(b.id, "running")
        queued = store.recover()
        assert [j.state for j in queued] == ["queued", "queued"]
        assert store.get(b.id).detail.get("recovered") is True
        # submit order: creation time then id
        assert [j.id for j in queued] == sorted(
            [a.id, b.id], key=lambda i: (store.get(i).created, i)
        )

    def test_settled_jobs_left_alone(self, store):
        job, _ = store.create(tiny_spec())
        store.transition(job.id, "running")
        store.transition(job.id, "done")
        assert store.recover() == []
        assert store.get(job.id).state == "done"

    def test_record_count_counts_complete_lines(self, store):
        job, _ = store.create(tiny_spec())
        assert job.record_count() == 0
        with open(job.records_path, "wb") as fh:
            fh.write(b'{"a":1}\n{"b":2}\n{"torn')
        assert store.get(job.id).to_dict()["records"] == 2
