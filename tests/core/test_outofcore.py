"""Tests for the out-of-core execution model."""

import pytest
from hypothesis import given, settings

from repro.core.outofcore import simulate_out_of_core
from repro.core.schedule import Schedule
from repro.core.simulator import simulate
from repro.parallel import par_deepest_first, par_subtrees
from repro.sequential.postorder import optimal_postorder
from tests.conftest import task_trees


def sequential_schedule(tree):
    return Schedule.sequential(tree, optimal_postorder(tree).order)


class TestInCore:
    @given(task_trees(min_nodes=2, max_nodes=30))
    @settings(max_examples=30, deadline=None)
    def test_no_spill_when_memory_suffices(self, tree):
        sch = sequential_schedule(tree)
        peak = simulate(sch).peak_memory
        res = simulate_out_of_core(sch, memory=peak)
        assert res.fits_in_core
        assert res.io_volume == 0.0
        assert res.effective_makespan == sch.makespan

    def test_spill_below_peak(self):
        """A leaves-first order on a three-branch tree with heavy leaf
        files peaks far above any single task's working set, so a memory
        between the two forces spills."""
        from repro.core.tree import TaskTree

        tree = TaskTree.from_parents(
            [-1, 0, 0, 0, 1, 2, 3], w=1.0, f=[1, 1, 1, 1, 5, 5, 5], sizes=0.0
        )
        order = [4, 5, 6, 1, 2, 3, 0]  # all heavy leaves first
        sch = Schedule.sequential(tree, order)
        peak = simulate(sch).peak_memory  # 16
        floor = max(tree.processing_memory(i) for i in range(tree.n))  # 6
        res = simulate_out_of_core(sch, memory=max(floor, peak / 2))
        assert not res.fits_in_core
        assert res.io_volume > 0
        assert res.effective_makespan > sch.makespan


class TestModelConstraints:
    def test_working_set_too_large_rejected(self, star5):
        # the root needs 4 inputs + output = 5 simultaneously
        sch = sequential_schedule(star5)
        with pytest.raises(ValueError, match="no out-of-core"):
            simulate_out_of_core(sch, memory=4.0)

    def test_bad_bandwidth(self, star5):
        sch = sequential_schedule(star5)
        with pytest.raises(ValueError, match="bandwidth"):
            simulate_out_of_core(sch, memory=10.0, bandwidth=0.0)

    def test_bandwidth_scales_penalty(self, star5):
        sch = sequential_schedule(star5)
        slow = simulate_out_of_core(sch, memory=5.0 - 0)  # fits exactly
        assert slow.io_volume == 0.0


class TestPaperMotivation:
    def test_memory_aware_schedule_avoids_spill(self):
        """The opening argument of the paper, quantified: under a fixed
        memory, ParSubtrees stays in core while ParDeepestFirst spills
        and pays I/O time."""
        from repro.pebble.counterexamples import deepest_first_memory_tree

        tree = deepest_first_memory_tree(16, 6)
        p = 8
        mem_sub = simulate(par_subtrees(tree, p)).peak_memory
        budget = max(mem_sub, 8.0)
        aware = simulate_out_of_core(par_subtrees(tree, p), memory=budget)
        oblivious = simulate_out_of_core(par_deepest_first(tree, p), memory=budget)
        assert aware.fits_in_core
        assert not oblivious.fits_in_core
        assert oblivious.effective_makespan > aware.effective_makespan * 0.0
        assert oblivious.io_volume > 0

    @given(task_trees(min_nodes=3, max_nodes=25))
    @settings(max_examples=25, deadline=None)
    def test_io_volume_decreases_with_memory(self, tree):
        """More memory never causes more I/O (with largest-first
        eviction this holds on the measured sweep)."""
        sch = sequential_schedule(tree)
        peak = simulate(sch).peak_memory
        floor = max(tree.processing_memory(i) for i in range(tree.n))
        lo = simulate_out_of_core(sch, memory=max(floor, peak * 0.6))
        hi = simulate_out_of_core(sch, memory=peak)
        assert hi.io_volume <= lo.io_volume + 1e-9
