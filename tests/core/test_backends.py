"""Cross-backend golden equivalence for the event-sweep kernel spec.

The engine now runs its sweep on pluggable backends (pure-Python
reference, numba-jitted kernel, C kernel, interpreted kernel). The
acceptance contract of that refactor is *bit identity*: every backend
must produce byte-for-byte the same :class:`~repro.core.schedule.Schedule`
(and the same activation order / peak-memory trace) for every registered
heuristic and both memory modes -- so perf work can never silently
change paper results. This suite pins that contract, plus the
selection/fallback edge cases around optional dependencies.

Which compiled backends exist depends on the environment (numba is an
optional extra; the C kernel needs a toolchain). The interpreted
``"kernel"`` backend is always available, so the kernel *logic* is
covered everywhere; the CI matrix adds the with/without-numba legs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import registry
from repro.core import _sweep
from repro.core.engine import (
    BACKENDS,
    BACKEND_ENV_VAR,
    BackendUnavailableError,
    MemoryCapError,
    SchedulerEngine,
    available_backends,
    resolve_backend,
)
from repro.core.tree import TaskTree
from repro.parallel.memory_bounded import memory_bounded_schedule
from repro.parallel.par_deepest_first import par_deepest_first_rank
from repro.sequential.postorder import optimal_postorder
from repro.workloads.synthetic import random_weighted_tree

from tests.conftest import task_trees

#: every backend other than the reference, available or not
ALT_BACKENDS = [b for b in BACKENDS if b not in ("auto", "python")]
#: the ones that can actually run here ("kernel" always can)
AVAILABLE_ALT = [b for b in ALT_BACKENDS if b in available_backends()]
#: the fastest compiled backend available (used by the property test)
BEST_ALT = AVAILABLE_ALT[0]

ENGINE_HEURISTICS = [
    name
    for name in registry.names("parallel")
    if "backend" in registry.get(name).params and name != "MemoryBounded"
]


def tree_spread() -> list[TaskTree]:
    """A deterministic spread of shapes and weight regimes, n <= 200."""
    rng = np.random.default_rng(20130520)
    trees = []
    for n, bias in [(1, 0.0), (7, 0.0), (60, 4.0), (120, -4.0), (200, 0.0)]:
        trees.append(random_weighted_tree(n, rng, bias=bias))
    # heavy duplicate weights: ties in every priority key column
    trees.append(random_weighted_tree(80, rng, max_w=2, max_f=1, max_size=0))
    # fractional durations (the reference backend's float event keys)
    frac = random_weighted_tree(80, rng)
    trees.append(frac.with_weights(w=frac.w + rng.uniform(0.0, 1.0, frac.n)))
    # zero-weight tasks: completion and start events at the same instant
    # cascade through several start phases per time point
    zw = random_weighted_tree(90, rng)
    w = zw.w.copy()
    w[rng.random(zw.n) < 0.4] = 0.0
    trees.append(zw.with_weights(w=w))
    return trees


@pytest.fixture(scope="module", params=range(8))
def tree(request):
    return tree_spread()[request.param]


def assert_same_schedule(got, ref):
    assert np.array_equal(got.start, ref.start)
    assert np.array_equal(got.proc, ref.proc)
    assert got.p == ref.p


# ----------------------------------------------------------------------
# selection / availability
# ----------------------------------------------------------------------
class TestSelection:
    def test_reference_backends_always_available(self):
        avail = available_backends()
        assert "python" in avail and "kernel" in avail

    def test_available_backends_are_constructible(self, star5):
        for b in available_backends():
            engine = SchedulerEngine(star5, 2, np.arange(5), backend=b)
            assert engine.backend == b

    def test_unknown_backend_rejected(self, star5):
        with pytest.raises(ValueError, match="unknown backend"):
            SchedulerEngine(star5, 2, np.arange(5), backend="fortran")

    def test_auto_resolves_to_an_available_backend(self):
        assert resolve_backend("auto") in available_backends()
        assert resolve_backend("auto") != "kernel"  # never the slow path

    def test_env_var_is_the_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend(None) == "python"
        monkeypatch.delenv(BACKEND_ENV_VAR)
        assert resolve_backend(None) == resolve_backend("auto")

    def test_auto_prefers_numba_then_c_then_python(self, monkeypatch):
        from repro.core import _ckernel

        if _sweep.HAVE_NUMBA:
            assert resolve_backend("auto") == "numba"
        monkeypatch.setattr(_sweep, "HAVE_NUMBA", False)
        expected = "c" if _ckernel.available() else "python"
        assert resolve_backend("auto") == expected
        monkeypatch.setattr(_ckernel, "_BUILD", (None, "simulated: no toolchain"))
        assert resolve_backend("auto") == "python"

    @pytest.mark.skipif(_sweep.HAVE_NUMBA, reason="numba is installed here")
    def test_numba_missing_raises_clear_error(self, star5):
        with pytest.raises(BackendUnavailableError, match=r"repro-trees\[fast\]"):
            SchedulerEngine(star5, 2, np.arange(5), backend="numba")

    @pytest.mark.skipif(not _sweep.HAVE_NUMBA, reason="numba not installed")
    def test_numba_available_resolves(self):
        assert resolve_backend("numba") == "numba"
        assert resolve_backend("auto") == "numba"

    def test_c_unavailable_raises_with_reason(self, star5, monkeypatch):
        from repro.core import _ckernel

        monkeypatch.setattr(_ckernel, "_BUILD", (None, "simulated: no toolchain"))
        with pytest.raises(BackendUnavailableError, match="simulated: no toolchain"):
            SchedulerEngine(star5, 2, np.arange(5), backend="c")


# ----------------------------------------------------------------------
# startup health probe: the supervised runtime's degradation chain
# ----------------------------------------------------------------------
class TestProbeBackend:
    @pytest.fixture(autouse=True)
    def _fresh_probe_cache(self):
        """Probe decisions are memoised per (backend, pid); these tests
        pin the *live* probe behaviour, so each starts uncached."""
        from repro.core import engine as engine_mod

        engine_mod._PROBE_CACHE.clear()
        yield
        engine_mod._PROBE_CACHE.clear()

    def test_probe_picks_a_working_backend(self, monkeypatch):
        from repro.core.engine import probe_backend

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        chosen, skipped = probe_backend(None)
        assert chosen in available_backends()
        assert all(isinstance(b, str) and isinstance(why, str) for b, why in skipped)

    def test_probe_honours_explicit_working_backend(self):
        from repro.core.engine import probe_backend

        chosen, skipped = probe_backend("python")
        assert chosen == "python"
        assert skipped == []

    def test_probe_degrades_on_injected_compile_failure(self, monkeypatch):
        """A broken C toolchain (injected) degrades c -> numba ->
        python instead of failing the worker, and the skip reasons are
        recorded for the run report."""
        from repro.core.engine import probe_backend
        from repro.testing import faults

        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        faults.install(faults.FaultPlan((faults.Fault(kind="compile_failure"),)))
        try:
            chosen, skipped = probe_backend("c")
        finally:
            faults.install(None)
        assert chosen != "c"
        assert chosen in ("numba", "python")
        reasons = {b: why for b, why in skipped}
        assert "injected compile failure" in reasons["c"]

    def test_probe_runs_a_real_sweep(self, monkeypatch):
        """Backends that resolve but cannot *run* are skipped too: the
        probe executes a real two-node sweep, not just a lookup."""
        from repro.core import engine as engine_mod
        from repro.core.engine import probe_backend

        real_init = engine_mod.SchedulerEngine.__init__

        def sabotaged(self, *a, **kw):
            if kw.get("backend") == "python":
                raise RuntimeError("sabotaged python backend")
            return real_init(self, *a, **kw)

        monkeypatch.setattr(engine_mod.SchedulerEngine, "__init__", sabotaged)
        chosen, skipped = probe_backend("python")
        assert chosen != "python"
        assert any("sabotaged" in why for _b, why in skipped)

    def test_probe_memoised_per_backend_and_pid(self, monkeypatch):
        """Repeated probes in one process (health endpoints, supervisor
        pool restarts) are served from the (backend, pid) cache instead
        of re-running the two-node sweep; refresh=True forces a live
        probe."""
        from repro.core import engine as engine_mod
        from repro.core.engine import probe_backend

        sweeps = []
        real_init = engine_mod.SchedulerEngine.__init__

        def counting(self, *a, **kw):
            sweeps.append(kw.get("backend"))
            return real_init(self, *a, **kw)

        monkeypatch.setattr(engine_mod.SchedulerEngine, "__init__", counting)
        first = probe_backend("python")
        live = len(sweeps)
        assert live >= 1
        assert probe_backend("python") == first
        assert len(sweeps) == live  # cache hit: no new sweep
        assert probe_backend("python", refresh=True) == first
        assert len(sweeps) > live  # forced live probe

    def test_probe_cache_bypassed_under_fault_plan(self, monkeypatch):
        """An active fault plan must keep degrading live probes: cached
        decisions are neither read nor written while one is installed."""
        from repro.core.engine import probe_backend
        from repro.testing import faults

        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        warm = probe_backend("c")  # cached (whatever the chain picked)
        faults.install(faults.FaultPlan((faults.Fault(kind="compile_failure"),)))
        try:
            chosen, skipped = probe_backend("c")
        finally:
            faults.install(None)
        assert chosen != "c"
        assert "injected compile failure" in dict(skipped)["c"]
        # and the plan-era decision did not poison the cache
        assert probe_backend("c") == warm

    def test_apply_backend_only_touches_declaring_algorithms(self):
        assert registry.apply_backend("ParDeepestFirst", {}, "python") == {
            "backend": "python"
        }
        # explicit scenario params are overridden by the probed backend
        assert registry.apply_backend(
            "ParDeepestFirst", {"backend": "c"}, "python"
        ) == {"backend": "python"}
        # no declared backend parameter: params pass through untouched
        assert registry.apply_backend("ParSubtrees", {}, "python") == {}
        # no probed decision: params pass through untouched
        assert registry.apply_backend("ParDeepestFirst", {"backend": "c"}, None) == {
            "backend": "c"
        }


# ----------------------------------------------------------------------
# golden equivalence: every heuristic, both memory modes, all backends
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.mark.parametrize("name", sorted(ENGINE_HEURISTICS))
    @pytest.mark.parametrize("backend", AVAILABLE_ALT)
    def test_heuristics_bit_identical(self, tree, name, backend):
        for p in (1, 2, 4, 8):
            ref = registry.run(name, tree, p, backend="python")
            got = registry.run(name, tree, p, backend=backend)
            assert_same_schedule(got, ref)

    @pytest.mark.parametrize("mode", ["strict", "opportunistic"])
    @pytest.mark.parametrize("backend", AVAILABLE_ALT)
    def test_memory_modes_bit_identical(self, tree, mode, backend):
        res = optimal_postorder(tree)
        for p in (1, 2, 4):
            for factor in (1.0, 1.5, 3.0):
                cap = factor * res.peak_memory
                try:
                    ref = memory_bounded_schedule(
                        tree, p, cap, order=res.order, mode=mode, backend="python"
                    )
                except MemoryCapError as exc:
                    with pytest.raises(MemoryCapError, match="infeasible") as info:
                        memory_bounded_schedule(
                            tree, p, cap, order=res.order, mode=mode, backend=backend
                        )
                    # identical failure point, identical message
                    assert str(info.value) == str(exc)
                    continue
                got = memory_bounded_schedule(
                    tree, p, cap, order=res.order, mode=mode, backend=backend
                )
                assert_same_schedule(got, ref)

    @pytest.mark.parametrize("backend", AVAILABLE_ALT)
    def test_sweep_spec_outputs_bit_identical(self, tree, backend):
        """activation order and peak-memory trace match the reference
        backend exactly (the kernel spec's extra output arrays)."""
        rank = par_deepest_first_rank(tree)
        for cap in (None, 2.0 * optimal_postorder(tree).peak_memory):
            # ranks must follow sigma in strict mode, so the capped case
            # uses the opportunistic policy (which may be infeasible --
            # then both backends must fail identically)
            mode = "strict" if cap is None else "opportunistic"
            ref_eng = SchedulerEngine(tree, 4, rank, backend="python", cap=cap, mode=mode)
            got_eng = SchedulerEngine(tree, 4, rank, backend=backend, cap=cap, mode=mode)
            try:
                ref_schedule = ref_eng.run()
            except MemoryCapError as exc:
                with pytest.raises(MemoryCapError) as info:
                    got_eng.run()
                assert str(info.value) == str(exc)
                continue
            assert_same_schedule(got_eng.run(), ref_schedule)
            ref, got = ref_eng.sweep, got_eng.sweep
            assert np.array_equal(got.activation, ref.activation)
            assert np.array_equal(got.mem_trace, ref.mem_trace)
            assert np.array_equal(got.end, ref.end)
            assert got.now == ref.now and got.mem == ref.mem
            # the activation order is chronological and complete
            assert sorted(got.activation.tolist()) == list(range(tree.n))

    @pytest.mark.parametrize("backend", AVAILABLE_ALT)
    def test_engine_state_summary(self, star5, backend):
        engine = SchedulerEngine(star5, 2, np.arange(5), backend=backend)
        schedule = engine.run()
        assert engine.backend_used == backend
        assert engine.state.started == 5
        assert engine.state.ready == [] and engine.state.running == []
        assert engine.state.now == schedule.makespan


# ----------------------------------------------------------------------
# prepared-path golden equivalence: every heuristic, every backend,
# both memory modes (the PreparedTree refactor's acceptance contract)
# ----------------------------------------------------------------------
class TestPreparedEquivalence:
    @pytest.mark.parametrize("name", sorted(registry.names("parallel")))
    @pytest.mark.parametrize("backend", ["python"] + AVAILABLE_ALT)
    def test_heuristics_bit_identical(self, tree, name, backend):
        from repro.core.prepared import PreparedTree

        prepared = PreparedTree(tree)  # one preparation, swept over p
        kw = {"backend": backend} if "backend" in registry.get(name).params else {}
        for p in (1, 2, 4, 8):
            ref = registry.run(name, tree, p, **kw)
            got = registry.run(name, prepared, p, **kw)
            assert_same_schedule(got, ref)

    @pytest.mark.parametrize("mode", ["strict", "opportunistic"])
    @pytest.mark.parametrize("backend", ["python"] + AVAILABLE_ALT)
    def test_memory_modes_bit_identical(self, tree, mode, backend):
        from repro.core.prepared import PreparedTree

        prepared = PreparedTree(tree)
        res = optimal_postorder(tree)
        for p in (1, 2, 4):
            for factor in (1.0, 1.5, 3.0):
                cap = factor * res.peak_memory
                outcomes = []
                for target in (tree, prepared):
                    try:
                        s = memory_bounded_schedule(
                            target, p, cap, mode=mode, backend=backend
                        )
                        outcomes.append(("ok", s.start.tobytes(), s.proc.tobytes()))
                    except MemoryCapError as exc:
                        outcomes.append(("err", str(exc)))
                assert outcomes[0] == outcomes[1], (mode, p, factor)

    @pytest.mark.parametrize("backend", AVAILABLE_ALT)
    def test_sweep_spec_outputs_bit_identical(self, tree, backend):
        """activation order / peak-memory trace / finals also match when
        the engine runs against a shared preparation."""
        from repro.core.prepared import PreparedTree

        prepared = PreparedTree(tree)
        rank = par_deepest_first_rank(tree)
        ref_eng = SchedulerEngine(tree, 4, rank, backend=backend)
        got_eng = SchedulerEngine(prepared, 4, par_deepest_first_rank(prepared), backend=backend)
        assert_same_schedule(got_eng.run(), ref_eng.run())
        ref, got = ref_eng.sweep, got_eng.sweep
        assert np.array_equal(got.activation, ref.activation)
        assert np.array_equal(got.mem_trace, ref.mem_trace)
        assert np.array_equal(got.end, ref.end)
        assert got.now == ref.now and got.mem == ref.mem


# ----------------------------------------------------------------------
# fallback edge cases
# ----------------------------------------------------------------------
class TestExactnessFallback:
    def huge_int_tree(self) -> TaskTree:
        # integral weights in the reference backend's integer-key regime
        # (total * n < 2**62) whose completion times exceed 2**53: the
        # kernels' float64 event keys cannot represent them exactly, so
        # kernel backends must step aside
        w = np.full(3, float(2**52))
        return TaskTree(np.asarray([-1, 0, 0]), w, np.ones(3), np.ones(3))

    @pytest.mark.parametrize("backend", AVAILABLE_ALT)
    def test_huge_integral_weights_fall_back_to_python(self, backend):
        tree = self.huge_int_tree()
        engine = SchedulerEngine(tree, 2, np.arange(3), backend=backend)
        ref = SchedulerEngine(tree, 2, np.arange(3), backend="python")
        assert_same_schedule(engine.run(), ref.run())
        assert engine.backend == backend  # selection is unchanged...
        assert engine.backend_used == "python"  # ...the sweep fell back

    def test_normal_trees_do_not_fall_back(self, star5):
        engine = SchedulerEngine(star5, 2, np.arange(5), backend=AVAILABLE_ALT[0])
        engine.run()
        assert engine.backend_used == AVAILABLE_ALT[0]


# ----------------------------------------------------------------------
# hypothesis: random trees with heavy priority-rank ties
# ----------------------------------------------------------------------
class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(tree=task_trees(max_nodes=40, max_w=3, max_f=3), p=st.integers(1, 5))
    def test_python_and_compiled_backends_agree(self, tree, p):
        """The reference and the best compiled backend agree on random
        trees whose tiny weight ranges force ties in every priority key
        column (resolved inside lex_rank by node index)."""
        rank = par_deepest_first_rank(tree)
        ref = SchedulerEngine(tree, p, rank, backend="python").run()
        got = SchedulerEngine(tree, p, rank, backend=BEST_ALT).run()
        assert_same_schedule(got, ref)

    @settings(max_examples=40, deadline=None)
    @given(tree=task_trees(max_nodes=30, max_w=3, max_f=3), p=st.integers(1, 4))
    def test_capped_agreement_including_infeasibility(self, tree, p):
        res = optimal_postorder(tree)
        cap = 1.2 * res.peak_memory
        try:
            ref = memory_bounded_schedule(
                tree, p, cap, order=res.order, mode="opportunistic", backend="python"
            )
        except MemoryCapError:
            with pytest.raises(MemoryCapError):
                memory_bounded_schedule(
                    tree, p, cap, order=res.order, mode="opportunistic", backend=BEST_ALT
                )
            return
        got = memory_bounded_schedule(
            tree, p, cap, order=res.order, mode="opportunistic", backend=BEST_ALT
        )
        assert_same_schedule(got, ref)


def _worker_resolve(override: str | None) -> tuple[str, str]:
    """Pool worker probe: what the environment default resolves to, and
    what a per-call ``backend=`` override resolves to (top-level so the
    fork pool can pickle it)."""
    return resolve_backend(None), resolve_backend(override)


# ----------------------------------------------------------------------
# plumbing: experiments pipeline and registry forwarding
# ----------------------------------------------------------------------
class TestPipelinePlumbing:
    def instances(self):
        from repro.workloads.dataset import TreeInstance

        rng = np.random.default_rng(42)
        return [
            TreeInstance(
                name=f"t{i}",
                tree=random_weighted_tree(40 + 10 * i, rng),
                matrix_name=f"t{i}",
                ordering="nd",
                amalgamation=0,
            )
            for i in range(3)
        ]

    def test_run_experiments_backend_is_byte_identical(self):
        from repro.analysis.experiments import run_experiments

        instances = self.instances()
        names = ("ParDeepestFirst", "ParSubtrees", "MemoryBounded")
        ref = run_experiments(instances, (2, 4), heuristics=names, backend="python")
        got = run_experiments(instances, (2, 4), heuristics=names, backend=BEST_ALT)
        assert got == ref

    def test_env_backend_propagates_to_pool_workers(self, monkeypatch):
        """REPRO_ENGINE_BACKEND set in the parent is inherited by fork
        pool workers (their ``resolve_backend(None)`` sees it), while a
        per-call ``backend=`` override still wins inside the worker."""
        import multiprocessing

        monkeypatch.setenv(BACKEND_ENV_VAR, "kernel")  # never auto-selected
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=2) as pool:
            results = pool.map(_worker_resolve, [None, "python", None])
        assert results[0] == ("kernel", "kernel")
        assert results[1] == ("kernel", "python")  # override beats the env
        assert results[2] == ("kernel", "kernel")

    def test_env_default_with_per_call_override_in_workers(self, monkeypatch):
        """run_experiments: env backend in the parent + an explicit
        ``backend=`` override fanned to pool workers are byte-identical
        to the serial reference (the override reaches the children)."""
        from repro.analysis.experiments import run_experiments

        instances = self.instances()
        names = ("ParDeepestFirst", "MemoryBounded")
        ref = run_experiments(instances, (2, 4), heuristics=names)
        monkeypatch.setenv(BACKEND_ENV_VAR, "kernel")
        env_only = run_experiments(
            instances, (2, 4), heuristics=names, workers=2
        )
        overridden = run_experiments(
            instances, (2, 4), heuristics=names, workers=2, backend="python"
        )
        assert env_only == ref
        assert overridden == ref

    def test_registry_rejects_backend_for_non_engine_algorithms(self):
        tree = random_weighted_tree(10, np.random.default_rng(1))
        with pytest.raises(TypeError, match="backend"):
            registry.run("ParSubtrees", tree, 2, backend="python")

    def test_cli_backend_flag(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "run",
                    "--algo",
                    "ParDeepestFirst",
                    "--scale",
                    "tiny",
                    "--limit",
                    "1",
                    "--processors",
                    "2",
                    "--backend",
                    "python",
                ]
            )
            == 0
        )
        assert "ParDeepestFirst" not in capsys.readouterr().err
