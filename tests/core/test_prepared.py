"""Unit tests for :class:`repro.core.prepared.PreparedTree`.

The bundle's contract: everything it caches is a pure function of the
tree, derived once and shared by reference across runs, and the
prepared path is bit-identical to the unprepared path everywhere (the
cross-heuristic x cross-backend matrix lives in
``tests/core/test_backends.py``; these are the bundle-level unit
tests).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import registry
from repro.core import PreparedTree, SchedulerEngine, as_prepared, tree_of
from repro.core.tree import TaskTree
from repro.parallel.list_scheduling import list_schedule, postorder_ranks
from repro.parallel.memory_bounded import memory_bounded_schedule
from repro.parallel.par_deepest_first import par_deepest_first_rank
from repro.parallel.par_inner_first import par_inner_first_rank
from repro.core.bounds import makespan_lower_bound, memory_lower_bound
from repro.sequential.postorder import optimal_postorder
from repro.workloads.synthetic import random_weighted_tree


@pytest.fixture(scope="module")
def tree() -> TaskTree:
    return random_weighted_tree(150, np.random.default_rng(42))


@pytest.fixture
def prepared(tree) -> PreparedTree:
    return PreparedTree(tree)


def same_schedule(a, b):
    return np.array_equal(a.start, b.start) and np.array_equal(a.proc, b.proc)


class TestConstruction:
    def test_wraps_task_tree_only(self):
        with pytest.raises(TypeError, match="TaskTree"):
            PreparedTree([1, 2, 3])

    def test_as_prepared_idempotent(self, tree):
        prepared = as_prepared(tree)
        assert isinstance(prepared, PreparedTree)
        assert as_prepared(prepared) is prepared
        assert prepared.tree is tree

    def test_tree_of_both_forms(self, tree, prepared):
        assert tree_of(tree) is tree
        assert tree_of(prepared) is tree

    def test_construction_is_lazy(self, prepared):
        # nothing derived yet: the bundle is cheap to mint per engine
        assert prepared._pending0 is None
        assert prepared._optimal is None
        assert prepared._ranks == {}


class TestCaches:
    def test_columns_match_tree(self, tree, prepared):
        assert np.array_equal(prepared.pending0, np.diff(tree.child_ptr))
        assert np.array_equal(prepared.alloc, tree.sizes + tree.f)
        assert np.array_equal(prepared.free_on_end, tree.completion_frees())
        assert not prepared.pending0.flags.writeable
        assert not prepared.alloc.flags.writeable

    def test_pending_scratch_refills(self, prepared):
        scratch = prepared.pending_scratch()
        scratch[:] = -7
        again = prepared.pending_scratch()
        assert again is scratch  # reused buffer...
        assert np.array_equal(again, prepared.pending0)  # ...pristine content

    def test_optimal_computed_once(self, tree, prepared):
        res = prepared.optimal()
        assert prepared.optimal() is res
        ref = optimal_postorder(tree)
        assert np.array_equal(res.order, ref.order)
        assert res.peak_memory == ref.peak_memory

    def test_sigma_rank_inverts_optimal_order(self, prepared):
        rank = prepared.sigma_rank()
        assert prepared.sigma_rank() is rank
        assert not rank.flags.writeable
        assert np.array_equal(
            rank[prepared.optimal().order], np.arange(prepared.n)
        )

    def test_weighted_depths_cached(self, tree, prepared):
        wd = prepared.weighted_depths()
        assert prepared.weighted_depths() is wd
        assert np.array_equal(wd, tree.weighted_depths())

    def test_lower_bounds_match_unprepared(self, tree, prepared):
        assert prepared.memory_lower_bound() == memory_lower_bound(tree)
        for p in (1, 2, 7):
            assert prepared.makespan_lower_bound(p) == makespan_lower_bound(tree, p)
        with pytest.raises(ValueError, match="positive"):
            prepared.makespan_lower_bound(0)

    def test_exactness_flags(self, tree, prepared):
        # random_weighted_tree has integral weights
        assert prepared.int_keys
        assert prepared.kernel_exact
        frac = PreparedTree(tree.with_weights(w=tree.w + 0.5))
        assert not frac.int_keys
        assert frac.kernel_exact

    def test_list_caches(self, tree, prepared):
        assert prepared.parent_list() is prepared.parent_list()
        assert prepared.parent_list() == tree.parent.tolist()
        assert prepared.w_list() == tree.w.astype(np.int64).tolist()
        assert prepared.alloc_list() == (tree.sizes + tree.f).tolist()
        assert prepared.free_list() == tree.completion_frees().tolist()


class TestRankCache:
    def test_rank_for_builds_once(self, prepared):
        calls = []

        def build():
            calls.append(1)
            return np.arange(prepared.n, dtype=np.int64)

        r1 = prepared.rank_for("spec", build)
        r2 = prepared.rank_for("spec", build)
        assert r1 is r2
        assert calls == [1]
        assert not r1.flags.writeable

    def test_byrank_only_for_owned_ranks(self, prepared):
        rank = prepared.rank_for("spec2", lambda: np.arange(prepared.n)[::-1].copy())
        byrank = prepared.byrank_for(rank)
        assert byrank is not None
        assert np.array_equal(byrank[rank], np.arange(prepared.n))
        foreign = np.arange(prepared.n, dtype=np.int64)
        assert prepared.byrank_for(foreign) is None

    def test_heuristic_ranks_cached_and_equal(self, tree, prepared):
        for fn, key in (
            (par_deepest_first_rank, "ParDeepestFirst"),
            (par_inner_first_rank, "ParInnerFirst"),
        ):
            got = fn(prepared)
            assert fn(prepared) is got  # cache hit
            assert key in prepared._ranks
            assert np.array_equal(got, fn(tree))

    def test_explicit_order_bypasses_cache(self, tree, prepared):
        naive = par_deepest_first_rank(prepared, tree.postorder())
        cached = par_deepest_first_rank(prepared)
        assert naive is not cached
        assert np.array_equal(naive, par_deepest_first_rank(tree, tree.postorder()))

    def test_postorder_ranks_prepared_is_sigma(self, tree, prepared):
        assert postorder_ranks(prepared) is prepared.sigma_rank()
        assert np.array_equal(postorder_ranks(prepared), postorder_ranks(tree))


class TestEngineIntegration:
    def test_engine_accepts_prepared(self, tree, prepared):
        rank = par_deepest_first_rank(prepared)
        for p in (1, 3, 8):
            ref = SchedulerEngine(tree, p, np.asarray(rank)).run()
            got = SchedulerEngine(prepared, p, rank).run()
            assert same_schedule(got, ref)

    def test_engine_reuse_across_runs(self, prepared):
        # repeated runs against one bundle: the pending scratch must be
        # refilled, so every run sees the pristine counts
        rank = par_deepest_first_rank(prepared)
        first = SchedulerEngine(prepared, 4, rank).run()
        second = SchedulerEngine(prepared, 4, rank).run()
        assert same_schedule(first, second)

    def test_list_schedule_and_callable_priority(self, tree, prepared):
        rank = par_inner_first_rank(tree)
        ref = list_schedule(tree, 3, rank)
        got = list_schedule(prepared, 3, par_inner_first_rank(prepared))
        assert same_schedule(got, ref)
        legacy = list_schedule(prepared, 3, lambda i: (int(rank[i]),))
        assert same_schedule(legacy, ref)

    def test_memory_bounded_prepared(self, tree, prepared):
        from repro.core import MemoryCapError

        res = optimal_postorder(tree)
        for mode in ("strict", "opportunistic"):
            for factor in (1.0, 2.0):
                cap = factor * res.peak_memory
                outcomes = []
                for target in (tree, prepared):
                    try:
                        s = memory_bounded_schedule(target, 4, cap, mode=mode)
                        outcomes.append(("ok", s.start.tobytes(), s.proc.tobytes()))
                    except MemoryCapError as exc:
                        # a tight opportunistic cap may be infeasible --
                        # then both paths must fail identically
                        outcomes.append(("err", str(exc)))
                assert outcomes[0] == outcomes[1], (mode, factor)

    def test_memory_bounded_explicit_foreign_order(self, tree, prepared):
        order = tree.postorder()
        ref = memory_bounded_schedule(tree, 2, 1e18, order=order)
        got = memory_bounded_schedule(prepared, 2, 1e18, order=order)
        assert same_schedule(got, ref)
        # a custom order must not force the optimal-postorder computation
        assert prepared.optimal_computed is None

    def test_invalid_rank_still_rejected(self, prepared):
        bad = np.zeros(prepared.n, dtype=np.int64)
        with pytest.raises(ValueError, match="permutation"):
            SchedulerEngine(prepared, 2, bad)


class TestRegistryIntegration:
    @pytest.mark.parametrize("name", sorted(registry.names()))
    def test_every_algorithm_accepts_prepared(self, tree, prepared, name):
        for p in (1, 4):
            ref = registry.run(name, tree, p)
            got = registry.run(name, prepared, p)
            assert same_schedule(got, ref), (name, p)

    def test_prepared_flag_matches_catalogue(self):
        engine_based = {
            "ParInnerFirst",
            "ParDeepestFirst",
            "ParInnerFirst/naiveO",
            "ParDeepestFirst/hops",
            "MemoryBounded",
            "MemoryAwareSubtrees",
        }
        for algo in registry.algorithms():
            assert algo.accepts_prepared == (algo.name in engine_based), algo.name

    def test_p_sweep_reuses_preparation(self, tree, prepared):
        # after one run, a later p only pays the sweep: the optimal
        # order and the rank must not be rebuilt (identity-checked)
        registry.run("ParDeepestFirst", prepared, 2)
        res = prepared.optimal()
        rank = prepared._ranks["ParDeepestFirst"]
        registry.run("ParDeepestFirst", prepared, 8)
        registry.run("MemoryBounded", prepared, 8)
        assert prepared.optimal() is res
        assert prepared._ranks["ParDeepestFirst"] is rank


class TestScratchConcurrency:
    def test_concurrent_sweeps_share_one_prepared(self, tree, prepared):
        # many threads run the engine against ONE shared PreparedTree;
        # each kernel call leases its own scratch row, so every result
        # must be bit-identical to a serial run on a fresh bundle
        from concurrent.futures import ThreadPoolExecutor

        grid = [
            (heur, p)
            for heur in ("ParDeepestFirst", "ParInnerFirst")
            for p in (1, 2, 3, 4, 6, 8)
        ]
        ref = {
            (heur, p): registry.run(heur, PreparedTree(tree), p)
            for heur, p in grid
        }

        def one(job):
            heur, p = job
            return job, registry.run(heur, prepared, p)

        with ThreadPoolExecutor(max_workers=8) as ex:
            for job, got in ex.map(one, grid * 4):
                assert same_schedule(got, ref[job])

        # every leased slot came back: the free list covers all rows
        assert len(prepared._scratch_free) == prepared._scratch_next
        assert prepared._scratch_next <= 8

    def test_lease_scratch_is_exclusive_and_refilled(self, prepared):
        with prepared.lease_scratch() as a:
            with prepared.lease_scratch() as b:
                assert a is not b
                a[0] = -99
        with prepared.lease_scratch() as c:
            # refilled on lease, not polluted by the previous tenant
            assert c[0] == prepared.pending0[0]
