"""Unit tests for the Schedule representation."""

import numpy as np
import pytest

from repro.core.schedule import Schedule


class TestSequentialSchedule:
    def test_back_to_back(self, chain5):
        order = [4, 3, 2, 1, 0]
        sch = Schedule.sequential(chain5, order)
        assert sch.makespan == 5.0
        assert sch.start[4] == 0.0
        assert sch.start[0] == 4.0
        assert np.all(sch.proc == 0)

    def test_order_roundtrip(self, chain5):
        order = [4, 3, 2, 1, 0]
        sch = Schedule.sequential(chain5, order)
        assert list(sch.order()) == order

    def test_rejects_partial_order(self, chain5):
        with pytest.raises(ValueError, match="every task"):
            Schedule.sequential(chain5, [4, 3])

    def test_makespan_weighted(self, paper_example):
        order = paper_example.postorder()
        sch = Schedule.sequential(paper_example, order)
        assert sch.makespan == paper_example.total_work()


class TestScheduleAccessors:
    def test_tasks_sorted_by_start(self, star5):
        start = np.array([2.0, 0.0, 0.0, 1.0, 1.0])
        proc = np.array([0, 0, 1, 0, 1])
        sch = Schedule(star5, start, proc, p=2)
        rows = sch.tasks()
        assert [t.node for t in rows[:2]] == [1, 2]
        assert rows[-1].node == 0

    def test_processor_tasks(self, star5):
        start = np.array([2.0, 0.0, 0.0, 1.0, 1.0])
        proc = np.array([0, 0, 1, 0, 1])
        sch = Schedule(star5, start, proc, p=2)
        p1 = sch.processor_tasks(1)
        assert [t.node for t in p1] == [2, 4]

    def test_end_times(self, paper_example):
        sch = Schedule.sequential(paper_example, paper_example.postorder())
        assert np.allclose(sch.end, sch.start + paper_example.w)

    def test_rejects_wrong_lengths(self, star5):
        with pytest.raises(ValueError, match="one entry per task"):
            Schedule(star5, np.zeros(3), np.zeros(3, dtype=int), p=1)

    def test_rejects_zero_processors(self, star5):
        with pytest.raises(ValueError, match="at least one processor"):
            Schedule(star5, np.zeros(5), np.zeros(5, dtype=int), p=0)


class TestGantt:
    def test_gantt_renders(self, paper_example):
        sch = Schedule.sequential(paper_example, paper_example.postorder(), p=2)
        text = sch.gantt(width=40)
        assert "P0" in text and "P1" in text
        assert "#" in text

    def test_gantt_truncates_processors(self, star5):
        start = np.zeros(5)
        start[0] = 1.0
        proc = np.array([0, 0, 1, 2, 3])
        sch = Schedule(star5, start, proc, p=40)
        text = sch.gantt(max_procs=2)
        assert "more processors" in text
