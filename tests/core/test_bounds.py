"""Unit and property tests for the lower bounds."""

import pytest
from hypothesis import given, settings

from repro.core.bounds import makespan_lower_bound, memory_lower_bound
from repro.parallel.heuristics import run_all
from tests.conftest import task_trees


class TestMakespanLowerBound:
    def test_single_processor_is_total_work(self, paper_example):
        assert makespan_lower_bound(paper_example, 1) == paper_example.total_work()

    def test_many_processors_is_critical_path(self, paper_example):
        assert makespan_lower_bound(paper_example, 1000) == paper_example.critical_path()

    def test_rejects_bad_p(self, paper_example):
        with pytest.raises(ValueError):
            makespan_lower_bound(paper_example, 0)


class TestMemoryLowerBound:
    def test_postorder_vs_exact(self, paper_example):
        po = memory_lower_bound(paper_example, "postorder")
        exact = memory_lower_bound(paper_example, "exact")
        assert exact <= po + 1e-9

    def test_unknown_method(self, paper_example):
        with pytest.raises(ValueError, match="unknown"):
            memory_lower_bound(paper_example, "magic")


class TestBoundsHold:
    @given(task_trees(min_nodes=2, max_nodes=30))
    @settings(max_examples=25, deadline=None)
    def test_all_heuristics_respect_bounds(self, tree):
        """Every heuristic's measured performance dominates both bounds."""
        mem_lb = memory_lower_bound(tree, "exact")
        for p in (1, 3):
            mk_lb = makespan_lower_bound(tree, p)
            for name, r in run_all(tree, p, validate=True).items():
                assert r.makespan >= mk_lb - 1e-9, name
                assert r.peak_memory >= mem_lb - 1e-9, name
