"""Unit and property tests for the event-sweep simulator."""

import numpy as np
from hypothesis import given, settings

from repro.core.schedule import Schedule
from repro.core.simulator import (
    memory_profile,
    peak_memory,
    sequential_peak_memory,
    simulate,
)
from repro.core.tree import TaskTree
from repro.sequential.traversal import traversal_peak_memory
from tests.conftest import task_trees


class TestSequentialAccounting:
    def test_chain_pebble(self, chain5):
        # Chain in pebble model: each step holds child output + own output.
        peak = sequential_peak_memory(chain5, [4, 3, 2, 1, 0])
        assert peak == 2.0

    def test_star_pebble(self, star5):
        # All leaf outputs resident when the root runs: 4 + root's 1.
        peak = sequential_peak_memory(star5, [1, 2, 3, 4, 0])
        assert peak == 5.0

    def test_execution_file_counted(self):
        t = TaskTree.from_parents([-1, 0], w=1.0, f=2.0, sizes=[3.0, 4.0])
        # leaf: 4 + 2 = 6; root while leaf output resident: 2 + 3 + 2 = 7
        assert sequential_peak_memory(t, [1, 0]) == 7.0

    def test_matches_traversal_evaluation(self, paper_example):
        order = paper_example.postorder()
        assert sequential_peak_memory(paper_example, order) == traversal_peak_memory(
            paper_example, order
        )

    @given(task_trees())
    @settings(max_examples=80, deadline=None)
    def test_simulator_equals_traversal_evaluator(self, tree):
        """The event sweep and the direct profile agree on any order."""
        order = tree.postorder()
        assert abs(
            sequential_peak_memory(tree, order) - traversal_peak_memory(tree, order)
        ) < 1e-9


class TestParallelAccounting:
    def test_free_before_alloc_at_same_instant(self, star5):
        """Leaves end at t=1, root starts at t=1: the root's allocation
        must not stack on the leaves' execution allocations."""
        start = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        proc = np.array([0, 0, 1, 2, 3])
        sch = Schedule(star5, start, proc, p=4)
        # During leaves: 4 outputs; during root: 4 inputs + 1 output = 5.
        assert peak_memory(sch) == 5.0

    def test_parallel_leaves_sum(self, star5):
        start = np.array([2.0, 0.0, 0.0, 1.0, 1.0])
        proc = np.array([0, 0, 1, 0, 1])
        sch = Schedule(star5, start, proc, p=2)
        sim = simulate(sch)
        # t in [0,1): leaves 1,2 -> 2; [1,2): outputs 1,2 + leaves 3,4 -> 4
        # [2,3): 4 inputs + root output -> 5.
        assert sim.peak_memory == 5.0
        assert sim.memory_at(0.5) == 2.0
        assert sim.memory_at(1.5) == 4.0

    def test_memory_profile_monotone_times(self, paper_example):
        sch = Schedule.sequential(paper_example, paper_example.postorder())
        times, mem = memory_profile(sch)
        assert np.all(np.diff(times) > 0)
        assert mem.shape == times.shape

    def test_final_memory_is_root_output(self, paper_example):
        sch = Schedule.sequential(paper_example, paper_example.postorder())
        _, mem = memory_profile(sch)
        assert mem[-1] == paper_example.f[paper_example.root]

    @given(task_trees())
    @settings(max_examples=60, deadline=None)
    def test_memory_conservation(self, tree):
        """Total allocations equal total frees plus the root's output."""
        sch = Schedule.sequential(tree, tree.postorder())
        _, mem = memory_profile(sch)
        assert abs(mem[-1] - tree.f[tree.root]) < 1e-9
        assert np.all(mem >= -1e-9)


class TestSimulateResult:
    def test_makespan(self, paper_example):
        sch = Schedule.sequential(paper_example, paper_example.postorder())
        sim = simulate(sch)
        assert sim.makespan == paper_example.total_work()

    def test_memory_at_before_start(self, paper_example):
        sch = Schedule.sequential(paper_example, paper_example.postorder())
        sim = simulate(sch)
        assert sim.memory_at(-1.0) == 0.0

    def test_validate_flag(self, star5):
        # Invalid: root starts before children complete.
        start = np.zeros(5)
        proc = np.arange(5) % 2
        sch = Schedule(star5, start, proc, p=2)
        import pytest

        from repro.core.validation import InvalidScheduleError

        with pytest.raises(InvalidScheduleError):
            simulate(sch, validate=True)
        sim = simulate(sch, validate=False)  # accounting still runs
        assert sim.peak_memory > 0
