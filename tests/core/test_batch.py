"""Megabatch sweeps: one kernel call per scenario grid, bit-identical.

The batched entry point (:func:`repro.core.engine.sweep_batch`) stacks
an (algorithm x p x cap) grid into one kernel call, thread-parallel in
the compiled backends. Its acceptance contract extends the backend
golden tests: per-scenario results must be **byte-identical** to the
unbatched path for every registered heuristic x backend x memory mode,
independent of the thread count -- including error outcomes (an
infeasible cap raises the same message at the same slice position) and
the per-*scenario* integral-weight exactness fallback.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import registry
from repro.core.engine import (
    THREADS_ENV_VAR,
    MemoryCapError,
    SchedulerEngine,
    default_threads,
    sweep_batch,
)
from repro.core.prepared import PreparedTree, stack_unique
from repro.core.tree import TaskTree
from repro.workloads.synthetic import random_weighted_tree

from tests.conftest import task_trees
from tests.core.test_backends import (
    AVAILABLE_ALT,
    BEST_ALT,
    assert_same_schedule,
    tree_spread,
)

#: the megabatch matrix: reference loop + every compiled backend here
BATCH_BACKENDS = ["python"] + AVAILABLE_ALT

#: algorithms with a registered sweep spec (every engine-backed one)
BATCHABLE = [a.name for a in registry.algorithms("parallel") if a.sweep_spec]


def grid(prepared: PreparedTree) -> tuple[list, list]:
    """The full test grid over one tree: every batchable heuristic at
    several p, the memory-capped modes at loose and tight caps."""
    specs, labels = [], []
    for name in BATCHABLE:
        algo = registry.get(name)
        if "cap_factor" in algo.params:
            for cap_factor in (1.25, 2.0):
                for mode in ("strict", "opportunistic"):
                    for p in (2, 4):
                        kw = {"cap_factor": cap_factor, "mode": mode}
                        specs.append(algo.batch_spec(prepared, p, **kw))
                        labels.append((name, p, kw))
        else:
            for p in (1, 2, 4, 8):
                specs.append(algo.batch_spec(prepared, p))
                labels.append((name, p, {}))
    return specs, labels


def reference_outcomes(prepared: PreparedTree, labels: list) -> list:
    """Unbatched reference outcome per grid cell (schedule or error)."""
    out = []
    for name, p, kw in labels:
        try:
            out.append(registry.run(name, prepared, p, backend="python", **kw))
        except MemoryCapError as exc:
            out.append(exc)
    return out


def assert_outcomes_match(run, refs, labels) -> None:
    for outcome, ref, label in zip(run.outcomes, refs, labels):
        if isinstance(ref, Exception):
            assert type(outcome) is type(ref), label
            assert str(outcome) == str(ref), label
        else:
            assert_same_schedule(outcome, ref)


# ----------------------------------------------------------------------
# the bit-identity matrix: heuristic x backend x memory mode
# ----------------------------------------------------------------------
class TestBitIdentityMatrix:
    @pytest.mark.parametrize("backend", BATCH_BACKENDS)
    @pytest.mark.parametrize("tree_index", range(8))
    def test_batched_equals_unbatched(self, backend, tree_index):
        prepared = PreparedTree(tree_spread()[tree_index])
        specs, labels = grid(prepared)
        refs = reference_outcomes(prepared, labels)
        run = sweep_batch(prepared, specs, backend=backend, threads=2)
        assert run.backend == backend
        assert_outcomes_match(run, refs, labels)

    def test_engines_expose_full_sweep_state(self):
        """Batch engines carry the same sweep/state as unbatched runs
        (activation order, memory trace, final clock), not just the
        schedule arrays."""
        prepared = PreparedTree(tree_spread()[4])
        specs, _ = grid(prepared)
        run = sweep_batch(prepared, specs, backend=BEST_ALT, threads=2)
        for engine, spec, outcome in zip(run.engines, specs, run.outcomes):
            if isinstance(outcome, Exception):
                continue
            assert engine.backend_used == BEST_ALT
            ref = SchedulerEngine(
                prepared,
                spec.p,
                spec.rank,
                cap=spec.cap,
                order=spec.order,
                mode=spec.mode,
                backend="python",
            )
            ref.run()
            for fld in ("start", "end", "proc", "activation", "mem_trace"):
                np.testing.assert_array_equal(
                    getattr(engine.sweep, fld), getattr(ref.sweep, fld)
                )
            assert engine.sweep.now == ref.sweep.now
            assert engine.sweep.mem == ref.sweep.mem

    def test_threads_do_not_change_results(self):
        prepared = PreparedTree(tree_spread()[2])
        specs, labels = grid(prepared)
        baseline = sweep_batch(prepared, specs, backend=BEST_ALT, threads=1)
        base_bytes = [
            None if isinstance(o, Exception) else (o.start.tobytes(), o.proc.tobytes())
            for o in baseline.outcomes
        ]
        for threads in (2, 8):
            run = sweep_batch(prepared, specs, backend=BEST_ALT, threads=threads)
            got = [
                None
                if isinstance(o, Exception)
                else (o.start.tobytes(), o.proc.tobytes())
                for o in run.outcomes
            ]
            assert got == base_bytes  # byte-identical for any thread count

    def test_schedules_raises_the_stored_error(self):
        tree = tree_spread()[4]
        prepared = PreparedTree(tree)
        algo = registry.get("MemoryBounded")
        specs = [
            algo.batch_spec(prepared, 2),
            algo.batch_spec(prepared, 4, cap_factor=1.0, mode="opportunistic"),
        ]
        run = sweep_batch(prepared, specs, backend=BEST_ALT)
        try:
            registry.run(
                "MemoryBounded", prepared, 4, cap_factor=1.0, mode="opportunistic"
            )
        except MemoryCapError as exc:
            expected = str(exc)
            with pytest.raises(MemoryCapError) as err:
                run.schedules()
            assert str(err.value) == expected
        else:  # the cap happens to be feasible on this tree
            assert len(run.schedules()) == 2

    @settings(max_examples=25, deadline=None)
    @given(tree=task_trees(max_nodes=40, max_w=2, max_f=1), p=st.integers(1, 5))
    def test_property_tie_heavy_grids(self, tree, p):
        """Hypothesis sweep over tie-heavy trees (max_w=2 forces heavy
        duplicate priority keys): the whole grid stays bit-identical."""
        prepared = PreparedTree(tree)
        specs, labels = grid(prepared)
        refs = reference_outcomes(prepared, labels)
        run = sweep_batch(prepared, specs, backend=BEST_ALT, threads=3)
        assert_outcomes_match(run, refs, labels)


# ----------------------------------------------------------------------
# per-scenario exactness fallback (integral weights >= 2**53)
# ----------------------------------------------------------------------
class TestExactnessFallback:
    def test_huge_integral_weights_fall_back_per_scenario(self):
        # 3 integral weights of 2**52 sum past 2**53: float64 event keys
        # can no longer represent every completion time exactly, so each
        # scenario of the batch must take the reference loop -- and stay
        # bit-identical to the unbatched path.
        tree = TaskTree.from_parents(
            [-1, 0, 0], w=float(2**52), f=1.0, sizes=0.0
        )
        prepared = PreparedTree(tree)
        assert not prepared.kernel_exact
        specs = [
            registry.get("ParDeepestFirst").batch_spec(prepared, p) for p in (1, 2, 3)
        ]
        run = sweep_batch(prepared, specs, backend=BEST_ALT, threads=2)
        for engine, p in zip(run.engines, (1, 2, 3)):
            assert engine.backend_used == "python"  # fell back, per scenario
        for schedule, p in zip(run.schedules(), (1, 2, 3)):
            assert_same_schedule(
                schedule, registry.run("ParDeepestFirst", prepared, p, backend="python")
            )

    def test_python_backend_batches_through_reference_loop(self):
        prepared = PreparedTree(tree_spread()[3])
        specs, _ = grid(prepared)
        run = sweep_batch(prepared, specs, backend="python")
        for engine, outcome in zip(run.engines, run.outcomes):
            if not isinstance(outcome, Exception):
                assert engine.backend_used == "python"


# ----------------------------------------------------------------------
# stacking helpers
# ----------------------------------------------------------------------
class TestStackingHelpers:
    def test_stack_unique_dedups_by_identity(self):
        a = np.arange(4, dtype=np.int64)
        b = np.arange(4, dtype=np.int64)[::-1].copy()
        stack, ids = stack_unique([a, b, a, None, b])
        assert stack.shape == (2, 4)
        assert ids.tolist() == [0, 1, 0, -1, 1]
        assert np.array_equal(stack[0], a) and np.array_equal(stack[1], b)

    def test_stack_unique_all_none_yields_dummy(self):
        stack, ids = stack_unique([None, None])
        assert stack.shape == (1, 0) and stack.dtype == np.int64
        assert ids.tolist() == [-1, -1]
        assert stack[0][:0].shape == (0,)  # the kernels' empty sigma slice

    def test_pending_scratch_slots_never_alias(self, chain5):
        prepared = PreparedTree(chain5)
        row0 = prepared.pending_scratch(0)
        row2 = prepared.pending_scratch(2)
        row0[:] = -1
        assert np.array_equal(row2, prepared.pending0)  # distinct buffers
        assert prepared.pending_scratch(2) is row2  # stable per slot
        assert np.array_equal(prepared.pending_scratch(0), prepared.pending0)

    def test_pending_scratch_rejects_negative_slot(self, chain5):
        with pytest.raises(ValueError, match="slot"):
            PreparedTree(chain5).pending_scratch(-1)


# ----------------------------------------------------------------------
# threading knobs
# ----------------------------------------------------------------------
class TestThreads:
    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV_VAR, "3")
        assert default_threads() == 3
        monkeypatch.setenv(THREADS_ENV_VAR, "0")
        assert default_threads() == 1  # clamped to at least one thread
        monkeypatch.setenv(THREADS_ENV_VAR, "not-a-number")
        assert default_threads() >= 1  # falls through to the core count
        monkeypatch.delenv(THREADS_ENV_VAR)
        assert default_threads() >= 1

    def test_batchrun_records_resolved_threads(self, star5):
        prepared = PreparedTree(star5)
        spec = registry.get("ParInnerFirst").batch_spec(prepared, 2)
        run = sweep_batch(prepared, [spec], threads=5)
        assert run.threads == 5
        assert len(run.schedules()) == 1


# ----------------------------------------------------------------------
# registry integration
# ----------------------------------------------------------------------
class TestRegistrySpecs:
    def test_every_engine_algorithm_has_a_spec(self):
        for name in ("ParInnerFirst", "ParDeepestFirst", "ParInnerFirst/naiveO",
                     "ParDeepestFirst/hops", "MemoryBounded"):
            assert registry.get(name).sweep_spec is not None

    def test_non_engine_algorithms_have_none(self):
        for name in ("ParSubtrees", "ParSubtreesOptim", "MemoryAwareSubtrees",
                     "optimal_postorder"):
            algo = registry.get(name)
            assert algo.sweep_spec is None
            assert algo.batch_spec(tree_spread()[1], 2) is None

    def test_batch_spec_rejects_unknown_params(self):
        prepared = PreparedTree(tree_spread()[1])
        with pytest.raises(TypeError, match="unknown"):
            registry.get("MemoryBounded").batch_spec(prepared, 2, bogus=1)

    def test_batch_spec_strips_backend(self):
        prepared = PreparedTree(tree_spread()[1])
        spec = registry.get("ParInnerFirst").batch_spec(prepared, 2, backend="python")
        assert spec.p == 2 and spec.cap is None

    def test_specs_share_prepared_rank_arrays(self):
        """Scenario stacking dedups by identity, so specs built off one
        prepared tree must reuse the cached rank/order objects."""
        prepared = PreparedTree(tree_spread()[2])
        algo = registry.get("MemoryBounded")
        s1 = algo.batch_spec(prepared, 2, cap_factor=1.5)
        s2 = algo.batch_spec(prepared, 8, cap_factor=3.0)
        assert s1.rank is s2.rank
        assert s1.order is s2.order
        p1 = registry.get("ParDeepestFirst").batch_spec(prepared, 2)
        p2 = registry.get("ParDeepestFirst").batch_spec(prepared, 16)
        assert p1.rank is p2.rank


# ----------------------------------------------------------------------
# campaign megabatch path
# ----------------------------------------------------------------------
class TestCampaignMegabatch:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.workloads.dataset import TreeInstance
        from repro.analysis.campaign import Campaign

        rng = np.random.default_rng(1305)
        instances = [
            TreeInstance(
                name=f"t{i}",
                tree=random_weighted_tree(60 + 30 * i, rng),
                matrix_name=f"t{i}",
                ordering="nd",
                amalgamation=1,
            )
            for i in range(3)
        ]
        campaign = Campaign(
            algorithms=(
                "ParInnerFirst",
                "ParDeepestFirst",
                "ParSubtrees",
                "MemoryBounded",
                "optimal_postorder",
            ),
            processor_counts=(2, 4),
            cap_factors=(1.5, 2.0),
        )
        return instances, campaign

    def test_megabatch_records_byte_identical(self, setup):
        from repro.analysis.campaign import run_campaign

        instances, campaign = setup
        batched = run_campaign(instances, campaign, megabatch=True, threads=2)
        unbatched = run_campaign(instances, campaign, megabatch=False)
        assert batched == unbatched

    def test_megabatch_with_worker_pool(self, setup):
        from repro.analysis.campaign import run_campaign

        instances, campaign = setup
        serial = run_campaign(instances, campaign, megabatch=True)
        pooled = run_campaign(
            instances, campaign, workers=2, megabatch=True, threads=2
        )
        shm = run_campaign(
            instances, campaign, workers=2, shared_memory=True, megabatch=True
        )
        assert pooled == serial
        assert shm == serial

    def test_megabatch_checkpoint_bytes_identical(self, setup, tmp_path):
        from repro.analysis.campaign import run_campaign

        instances, campaign = setup
        on = str(tmp_path / "on.jsonl")
        off = str(tmp_path / "off.jsonl")
        r1 = run_campaign(instances, campaign, checkpoint=on, megabatch=True)
        r2 = run_campaign(instances, campaign, checkpoint=off, megabatch=False)
        assert r1 == r2
        assert open(on, "rb").read() == open(off, "rb").read()

    def test_megabatch_resume_is_byte_identical(self, setup, tmp_path):
        from repro.analysis.campaign import run_campaign

        instances, campaign = setup
        full = str(tmp_path / "full.jsonl")
        records = run_campaign(instances, campaign, checkpoint=full, megabatch=True)
        blob = open(full, "rb").read()
        part = str(tmp_path / "part.jsonl")
        lines = blob.splitlines()
        with open(part, "wb") as fh:
            fh.write(b"\n".join(lines[:5]) + b"\n")
        resumed = run_campaign(
            instances, campaign, checkpoint=part, resume=True, megabatch=True
        )
        assert resumed == records
        assert open(part, "rb").read() == blob


# ----------------------------------------------------------------------
# C build cache keyed by flags + source (satellite: stale-cache hazard)
# ----------------------------------------------------------------------
class TestCompileCacheKeys:
    def test_cache_key_covers_flags(self):
        from repro.core import _ckernel

        serial = _ckernel._cache_key(["-O3", "-shared", "-fPIC"])
        openmp = _ckernel._cache_key(["-O3", "-shared", "-fPIC", "-fopenmp"])
        assert serial != openmp  # an OpenMP .so can never shadow a serial one
        assert serial == _ckernel._cache_key(["-O3", "-shared", "-fPIC"])

    def test_no_openmp_env_var_forces_serial_flags(self, monkeypatch):
        from repro.core import _ckernel

        monkeypatch.delenv(_ckernel.NO_OPENMP_ENV_VAR, raising=False)
        flag_sets = _ckernel._build_flags()
        assert any("-fopenmp" in flags for flags in flag_sets)
        assert flag_sets[-1] == ["-O3", "-shared", "-fPIC"]  # serial fallback
        monkeypatch.setenv(_ckernel.NO_OPENMP_ENV_VAR, "1")
        assert _ckernel._build_flags() == [["-O3", "-shared", "-fPIC"]]

    @pytest.mark.skipif("c" not in AVAILABLE_ALT, reason="no C toolchain")
    def test_serial_rebuild_lands_in_a_distinct_artifact(self, tmp_path, monkeypatch):
        """REPRO_NO_OPENMP in a fresh cache dir compiles a second .so
        under the serial flags' digest -- no collision, openmp off."""
        import subprocess
        import sys

        code = (
            "import os\n"
            "from repro.core import _ckernel\n"
            "assert _ckernel.available(), _ckernel.unavailable_reason()\n"
            "assert not _ckernel.openmp_enabled()\n"
            "libs = [f for f in os.listdir(_ckernel.cache_dir()) if f.endswith('.so')]\n"
            "key = _ckernel._cache_key(['-O3', '-shared', '-fPIC'])\n"
            "assert libs == [f'event_sweep_{key}.so'], libs\n"
            "print('ok')\n"
        )
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        env = dict(os.environ)
        env["REPRO_NO_OPENMP"] = "1"
        env["REPRO_KERNEL_CACHE"] = str(tmp_path / "cache")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"

    def test_build_tuple_keeps_legacy_indices(self):
        """Monkeypatching _BUILD with a (None, reason) 2-tuple -- the
        historical format used across the test suite -- must keep
        working: fn at [0], reason at [1], batch/openmp length-gated."""
        from repro.core import _ckernel

        build = _ckernel._ensure_built()
        assert build[0] is None or callable(build[0])
        assert isinstance(build[1], str)
        if build[0] is not None:
            assert len(build) == 4 and callable(build[2])
