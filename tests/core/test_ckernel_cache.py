"""Concurrent first-compile safety of the C kernel build cache.

Two pool workers starting on a cold ``REPRO_KERNEL_CACHE`` used to race
the same source/library paths: one process could recompile a half-
written ``.c`` file or load a half-written ``.so``. The build now
elects one builder via an ``O_EXCL`` lock file (stale-tolerant, so a
SIGKILLed builder cannot wedge future compiles), writes both artifacts
to unique temp names and publishes them with atomic renames. These
tests race real processes against a cold cache and pin the lock
election rules.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import time

import pytest

from repro.core import _ckernel

pytestmark = pytest.mark.skipif(
    shutil.which("cc") is None
    and shutil.which("gcc") is None
    and shutil.which("clang") is None,
    reason="no C toolchain on PATH",
)


class TestBuildLock:
    def test_exclusive_acquire_and_pid_stamp(self, tmp_path):
        lock = str(tmp_path / "k.so.lock")
        assert _ckernel._acquire_build_lock(lock)
        assert open(lock).read().strip() == str(os.getpid())
        # held: a second contender loses
        assert not _ckernel._acquire_build_lock(lock)

    def test_stale_lock_is_broken(self, tmp_path):
        lock = str(tmp_path / "k.so.lock")
        assert _ckernel._acquire_build_lock(lock)
        # a fresh lock is honoured...
        assert not _ckernel._acquire_build_lock(lock)
        # ...but one older than the stale threshold (a builder that was
        # SIGKILLed mid-compile) is unlinked and re-acquired
        past = time.time() - (_ckernel._LOCK_STALE_SECONDS + 10)
        os.utime(lock, (past, past))
        assert _ckernel._acquire_build_lock(lock)

    def test_lock_released_after_build(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        monkeypatch.setenv(_ckernel.NO_OPENMP_ENV_VAR, "1")
        flags = _ckernel._build_flags()[0]
        lib = str(tmp_path / f"event_sweep_{_ckernel._cache_key(flags)}.so")
        cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
        assert _ckernel._compile_one(cc, flags, lib) == ""
        assert os.path.exists(lib)
        assert not os.path.exists(lib + ".lock")


_PROBE = """
import sys
from repro.core import _ckernel
ok = _ckernel.available()
print("available" if ok else f"unavailable: {_ckernel.unavailable_reason()}")
sys.exit(0 if ok else 1)
"""


def _env(cache: str) -> dict:
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", "src"))
    env = {**os.environ, "REPRO_KERNEL_CACHE": cache, "REPRO_NO_OPENMP": "1"}
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_FAULT_PLAN", None)  # a chaos env must not fail the build
    return env


class TestConcurrentFirstCompile:
    def test_simultaneous_cold_cache_compiles_converge(self, tmp_path):
        """Several processes hitting an empty cache at once: every one
        reports the backend available, exactly one artifact pair lands,
        and no lock or temp residue survives."""
        cache = str(tmp_path / "cache")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _PROBE],
                env=_env(cache),
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            for _ in range(3)
        ]
        for proc in procs:
            out, _ = proc.communicate(timeout=300)
            assert proc.returncode == 0, out
            assert "available" in out
        names = sorted(os.listdir(cache))
        assert len([n for n in names if n.endswith(".so")]) == 1
        assert len([n for n in names if n.endswith(".c")]) == 1
        assert not [n for n in names if ".lock" in n or ".tmp" in n], names

    def test_stale_lock_from_killed_builder_does_not_wedge(self, tmp_path):
        """A lock file left by a SIGKILLed builder is broken and the
        compile proceeds instead of waiting out the full window."""
        cache = tmp_path / "cache"
        cache.mkdir()
        flags = ["-O3", "-shared", "-fPIC"]  # the REPRO_NO_OPENMP flag set
        lock = cache / f"event_sweep_{_ckernel._cache_key(flags)}.so.lock"
        lock.write_text("999999\n")
        past = time.time() - (_ckernel._LOCK_STALE_SECONDS + 10)
        os.utime(lock, (past, past))
        proc = subprocess.run(
            [sys.executable, "-c", _PROBE],
            env=_env(str(cache)),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert not lock.exists()
