"""Unit tests for the TaskTree data structure."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.tree import TaskTree
from tests.conftest import task_trees


class TestConstruction:
    def test_single_node(self):
        t = TaskTree.from_parents([-1])
        assert t.n == 1
        assert t.root == 0
        assert t.is_leaf(0)
        assert t.children(0).size == 0

    def test_chain(self, chain5):
        assert chain5.root == 0
        assert chain5.height() == 4
        assert chain5.n_leaves() == 1
        assert list(chain5.children(0)) == [1]

    def test_star(self, star5):
        assert star5.max_degree() == 4
        assert star5.n_leaves() == 4
        assert list(star5.leaves()) == [1, 2, 3, 4]

    def test_scalar_weight_broadcast(self):
        t = TaskTree.from_parents([-1, 0], w=2.5, f=3.0, sizes=1.0)
        assert np.all(t.w == 2.5)
        assert np.all(t.f == 3.0)
        assert np.all(t.sizes == 1.0)

    def test_from_edges(self):
        t = TaskTree.from_edges([(1, 0), (2, 0), (3, 1)], n=4)
        assert t.root == 0
        assert list(t.children(0)) == [1, 2]
        assert list(t.children(1)) == [3]

    def test_from_edges_duplicate_parent_rejected(self):
        with pytest.raises(ValueError, match="two parents"):
            TaskTree.from_edges([(1, 0), (1, 2)], n=3)

    def test_pebble_game_weights(self):
        t = TaskTree.pebble_game([-1, 0, 0])
        assert np.all(t.w == 1.0)
        assert np.all(t.f == 1.0)
        assert np.all(t.sizes == 0.0)

    def test_rejects_no_root(self):
        with pytest.raises(ValueError, match="exactly one root"):
            TaskTree.from_parents([0, 1])  # a 2-cycle, no root

    def test_rejects_two_roots(self):
        with pytest.raises(ValueError, match="exactly one root"):
            TaskTree.from_parents([-1, -1])

    def test_rejects_self_parent(self):
        with pytest.raises(ValueError, match="own parent"):
            TaskTree.from_parents([-1, 1])

    def test_rejects_cycle(self):
        # 0 is root; 1 -> 2 -> 1 is a detached cycle.
        with pytest.raises(ValueError, match="cycle"):
            TaskTree.from_parents([-1, 2, 1])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError, match="non-negative"):
            TaskTree.from_parents([-1, 0], w=[-1.0, 1.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            TaskTree(np.array([-1, 0]), np.ones(3), np.ones(2), np.zeros(2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one task"):
            TaskTree.from_parents([])

    def test_rejects_out_of_range_parent(self):
        with pytest.raises(ValueError, match="out of range"):
            TaskTree.from_parents([-1, 7])


class TestTraversalsAndAggregates:
    def test_postorder_children_before_parents(self, paper_example):
        order = paper_example.postorder()
        pos = {int(v): k for k, v in enumerate(order)}
        for i in range(paper_example.n):
            for j in paper_example.children(i):
                assert pos[j] < pos[i]

    def test_postorder_is_permutation(self, paper_example):
        order = paper_example.postorder()
        assert sorted(order) == list(range(paper_example.n))

    def test_depths(self, paper_example):
        d = paper_example.depths()
        assert d[0] == 0
        assert d[1] == d[2] == 1
        assert d[3] == d[4] == d[5] == d[6] == 2

    def test_weighted_depths_includes_own_weight(self, paper_example):
        wd = paper_example.weighted_depths()
        assert wd[0] == 3.0  # root: own w only
        assert wd[1] == 3.0 + 2.0
        assert wd[5] == 3.0 + 4.0 + 5.0

    def test_critical_path(self, paper_example):
        assert paper_example.critical_path() == 12.0  # 0 -> 2 -> 5

    def test_subtree_work_root_is_total(self, paper_example):
        W = paper_example.subtree_work()
        assert W[paper_example.root] == paper_example.total_work()
        assert W[1] == 2 + 1 + 2

    def test_subtree_sizes(self, paper_example):
        s = paper_example.subtree_sizes()
        assert s[paper_example.root] == 7
        assert s[1] == 3
        assert s[3] == 1

    def test_subtree_nodes(self, paper_example):
        nodes = set(paper_example.subtree_nodes(1))
        assert nodes == {1, 3, 4}

    def test_deep_chain_no_recursion_error(self):
        n = 50_000
        t = TaskTree.from_parents([-1] + list(range(n - 1)))
        assert t.height() == n - 1
        assert t.postorder()[0] == n - 1

    def test_processing_memory(self, paper_example):
        # node 1: children 3,4 with f=4,1; sizes=0; f=3
        assert paper_example.processing_memory(1) == 4 + 1 + 0 + 3
        # leaf 3: no inputs
        assert paper_example.processing_memory(3) == 0 + 4


class TestDerivedTrees:
    def test_subtree_extraction(self, paper_example):
        sub, nodes = paper_example.subtree(2)
        assert sub.n == 3
        assert sub.root == 0
        assert list(nodes) == [2, 6, 5] or set(nodes) == {2, 5, 6}
        # weights carried over
        orig = {int(o): k for k, o in enumerate(nodes)}
        assert sub.w[orig[5]] == paper_example.w[5]

    def test_subtree_of_root_is_whole_tree(self, paper_example):
        sub, nodes = paper_example.subtree(paper_example.root)
        assert sub.n == paper_example.n
        assert sub.total_work() == paper_example.total_work()

    def test_with_weights(self, star5):
        t = star5.with_weights(w=[5, 1, 1, 1, 1])
        assert t.w[0] == 5
        assert star5.w[0] == 1  # original untouched

    def test_to_networkx(self, paper_example):
        g = paper_example.to_networkx()
        assert g.number_of_nodes() == 7
        assert g.number_of_edges() == 6
        assert g.has_edge(1, 0)
        assert g.nodes[5]["w"] == 5.0


class TestCSRRepresentation:
    """Invariants of the CSR children arrays and the derived caches.

    (Bit-level equivalence against the seed tuple-based implementation
    lives in ``tests/sequential/test_golden_seq.py``.)
    """

    @given(task_trees())
    @settings(max_examples=60, deadline=None)
    def test_csr_matches_parent_vector(self, tree):
        ptr, idx = tree.child_ptr, tree.child_idx
        assert ptr[0] == 0 and ptr[-1] == tree.n - 1
        assert np.all(np.diff(ptr) >= 0)
        for p in range(tree.n):
            kids = idx[ptr[p] : ptr[p + 1]]
            assert np.all(tree.parent[kids] == p)
            assert np.all(np.diff(kids) > 0)  # ascending node order
        # every non-root node appears exactly once
        assert sorted(idx.tolist()) == sorted(
            i for i in range(tree.n) if i != tree.root
        )

    @given(task_trees())
    @settings(max_examples=60, deadline=None)
    def test_postorder_positions_and_subtree_slices(self, tree):
        pos = tree.postorder_positions()
        order = tree.postorder()
        assert np.array_equal(pos[order], np.arange(tree.n))
        size = tree.subtree_sizes()
        for i in range(tree.n):
            nodes = tree.subtree_nodes(i)
            assert nodes[0] == i
            assert nodes.shape[0] == size[i]
            # a subtree is one contiguous postorder slice
            assert np.array_equal(np.sort(pos[nodes]), np.arange(pos[i] - size[i] + 1, pos[i] + 1))

    @given(task_trees())
    @settings(max_examples=60, deadline=None)
    def test_vectorized_aggregates(self, tree):
        ins = tree.input_sizes()
        pm = tree.processing_memories()
        for i in range(tree.n):
            assert ins[i] == sum(float(tree.f[j]) for j in tree.children(i))
            assert pm[i] == tree.processing_memory(i)

    def test_root_cached_and_correct(self, paper_example):
        assert paper_example.root == 0
        assert paper_example._root == 0  # populated at construction

    def test_deep_chain_fallback_consistent(self):
        """The DFS fallback and the vectorized path agree on every cache."""
        n = 3000
        parent = [-1] + list(range(n - 1))
        deep = TaskTree.from_parents(parent)  # height n-1: fallback path
        assert deep._subtree_sizes is None  # sizes are lazy on this path
        assert np.array_equal(deep.postorder(), np.arange(n - 1, -1, -1))
        assert np.array_equal(deep.subtree_sizes(), np.arange(n, 0, -1))
        assert np.array_equal(deep.depths(), np.arange(n))

    def test_caches_are_read_only(self, paper_example):
        for arr in (
            paper_example.postorder(),
            paper_example.depths(),
            paper_example.child_ptr,
            paper_example.child_idx,
            paper_example.input_sizes(),
        ):
            with pytest.raises(ValueError):
                arr[0] = 99

    def test_subtree_sizes_returns_writable_copy(self, paper_example):
        s = paper_example.subtree_sizes()
        s[0] = -1  # must not corrupt the cache
        assert paper_example.subtree_sizes()[0] == paper_example.n


class TestPropertyInvariants:
    @given(task_trees())
    @settings(max_examples=60, deadline=None)
    def test_structure_invariants(self, tree):
        assert tree.subtree_sizes()[tree.root] == tree.n
        assert abs(tree.subtree_work()[tree.root] - tree.total_work()) < 1e-9
        assert tree.n_leaves() >= 1
        order = tree.postorder()
        assert sorted(order) == list(range(tree.n))
        assert order[-1] == tree.root

    @given(task_trees())
    @settings(max_examples=60, deadline=None)
    def test_critical_path_bounds(self, tree):
        cp = tree.critical_path()
        assert cp <= tree.total_work() + 1e-9
        assert cp >= tree.w.max() - 1e-9
