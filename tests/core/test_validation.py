"""Unit tests for schedule validation."""

import numpy as np
import pytest

from repro.core.schedule import Schedule
from repro.core.validation import InvalidScheduleError, is_valid, validate_schedule


def make(tree, start, proc, p):
    return Schedule(tree, np.asarray(start, float), np.asarray(proc, int), p)


class TestPrecedence:
    def test_valid_sequential(self, chain5):
        sch = Schedule.sequential(chain5, [4, 3, 2, 1, 0])
        validate_schedule(sch)  # no raise

    def test_child_after_parent_rejected(self, chain5):
        sch = Schedule.sequential(chain5, [4, 3, 2, 1, 0])
        bad = make(chain5, [0, 1, 2, 3, 4], [0] * 5, 1)  # root first
        assert is_valid(sch)
        with pytest.raises(InvalidScheduleError, match="precedence"):
            validate_schedule(bad)

    def test_parent_start_equal_child_end_ok(self, star5):
        start = [1.0, 0.0, 0.0, 0.0, 0.0]
        sch = make(star5, start, [0, 0, 1, 2, 3], 4)
        validate_schedule(sch)

    def test_overlap_child_parent_rejected(self, star5):
        start = [0.5, 0.0, 0.0, 0.0, 0.0]
        sch = make(star5, start, [0, 1, 2, 3, 0], 4)
        with pytest.raises(InvalidScheduleError, match="precedence"):
            validate_schedule(sch)


class TestResources:
    def test_processor_overlap_rejected(self, star5):
        start = [2.0, 0.0, 0.5, 1.0, 1.0]
        sch = make(star5, start, [0, 0, 0, 1, 1], 2)  # 1 and 2 overlap on P0
        with pytest.raises(InvalidScheduleError, match="overlap"):
            validate_schedule(sch)

    def test_processor_out_of_range_rejected(self, star5):
        start = [1.0, 0.0, 0.0, 0.0, 0.0]
        sch = make(star5, start, [0, 0, 1, 2, 5], 4)
        with pytest.raises(InvalidScheduleError, match="outside"):
            validate_schedule(sch)

    def test_negative_start_rejected(self, star5):
        start = [1.0, -0.5, 0.0, 0.0, 0.0]
        sch = make(star5, start, [0, 0, 1, 2, 3], 4)
        with pytest.raises(InvalidScheduleError, match="negative"):
            validate_schedule(sch)

    def test_tolerance(self, star5):
        start = [1.0, 1e-12, 0.0, 0.0, 0.0]
        sch = make(star5, start, [0, 0, 1, 2, 3], 4)
        validate_schedule(sch)  # within tol
