"""Unit tests for the unified scheduling engine primitives."""

import numpy as np
import pytest

from repro.core.engine import (
    EngineState,
    MemoryCapError,
    SchedulerEngine,
    lex_rank,
    rank_from_callable,
)
from repro.core.tree import TaskTree
from repro.core.validation import validate_schedule


class TestLexRank:
    def test_single_column(self):
        rank = lex_rank(np.asarray([3.0, 1.0, 2.0]))
        assert rank.tolist() == [2, 0, 1]

    def test_lexicographic_order(self):
        k0 = np.asarray([1, 0, 1, 0])
        k1 = np.asarray([5, 9, 4, 9])
        rank = lex_rank(k0, k1)
        # sorted tuples: (0,9,1) < (0,9,3) < (1,4,2) < (1,5,0)
        assert rank.tolist() == [3, 0, 2, 1]

    def test_index_breaks_full_ties(self):
        rank = lex_rank(np.zeros(4), np.zeros(4))
        assert rank.tolist() == [0, 1, 2, 3]

    def test_is_permutation(self):
        rng = np.random.default_rng(7)
        rank = lex_rank(rng.integers(0, 3, 50), rng.standard_normal(50))
        assert sorted(rank.tolist()) == list(range(50))

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            lex_rank()

    def test_matches_tuple_sort(self):
        rng = np.random.default_rng(11)
        k0 = rng.integers(-5, 5, 40)
        k1 = rng.integers(0, 2, 40).astype(np.float64)
        rank = lex_rank(k0, k1)
        by_tuple = sorted(range(40), key=lambda i: (k0[i], k1[i], i))
        assert [int(np.flatnonzero(rank == r)[0]) for r in range(40)] == by_tuple


class TestRankFromCallable:
    def test_reproduces_tuple_order(self, paper_example):
        depth = paper_example.depths()

        def priority(i):
            return (-int(depth[i]), i % 2)

        rank = rank_from_callable(paper_example, priority)
        order = sorted(
            range(paper_example.n), key=lambda i: (priority(i), i)
        )
        assert [order[r] for r in range(paper_example.n)] == [
            int(np.flatnonzero(rank == r)[0]) for r in range(paper_example.n)
        ]

    def test_variable_length_tuples(self, paper_example):
        """Legacy closures returned tuples of different lengths per node
        class (ParInnerFirst); the conversion must support that."""

        def priority(i):
            if paper_example.is_leaf(i):
                return (1, i)
            return (0,)

        rank = rank_from_callable(paper_example, priority)
        assert sorted(rank.tolist()) == list(range(paper_example.n))


class TestEngineConfig:
    def test_bad_p(self, star5):
        with pytest.raises(ValueError, match="positive"):
            SchedulerEngine(star5, 0, np.arange(5))

    def test_bad_mode(self, star5):
        with pytest.raises(ValueError, match="unknown mode"):
            SchedulerEngine(star5, 2, np.arange(5), cap=10.0, mode="yolo")

    def test_bad_rank_length(self, star5):
        with pytest.raises(ValueError, match="one entry per task"):
            SchedulerEngine(star5, 2, np.arange(4))

    def test_rank_must_be_permutation(self, star5):
        """Raw priority scores (duplicates / out of range) are rejected
        with a pointer to lex_rank instead of scheduling garbage."""
        with pytest.raises(ValueError, match="permutation"):
            SchedulerEngine(star5, 2, np.asarray([0, 1, 1, 2, 3]))
        with pytest.raises(ValueError, match="permutation"):
            SchedulerEngine(star5, 2, np.asarray([0, 1, 2, 3, 7]))
        with pytest.raises(ValueError, match="permutation"):
            SchedulerEngine(star5, 2, np.asarray([-1, 1, 2, 3, 4]))

    def test_bad_order_length(self, star5):
        with pytest.raises(ValueError, match="every task"):
            SchedulerEngine(star5, 2, np.arange(5), cap=10.0, order=np.arange(3))

    def test_strict_rank_must_follow_order(self, star5):
        # sigma wants leaf 4 first, but the rank array prefers leaf 1;
        # with several ready leaves the mismatch trips immediately.
        rank = np.asarray([4, 0, 1, 2, 3])
        order = np.asarray([4, 3, 2, 1, 0])
        with pytest.raises(ValueError, match="activation order"):
            SchedulerEngine(star5, 1, rank, cap=100.0, order=order).run()


class TestEngineRun:
    def test_state_exposed_after_run(self, star5):
        engine = SchedulerEngine(star5, 2, np.arange(5))
        schedule = engine.run()
        validate_schedule(schedule)
        assert isinstance(engine.state, EngineState)
        assert engine.state.started == 5
        assert engine.state.ready == [] and engine.state.running == []
        assert engine.state.now == schedule.makespan

    def test_rank_order_respected_serially(self):
        tree = TaskTree.from_parents([-1, 0, 0, 0], w=1.0, f=1.0)
        # leaves 1,2,3: rank demands 3 first, then 1, then 2
        rank = np.asarray([3, 1, 2, 0])
        schedule = SchedulerEngine(tree, 1, rank).run()
        assert schedule.start[3] < schedule.start[1] < schedule.start[2]

    def test_memory_cap_respected(self, star5):
        from repro.core.simulator import simulate
        from repro.sequential.postorder import optimal_postorder

        res = optimal_postorder(star5)
        rank = np.empty(5, dtype=np.int64)
        rank[res.order] = np.arange(5)
        schedule = SchedulerEngine(
            star5, 4, rank, cap=res.peak_memory, order=res.order
        ).run()
        assert simulate(schedule).peak_memory <= res.peak_memory + 1e-9

    def test_infeasible_cap_raises(self, star5):
        with pytest.raises(MemoryCapError, match="infeasible"):
            SchedulerEngine(star5, 2, np.arange(5), cap=0.5).run()
