"""Tests for schedule traces and utilization statistics."""

import json

import numpy as np
from hypothesis import given, settings

from repro.core.schedule import Schedule
from repro.core.simulator import simulate
from repro.core.trace import schedule_trace, trace_json, utilization
from repro.parallel import par_deepest_first
from tests.conftest import task_trees


class TestTrace:
    def test_event_count(self, paper_example):
        sch = Schedule.sequential(paper_example, paper_example.postorder())
        events = schedule_trace(sch)
        assert len(events) == 2 * paper_example.n
        assert sum(1 for e in events if e.kind == "start") == paper_example.n

    def test_time_ordered_ends_before_starts(self, star5):
        start = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        sch = Schedule(star5, start, np.array([0, 0, 1, 2, 3]), p=4)
        events = schedule_trace(sch)
        at_1 = [e for e in events if e.time == 1.0]
        kinds = [e.kind for e in at_1]
        assert kinds == sorted(kinds)  # "end" < "start" alphabetically

    def test_memory_levels_match_simulator(self, paper_example):
        sch = Schedule.sequential(paper_example, paper_example.postorder())
        sim = simulate(sch)
        for e in schedule_trace(sch):
            assert abs(e.memory - sim.memory_at(e.time)) < 1e-9

    def test_json_roundtrip(self, star5):
        sch = Schedule.sequential(star5, [1, 2, 3, 4, 0])
        data = json.loads(trace_json(sch))
        assert len(data) == 10
        assert {"time", "kind", "node", "proc", "memory"} <= set(data[0])


class TestUtilization:
    def test_sequential_single_processor(self, paper_example):
        sch = Schedule.sequential(paper_example, paper_example.postorder())
        stats = utilization(sch)
        assert stats.mean_utilization == 1.0
        assert stats.idle_time == 0.0

    def test_parallel_idle_accounting(self, star5):
        start = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        sch = Schedule(star5, start, np.array([0, 0, 1, 2, 3]), p=4)
        stats = utilization(sch)
        # makespan 2, total work 5, 4 procs: idle = 8 - 5 = 3
        assert stats.idle_time == 3.0
        assert abs(stats.mean_utilization - 5 / 8) < 1e-9

    @given(task_trees(min_nodes=2, max_nodes=30))
    @settings(max_examples=30, deadline=None)
    def test_conservation(self, tree):
        """busy + idle == p * makespan; mean utilization = W/(p Cmax)."""
        for p in (1, 3):
            sch = par_deepest_first(tree, p)
            stats = utilization(sch)
            assert abs(stats.busy.sum() - tree.total_work()) < 1e-9
            assert abs(
                stats.busy.sum() + stats.idle_time - p * sch.makespan
            ) < 1e-9
            assert abs(
                stats.mean_utilization - tree.total_work() / (p * sch.makespan)
            ) < 1e-9
