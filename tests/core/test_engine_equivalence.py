"""Golden equivalence: the unified engine reproduces the seed schedulers.

The refactor that introduced :mod:`repro.core.engine` replaced two
hand-rolled heapq event loops (``parallel/list_scheduling.py`` and
``parallel/memory_bounded.py``) and the per-node priority closures of
every list heuristic. This suite pins the refactor: the *seed*
implementations are embedded below verbatim, and for random trees
(n <= 200, p in {1, 2, 4, 8}) every registry algorithm must produce a
schedule with identical makespan and peak memory -- for the list-based
schedulers the start times and processor assignments must match bit for
bit.
"""

from __future__ import annotations

import heapq

import numpy as np
import pytest

from repro import registry
from repro.core.schedule import Schedule
from repro.core.simulator import simulate
from repro.core.tree import NO_PARENT
from repro.parallel.memory_bounded import MemoryCapError, memory_bounded_schedule
from repro.parallel.list_scheduling import postorder_ranks
from repro.sequential.postorder import optimal_postorder
from repro.workloads.synthetic import random_weighted_tree

PROCESSOR_COUNTS = (1, 2, 4, 8)


# ----------------------------------------------------------------------
# seed implementations (verbatim from the pre-refactor modules)
# ----------------------------------------------------------------------
def seed_list_schedule(tree, p, priority):
    if p < 1:
        raise ValueError("p must be positive")
    n = tree.n
    start = np.full(n, -1.0, dtype=np.float64)
    proc = np.full(n, -1, dtype=np.int64)
    pending_children = np.array([tree.degree(i) for i in range(n)], dtype=np.int64)

    ready = []
    for i in range(n):
        if pending_children[i] == 0:
            heapq.heappush(ready, (priority(i), i))

    free_procs = list(range(p - 1, -1, -1))
    events = []
    now = 0.0
    scheduled = 0
    while scheduled < n or events:
        while free_procs and ready:
            _, node = heapq.heappop(ready)
            q = free_procs.pop()
            start[node] = now
            proc[node] = q
            heapq.heappush(events, (now + float(tree.w[node]), node))
            scheduled += 1
        if not events:
            if scheduled < n:
                raise RuntimeError("deadlock: tasks left but no event pending")
            break
        now, node = heapq.heappop(events)
        finished = [node]
        while events and events[0][0] == now:
            finished.append(heapq.heappop(events)[1])
        for node in finished:
            free_procs.append(int(proc[node]))
            parent = int(tree.parent[node])
            if parent != NO_PARENT:
                pending_children[parent] -= 1
                if pending_children[parent] == 0:
                    heapq.heappush(ready, (priority(parent), parent))
    return Schedule(tree, start, proc, p)


def seed_memory_bounded_schedule(tree, p, cap, order=None, mode="strict"):
    if mode not in ("strict", "opportunistic"):
        raise ValueError(f"unknown mode {mode!r}")
    if p < 1:
        raise ValueError("p must be positive")
    if order is None:
        order = optimal_postorder(tree).order
    order = np.asarray(order, dtype=np.int64)
    n = tree.n
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)

    start = np.full(n, -1.0, dtype=np.float64)
    proc = np.full(n, -1, dtype=np.int64)
    pending_children = np.array([tree.degree(i) for i in range(n)], dtype=np.int64)
    alloc = tree.sizes + tree.f
    free_on_end = tree.sizes.copy()
    for i in range(n):
        for j in tree.children(i):
            free_on_end[i] += tree.f[j]

    ready = []
    for i in range(n):
        if pending_children[i] == 0:
            heapq.heappush(ready, (int(rank[i]), i))

    free_procs = list(range(p - 1, -1, -1))
    events = []
    mem = 0.0
    now = 0.0
    started = 0
    next_sigma = 0

    def try_start():
        nonlocal mem, started, next_sigma
        while free_procs and ready:
            if mode == "strict":
                node = int(order[next_sigma])
                if pending_children[node] > 0 or mem + alloc[node] > cap + 1e-9:
                    return
                popped = heapq.heappop(ready)
                assert popped[1] == node
            else:
                skipped = []
                node = -1
                while ready:
                    r, cand = heapq.heappop(ready)
                    if mem + alloc[cand] <= cap + 1e-9:
                        node = cand
                        break
                    skipped.append((r, cand))
                for item in skipped:
                    heapq.heappush(ready, item)
                if node < 0:
                    return
            q = free_procs.pop()
            start[node] = now
            proc[node] = q
            mem += float(alloc[node])
            heapq.heappush(events, (now + float(tree.w[node]), node))
            started += 1
            while next_sigma < n and start[int(order[next_sigma])] >= 0:
                next_sigma += 1

    try_start()
    while started < n or events:
        if not events:
            node = int(order[next_sigma])
            raise MemoryCapError(f"cap {cap:g} infeasible: task {node}")
        now, node = heapq.heappop(events)
        finished = [node]
        while events and events[0][0] == now:
            finished.append(heapq.heappop(events)[1])
        for node in finished:
            free_procs.append(int(proc[node]))
            mem -= float(free_on_end[node])
            parent = int(tree.parent[node])
            if parent != NO_PARENT:
                pending_children[parent] -= 1
                if pending_children[parent] == 0:
                    heapq.heappush(ready, (int(rank[parent]), parent))
        try_start()
    return Schedule(tree, start, proc, p)


# ----------------------------------------------------------------------
# seed priority closures (verbatim from the pre-refactor heuristics)
# ----------------------------------------------------------------------
def seed_par_inner_first(tree, p, order=None):
    ranks = postorder_ranks(tree, order)
    depth = tree.depths()

    def priority(i):
        if tree.is_leaf(i):
            return (1, int(ranks[i]), i)
        return (0, -int(depth[i]), int(ranks[i]))

    return seed_list_schedule(tree, p, priority)


def seed_par_deepest_first(tree, p, order=None):
    ranks = postorder_ranks(tree, order)
    wdepth = tree.weighted_depths()

    def priority(i):
        return (-float(wdepth[i]), 1 if tree.is_leaf(i) else 0, int(ranks[i]))

    return seed_list_schedule(tree, p, priority)


def seed_par_inner_first_naive_order(tree, p):
    return seed_par_inner_first(tree, p, tree.postorder())


def seed_par_hop_deepest_first(tree, p):
    """Hop-depth variant *with the intended leaf tie-break* (the seed's
    ``- (0 if leaf else 0)`` term was a no-op; the closure below encodes
    the fixed semantics the vectorized variant must reproduce)."""
    ranks = postorder_ranks(tree)
    depth = tree.depths()

    def priority(i):
        return (
            -int(depth[i]) - (0 if tree.is_leaf(i) else 1),
            1 if tree.is_leaf(i) else 0,
            int(ranks[i]),
        )

    return seed_list_schedule(tree, p, priority)


SEED_LIST_HEURISTICS = {
    "ParInnerFirst": seed_par_inner_first,
    "ParDeepestFirst": seed_par_deepest_first,
    "ParInnerFirst/naiveO": seed_par_inner_first_naive_order,
    "ParDeepestFirst/hops": seed_par_hop_deepest_first,
}


def random_trees():
    """A deterministic spread of tree shapes, n <= 200."""
    rng = np.random.default_rng(20130520)
    trees = []
    for n, bias in [(1, 0.0), (7, 0.0), (40, 0.0), (80, 4.0), (120, -4.0), (200, 0.0)]:
        trees.append(random_weighted_tree(n, rng, bias=bias))
    # zero execution files (Pebble-Game regime) and duplicate weights
    trees.append(random_weighted_tree(60, rng, max_w=2, max_f=1, max_size=0))
    # fractional durations: exercises the engine's float event-key path
    # (integral weights take an exact integer-encoded fast path)
    frac = random_weighted_tree(80, rng)
    trees.append(frac.with_weights(w=frac.w + rng.uniform(0.0, 1.0, frac.n)))
    return trees


@pytest.fixture(scope="module", params=range(8))
def tree(request):
    return random_trees()[request.param]


def assert_same_schedule(new: Schedule, ref: Schedule):
    assert np.array_equal(new.start, ref.start)
    assert np.array_equal(new.proc, ref.proc)
    assert new.p == ref.p


class TestListHeuristicEquivalence:
    @pytest.mark.parametrize("name", sorted(SEED_LIST_HEURISTICS))
    def test_bit_identical_schedules(self, tree, name):
        """Vectorized-rank heuristics equal the seed closure path exactly."""
        seed_fn = SEED_LIST_HEURISTICS[name]
        for p in PROCESSOR_COUNTS:
            assert_same_schedule(registry.run(name, tree, p), seed_fn(tree, p))


class TestMemoryBoundedEquivalence:
    @pytest.mark.parametrize("mode", ["strict", "opportunistic"])
    def test_bit_identical_schedules(self, tree, mode):
        mseq = optimal_postorder(tree).peak_memory
        for p in PROCESSOR_COUNTS:
            for factor in (1.0, 1.5, 3.0):
                cap = factor * mseq
                try:
                    ref = seed_memory_bounded_schedule(tree, p, cap, mode=mode)
                except MemoryCapError:
                    with pytest.raises(MemoryCapError):
                        memory_bounded_schedule(tree, p, cap, mode=mode)
                    continue
                assert_same_schedule(
                    memory_bounded_schedule(tree, p, cap, mode=mode), ref
                )


class TestFullRegistryEquivalence:
    def test_every_algorithm_matches_seed_measurements(self, tree):
        """Every registry algorithm yields the seed makespan and peak.

        List-based algorithms are checked against the embedded seed
        engine; the subtree-splitting and sequential algorithms were not
        refactored, so their own (unchanged) output is the reference --
        the check still guards the registry plumbing around them.
        """
        for name in registry.names():
            algo = registry.get(name)
            for p in PROCESSOR_COUNTS:
                got = simulate(registry.run(name, tree, p))
                if name in SEED_LIST_HEURISTICS:
                    ref = simulate(SEED_LIST_HEURISTICS[name](tree, p))
                elif name == "MemoryBounded":
                    cap = 2.0 * optimal_postorder(tree).peak_memory
                    ref = simulate(seed_memory_bounded_schedule(tree, p, cap))
                elif algo.kind == "sequential":
                    result = algo.fn(tree)
                    ref = simulate(Schedule.sequential(tree, result.order, p=p))
                    assert got.peak_memory == pytest.approx(result.peak_memory)
                else:
                    ref = simulate(algo.fn(tree, p))
                assert got.makespan == ref.makespan
                assert got.peak_memory == ref.peak_memory
