"""Command-line interface for regenerating the paper's tables and figures.

Examples
--------
::

   python -m repro.cli dataset --scale tiny
   python -m repro.cli algos
   python -m repro.cli run --algo ParDeepestFirst --scale small
   python -m repro.cli table1 --scale small --workers 4
   python -m repro.cli figure --which 6 --scale small
   python -m repro.cli theory
   python -m repro.cli memory-cap --scale tiny
   python -m repro.cli campaign --algos ParDeepestFirst,MemoryBounded \
       --procs 2,4,8 --caps 1.5,2.0 --resume out.jsonl --workers 4
   python -m repro.cli campaign --scale small --store columnar --resume out.store
   python -m repro.cli pack out.store out.jsonl
   python -m repro.cli merge all.store shard0.store shard1.store
   python -m repro.cli table1 --records out.store
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


class _Interrupted(Exception):
    """Raised by the campaign signal handlers (SIGINT/SIGTERM) so the
    run can shut its workers down cleanly and exit ``128 + signum``
    with a resume hint."""

    def __init__(self, signum: int) -> None:
        super().__init__(signum)
        self.signum = signum


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.workloads import build_dataset

    instances = build_dataset(scale=args.scale)
    print(f"{'tree':<28s} {'nodes':>7s} {'height':>7s} {'leaves':>7s} {'maxdeg':>7s}")
    for inst in instances:
        t = inst.tree
        print(
            f"{inst.name:<28s} {t.n:>7d} {t.height():>7d} "
            f"{t.n_leaves():>7d} {t.max_degree():>7d}"
        )
    print(f"total: {len(instances)} trees")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis import (
        compute_table1_stats,
        render_table1,
        run_experiments,
        save_records,
        table1_csv,
    )
    from repro.workloads import build_dataset

    if args.records:
        from repro.analysis import open_store

        records = open_store(args.records).columns(include_failed=False)
        print(
            f"loaded {len(records)} records from {args.records}", file=sys.stderr
        )
    else:
        instances = build_dataset(scale=args.scale)
        processor_counts = tuple(args.processors)
        print(
            f"running {len(instances)} trees x p in {processor_counts} "
            f"x 4 heuristics ...",
            file=sys.stderr,
        )
        records = run_experiments(
            instances,
            processor_counts,
            progress=args.verbose,
            workers=args.workers,
            shared_memory=args.shared_memory,
            backend=args.backend,
        )
    stats = compute_table1_stats(records)
    print(render_table1(stats))
    if args.output:
        if args.output.endswith(".json"):
            if not isinstance(records, list):
                records = records.to_records()
            save_records(records, args.output)
        else:
            with open(args.output, "w") as fh:
                fh.write(table1_csv(stats) + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.analysis import figure_csv, figure_data, render_figure, run_experiments
    from repro.workloads import build_dataset

    instances = build_dataset(scale=args.scale)
    records = run_experiments(
        instances,
        tuple(args.processors),
        workers=args.workers,
        shared_memory=args.shared_memory,
        backend=args.backend,
    )
    data = figure_data(records, args.which)
    titles = {
        6: "Figure 6: comparison to lower bounds",
        7: "Figure 7: comparison to ParSubtrees",
        8: "Figure 8: comparison to ParInnerFirst",
    }
    print(render_figure(data, title=titles[args.which]))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(figure_csv(data) + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core import simulate
    from repro.parallel import par_deepest_first, par_inner_first, par_subtrees
    from repro.pebble import (
        build_gadget,
        decide_gadget,
        deepest_first_memory_tree,
        fork_tree,
        inapprox_ratio_lower_bound,
        inapproximability_tree,
        inner_first_memory_tree,
        random_yes_instance,
    )
    from repro.sequential import liu_optimal_traversal, optimal_postorder

    print("== Theorem 1 / Figure 1: NP-completeness gadget ==")
    inst = random_yes_instance(2, 12, np.random.default_rng(0))
    g = build_gadget(inst)
    sch = decide_gadget(g)
    sim = simulate(sch)
    print(
        f"YES instance: makespan {sim.makespan:g} (bound {g.makespan_bound:g}), "
        f"peak {sim.peak_memory:g} (bound {g.memory_bound:g})"
    )
    print("== Theorem 2 / Figure 2: inapproximability ==")
    for n in (2, 3, 4):
        f2 = inapproximability_tree(n, n * n)
        liu = liu_optimal_traversal(f2.tree)
        lb = inapprox_ratio_lower_bound(n, n * n, alpha=2.0)
        print(
            f"n={n} delta={n * n}: M_opt={liu.peak_memory:g} "
            f"(paper {f2.optimal_peak_memory:g}), CP={f2.tree.critical_path():g} "
            f"(paper {f2.optimal_makespan:g}), memory-ratio LB(alpha=2)={lb:.2f}"
        )
    print("== Figure 3: ParSubtrees makespan worst case ==")
    for k in (4, 16, 64):
        p = 4
        t = fork_tree(p, k)
        sim = simulate(par_subtrees(t, p))
        print(
            f"p={p} k={k}: ParSubtrees {sim.makespan:g} "
            f"(paper p(k-1)+2 = {p * (k - 1) + 2}), optimal {k + 1}, "
            f"ratio {sim.makespan / (k + 1):.2f} -> p"
        )
    print("== Figure 4: ParInnerFirst memory blow-up ==")
    for k in (4, 8, 16):
        p = 4
        t = inner_first_memory_tree(p, k)
        seq = optimal_postorder(t).peak_memory
        sim = simulate(par_inner_first(t, p))
        print(
            f"p={p} k={k}: M_seq={seq:g} (paper p+1={p + 1}), "
            f"ParInnerFirst {sim.peak_memory:g} "
            f"(paper (k-1)(p-1)+1 = {(k - 1) * (p - 1) + 1})"
        )
    print("== Figure 5: ParDeepestFirst memory blow-up ==")
    for c in (4, 8, 16):
        t = deepest_first_memory_tree(c, 6)
        seq = optimal_postorder(t).peak_memory
        sim = simulate(par_deepest_first(t, c))
        print(
            f"chains={c}: M_seq={seq:g} (paper 3), "
            f"ParDeepestFirst {sim.peak_memory:g} ~ chains"
        )
    return 0


def _cmd_shapes(args: argparse.Namespace) -> int:
    from repro.analysis import render_shape_table, summarize_shapes
    from repro.workloads import build_dataset

    instances = build_dataset(scale=args.scale)
    print(f"data set: {len(instances)} assembly trees (scale {args.scale})")
    print(render_shape_table(summarize_shapes(instances)))
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    from repro.analysis import ParetoPoint, hypervolume, pareto_front
    from repro.core import memory_lower_bound, simulate
    from repro.parallel import HEURISTICS, memory_bounded_schedule
    from repro.workloads import build_dataset

    instances = build_dataset(scale=args.scale)[: args.limit]
    p = args.processors[0]
    for inst in instances:
        tree = inst.tree
        mseq = memory_lower_bound(tree)
        points = []
        for name, fn in HEURISTICS.items():
            r = simulate(fn(tree, p))
            points.append(ParetoPoint(r.makespan, r.peak_memory, name))
        for factor in (1.0, 1.5, 2.0, 3.0):
            sch = memory_bounded_schedule(tree, p, factor * mseq)
            r = simulate(sch)
            points.append(ParetoPoint(r.makespan, r.peak_memory, f"cap x{factor:g}"))
        front = pareto_front(points)
        ref = ParetoPoint(
            max(q.makespan for q in points) * 1.05,
            max(q.memory for q in points) * 1.05,
        )
        print(f"\n{inst.name} (p={p}): front of {len(points)} schedules, "
              f"hypervolume {hypervolume(points, ref):.4g}")
        for q in front:
            print(f"  makespan {q.makespan:>12.5g}  memory {q.memory:>12.5g}  {q.label}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import run_experiments
    from repro.analysis.report import build_report
    from repro.workloads import build_dataset

    instances = build_dataset(scale=args.scale)
    if args.records:
        from repro.analysis import open_store

        # columns straight from the store: every section (table 1,
        # groupby, figures) runs on the vectorised paths
        records = open_store(args.records).columns(include_failed=False)
    else:
        records = run_experiments(
            instances,
            tuple(args.processors),
            workers=args.workers,
            shared_memory=args.shared_memory,
            backend=args.backend,
        )
    text = build_report(records, instances)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_memory_cap(args: argparse.Namespace) -> int:
    from repro.core import memory_lower_bound, simulate
    from repro.parallel import memory_bounded_schedule
    from repro.workloads import build_dataset

    instances = build_dataset(scale=args.scale)[: args.limit]
    p = args.processors[0]
    print(f"{'tree':<28s} {'cap/Mseq':>9s} {'makespan':>12s} {'peak/Mseq':>10s}")
    for inst in instances:
        mseq = memory_lower_bound(inst.tree)
        for factor in (1.0, 1.5, 2.0, 4.0):
            sch = memory_bounded_schedule(
                inst.tree, p, cap=factor * mseq, backend=args.backend
            )
            sim = simulate(sch)
            print(
                f"{inst.name:<28s} {factor:>9.1f} {sim.makespan:>12.5g} "
                f"{sim.peak_memory / mseq:>10.3f}"
            )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import signal

    from repro import registry
    from repro.analysis.campaign import Campaign, run_campaign
    from repro.workloads import build_dataset

    if args.algos.strip().lower() == "all":
        algos = tuple(registry.names("parallel"))
    else:
        algos = tuple(a for a in args.algos.replace(",", " ").split() if a)
    procs = tuple(int(x) for x in args.procs.replace(",", " ").split())
    caps = tuple(float(x) for x in args.caps.replace(",", " ").split()) if args.caps else ()
    try:
        campaign = Campaign(
            algorithms=algos,
            processor_counts=procs,
            cap_factors=caps,
            backend=args.backend,
            validate=args.verbose,
        )
        # fail fast on unknown algorithm names, before building the data set
        campaign.scenarios_for("-")
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan:
        from repro.testing.faults import FaultPlan

        text = args.fault_plan
        if text.startswith("@"):
            with open(text[1:]) as fh:
                text = fh.read()
        try:
            fault_plan = FaultPlan.from_json(text)
        except ValueError as exc:
            print(f"--fault-plan: {exc}", file=sys.stderr)
            return 2
    supervise = bool(
        args.supervise
        or args.timeout is not None
        or fault_plan is not None
        or args.retry_failed
        or args.report
    )
    instances = build_dataset(scale=args.scale)
    if args.limit:
        instances = instances[: args.limit]
    per_tree = len(campaign.scenarios_for("-"))
    dir_store = args.store in ("columnar", "parquet")
    checkpoint = args.resume or (
        args.output
        if args.output and (args.output.endswith(".jsonl") or dir_store)
        else None
    )
    print(
        f"campaign: {len(instances)} trees x {per_tree} scenarios/tree = "
        f"{len(instances) * per_tree} records"
        + (f" -> {checkpoint}" + (" (resumable)" if args.resume else "") if checkpoint else "")
        + (" [supervised]" if supervise else ""),
        file=sys.stderr,
    )

    # Flush-and-exit on SIGINT/SIGTERM: the checkpoint is already
    # flushed per record, so the handlers only need to unwind the run
    # (terminating pool/supervised workers on the way) and say how to
    # resume. Exit code is the conventional 128 + signum.
    def _on_signal(signum, frame):
        raise _Interrupted(signum)

    previous = {
        s: signal.signal(s, _on_signal) for s in (signal.SIGINT, signal.SIGTERM)
    }
    reports: list = []
    try:
        records = run_campaign(
            instances,
            campaign,
            workers=args.workers,
            checkpoint=checkpoint,
            resume=bool(args.resume),
            store=args.store,
            shared_memory=args.shared_memory,
            shard_nodes=args.shard_nodes,
            progress=args.verbose,
            threads=args.threads,
            megabatch=not args.no_megabatch,
            supervise=supervise,
            retries=args.retries,
            timeout=args.timeout,
            fault_plan=fault_plan,
            retry_failed=args.retry_failed,
            report=reports,
        )
    except _Interrupted as exc:
        name = signal.Signals(exc.signum).name
        hint = (
            f"; resume with --resume {checkpoint}"
            if checkpoint
            else " (no checkpoint; records are lost -- pass --resume PATH next time)"
        )
        print(f"interrupted by {name}: checkpoint flushed{hint}", file=sys.stderr)
        return 128 + exc.signum
    finally:
        for s, handler in previous.items():
            signal.signal(s, handler)
    # columnar summary: one bincount per statistic instead of a
    # per-record python loop (matters at megabatch/million-record scale)
    import numpy as np

    from repro.analysis import RecordColumns
    from repro.analysis.metrics import _first_appearance_ids

    cols = RecordColumns.from_records(records)
    n_failed = int(np.count_nonzero(cols.failed))
    good = cols.measured()
    print(f"{'algorithm':<28s} {'records':>8s} {'mean Cmax/LB':>13s} {'mean mem/Mseq':>14s}")
    if len(good):
        ids, labels = _first_appearance_ids(good.heuristic)
        counts = np.bincount(ids, minlength=len(labels))
        cmax = np.bincount(ids, weights=good.makespan_ratio(), minlength=len(labels)) / counts
        mem = np.bincount(ids, weights=good.memory_ratio(), minlength=len(labels)) / counts
        for k, label in enumerate(labels):
            print(f"{str(label):<28s} {int(counts[k]):>8d} {cmax[k]:>13.3f} {mem[k]:>14.3f}")
    if n_failed:
        print(
            f"quarantined: {n_failed} scenario(s) "
            "(structured failed records in the checkpoint; re-run with "
            "--retry-failed to heal)",
            file=sys.stderr,
        )
    if args.report:
        for rep in reports:
            print(rep.summary())
    if args.output and args.output != checkpoint:
        from repro.analysis import save_records

        save_records(records, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from repro.analysis import pack_store

    n = pack_store(args.src, args.dst, backend=args.store)
    print(f"packed {n} records: {args.src} -> {args.dst}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.analysis import merge_stores

    n = merge_stores(args.dst, args.src, backend=args.store)
    print(f"merged {n} records from {len(args.src)} shard(s) -> {args.dst}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve

    return serve(
        args.root,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        job_timeout=args.job_timeout,
    )


def _cmd_algos(args: argparse.Namespace) -> int:
    from repro import registry

    print(f"{'name':<24s} {'kind':<11s} {'params':<28s} description")
    for algo in registry.algorithms():
        params = ", ".join(f"{k}={v}" for k, v in algo.params.items()) or "-"
        print(f"{algo.name:<24s} {algo.kind:<11s} {params:<28s} {algo.doc}")
    print(f"total: {len(registry.names())} algorithms")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro import registry
    from repro.core import memory_lower_bound, simulate
    from repro.core.bounds import makespan_lower_bound
    from repro.workloads import build_dataset

    try:
        algo = registry.get(args.algo)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    instances = build_dataset(scale=args.scale)
    if args.limit:
        instances = instances[: args.limit]
    # Sequential traversals run on one processor regardless of the sweep.
    counts = tuple(args.processors) if algo.kind == "parallel" else (1,)
    print(
        f"{'tree':<28s} {'p':>3s} {'makespan':>12s} {'Cmax/LB':>8s} "
        f"{'memory':>12s} {'mem/Mseq':>9s}"
    )
    # Forward the sweep backend only to algorithms that declare it (the
    # engine-based list schedulers); schedules are backend-independent.
    overrides = (
        {"backend": args.backend}
        if args.backend is not None and "backend" in algo.params
        else {}
    )
    for inst in instances:
        mseq = memory_lower_bound(inst.tree)
        for p in counts:
            sim = simulate(algo.run(inst.tree, p, **overrides), validate=args.verbose)
            cmax_lb = makespan_lower_bound(inst.tree, p)
            print(
                f"{inst.name:<28s} {p:>3d} {sim.makespan:>12.5g} "
                f"{sim.makespan / cmax_lb:>8.3f} {sim.peak_memory:>12.5g} "
                f"{sim.peak_memory / mseq:>9.3f}"
            )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.cli`` / the ``repro-trees`` script."""
    parser = argparse.ArgumentParser(
        prog="repro-trees",
        description="Reproduce 'Scheduling tree-shaped task graphs to "
        "minimize memory and makespan' (IPDPS 2013).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--scale", default="small", choices=("tiny", "small", "medium", "large")
        )
        sp.add_argument(
            "--processors",
            type=int,
            nargs="+",
            default=[2, 4, 8, 16, 32],
            help="processor counts (paper: 2 4 8 16 32)",
        )
        sp.add_argument("--output", default=None, help="write CSV/JSON here")
        sp.add_argument(
            "--workers",
            type=int,
            default=1,
            help="multiprocessing pool size for the experiment sweep",
        )
        sp.add_argument(
            "--shared-memory",
            action="store_true",
            help="ship tree arrays to workers via multiprocessing.shared_memory "
            "(zero-copy attach instead of per-tree pickling)",
        )
        sp.add_argument(
            "--backend",
            default=None,
            choices=("auto", "python", "numba", "c", "kernel"),
            help="event-sweep backend for the engine-based schedulers "
            "(default: auto = fastest available; all backends produce "
            "bit-identical schedules)",
        )
        sp.add_argument("--verbose", action="store_true")

    sp = sub.add_parser("dataset", help="list the assembly-tree data set")
    add_common(sp)
    sp.set_defaults(func=_cmd_dataset)

    sp = sub.add_parser("algos", help="list the algorithm registry")
    sp.set_defaults(func=_cmd_algos)

    sp = sub.add_parser("run", help="run any registry algorithm on the data set")
    add_common(sp)
    sp.add_argument("--algo", required=True, help="registry name (see `algos`)")
    sp.add_argument("--limit", type=int, default=0, help="number of trees (0 = all)")
    sp.set_defaults(func=_cmd_run)

    sp = sub.add_parser(
        "campaign",
        help="run a declarative (algorithms x p x caps) grid, resumable",
    )
    add_common(sp)
    sp.add_argument(
        "--algos",
        default="all",
        help="comma-separated registry names, or 'all' for every parallel "
        "algorithm (default)",
    )
    sp.add_argument(
        "--procs",
        default="2,4,8,16,32",
        help="comma-separated processor counts (default: the paper's five)",
    )
    sp.add_argument(
        "--caps",
        default="",
        help="comma-separated memory-cap factors (x the sequential optimal "
        "peak), applied to algorithms with a cap_factor parameter",
    )
    sp.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="checkpoint path (.jsonl file or columnar store directory): "
        "records stream here and a re-run of the same command continues "
        "where the checkpoint stops (byte-identical result)",
    )
    sp.add_argument(
        "--store",
        default="auto",
        choices=("auto", "jsonl", "columnar", "parquet"),
        help="checkpoint backend for --resume/--output: jsonl streams one "
        "line per record, columnar seals numpy .npz segments behind a "
        "manifest (same records, ~10x faster million-record analysis); "
        "auto infers from the path (default)",
    )
    sp.add_argument(
        "--shard-nodes",
        type=int,
        default=None,
        help="shard the scenario grid of trees with at least this many nodes "
        "across the worker pool",
    )
    sp.add_argument(
        "--threads",
        type=int,
        default=None,
        metavar="N",
        help="worker threads of each megabatch kernel call (default: "
        "REPRO_NUM_THREADS or the usable core count; never affects results)",
    )
    sp.add_argument(
        "--no-megabatch",
        action="store_true",
        help="run scenarios one kernel call each instead of one batched "
        "call per tree (byte-identical records, for comparison/debugging)",
    )
    sp.add_argument("--limit", type=int, default=0, help="number of trees (0 = all)")
    sp.add_argument(
        "--supervise",
        action="store_true",
        help="run under the fault-tolerant worker pool: dedicated worker "
        "processes with crash/hang detection, bounded retries with "
        "exponential backoff, quarantine of poison scenarios and "
        "per-worker backend degradation (byte-identical records)",
    )
    sp.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="supervised mode: re-tries per scenario after an environmental "
        "failure before it is quarantined (default: 2)",
    )
    sp.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="supervised mode: per-scenario wall-clock budget; a worker "
        "exceeding it is killed and the scenario retried (implies "
        "--supervise)",
    )
    sp.add_argument(
        "--retry-failed",
        action="store_true",
        help="on --resume, recompute quarantined scenarios instead of "
        "skipping them (truncates the checkpoint at the first failed "
        "record; implies --supervise)",
    )
    sp.add_argument(
        "--report",
        action="store_true",
        help="print the supervised run report (per-scenario attempts, "
        "backend fallbacks, respawns; implies --supervise)",
    )
    sp.add_argument("--fault-plan", default=None, help=argparse.SUPPRESS)
    sp.set_defaults(func=_cmd_campaign)

    sp = sub.add_parser("table1", help="regenerate Table 1")
    add_common(sp)
    sp.add_argument(
        "--records",
        default=None,
        metavar="PATH",
        help="consume an existing campaign checkpoint (.jsonl or columnar "
        "store directory) instead of re-running the experiments",
    )
    sp.set_defaults(func=_cmd_table1)

    sp = sub.add_parser("figure", help="regenerate Figure 6, 7 or 8")
    add_common(sp)
    sp.add_argument("--which", type=int, choices=(6, 7, 8), required=True)
    sp.set_defaults(func=_cmd_figure)

    sp = sub.add_parser("theory", help="verify Figures 1-5 / Theorems 1-2")
    add_common(sp)
    sp.set_defaults(func=_cmd_theory)

    sp = sub.add_parser("memory-cap", help="memory-capped scheduling extension")
    add_common(sp)
    sp.add_argument("--limit", type=int, default=4, help="number of trees")
    sp.set_defaults(func=_cmd_memory_cap)

    sp = sub.add_parser("shapes", help="data-set shape statistics vs the paper")
    add_common(sp)
    sp.set_defaults(func=_cmd_shapes)

    sp = sub.add_parser("pareto", help="per-tree Pareto fronts over all schedulers")
    add_common(sp)
    sp.add_argument("--limit", type=int, default=3, help="number of trees")
    sp.set_defaults(func=_cmd_pareto)

    sp = sub.add_parser("report", help="generate the EXPERIMENTS.md body")
    add_common(sp)
    sp.add_argument(
        "--records",
        default=None,
        metavar="PATH",
        help="consume an existing campaign checkpoint (.jsonl or columnar "
        "store directory) instead of re-running the experiments",
    )
    sp.set_defaults(func=_cmd_report)

    sp = sub.add_parser(
        "pack",
        help="convert a record store between backends (jsonl <-> columnar)",
    )
    sp.add_argument("src", help="source store (.jsonl file or store directory)")
    sp.add_argument("dst", help="destination store path")
    sp.add_argument(
        "--store",
        default="auto",
        choices=("auto", "jsonl", "columnar", "parquet"),
        help="destination backend (auto: jsonl for .jsonl paths, else columnar)",
    )
    sp.set_defaults(func=_cmd_pack)

    sp = sub.add_parser(
        "merge",
        help="merge campaign record shards into one store",
    )
    sp.add_argument("dst", help="destination store path")
    sp.add_argument("src", nargs="+", help="source shards, merged in order")
    sp.add_argument(
        "--store",
        default="auto",
        choices=("auto", "jsonl", "columnar", "parquet"),
        help="destination backend (auto: jsonl for .jsonl paths, else columnar)",
    )
    sp.set_defaults(func=_cmd_merge)

    sp = sub.add_parser(
        "serve",
        help="run the durable scheduling service (JSON job API over HTTP)",
        description=(
            "Expose the campaign runtime as a crash-safe job service: "
            "POST /jobs submits a grid, GET /jobs/<id> polls it, "
            "GET /jobs/<id>/records streams the checkpoint. Jobs are "
            "journaled on disk; after a crash or SIGKILL, restarting "
            "the server resumes every interrupted job byte-identically. "
            "SIGTERM drains gracefully (stop accepting, checkpoint "
            "in-flight work, exit 0)."
        ),
    )
    sp.add_argument("root", help="service state directory (jobs journal)")
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument(
        "--port", type=int, default=8042,
        help="TCP port; 0 picks a free one (printed as JSON on stdout)",
    )
    sp.add_argument(
        "--workers", type=int, default=1,
        help="supervised pool size shared by all jobs (default 1)",
    )
    sp.add_argument(
        "--queue-depth", type=int, default=16,
        help="max queued jobs before POST /jobs answers 429 (default 16)",
    )
    sp.add_argument(
        "--job-timeout", type=float, default=None,
        help="per-job wall-clock budget in seconds (default: none)",
    )
    sp.set_defaults(func=_cmd_serve)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
