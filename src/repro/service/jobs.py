"""The on-disk job journal: crash-safe state, idempotent creation.

Layout (everything under one root directory)::

    <root>/jobs/<job-id>/
        spec.json        # canonical job spec, written once at creation
        state.json       # the state machine, replaced atomically
        records.jsonl    # the campaign checkpoint (flushed per record)

Durability contract
-------------------
* **Creation is atomic and idempotent.** The job directory is staged
  under a temp name and ``os.rename``-ed into place; the id is the
  spec's content hash, so a retried ``POST`` of the same work finds
  the directory already there (the rename fails with
  ``EEXIST``/``ENOTEMPTY``) and simply adopts the existing job.
* **State transitions are atomic.** ``state.json`` is written to a
  temp file, fsynced, ``os.replace``-d over the old one, and the
  directory entry fsynced -- a crash leaves either the old state or
  the new one, never a torn file.
* **Records are the campaign checkpoint.** ``records.jsonl`` follows
  the repo-wide resume contract (per-record flush, torn final line =
  crash residue); a job found ``running`` at startup was interrupted
  by a crash and is flipped back to ``queued`` -- re-running it
  resumes from the checkpoint and finishes the file byte-identical to
  an uninterrupted run.

The state machine::

    queued -> running -> done
                      -> failed
    queued/running -> cancelled
    running -> queued          (crash recovery, graceful drain)
    failed/cancelled -> queued (explicit resubmission)
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from .payload import canonical_spec, job_key

__all__ = ["Job", "JobStore", "TransitionError", "STATES"]

STATES = ("queued", "running", "done", "failed", "cancelled")

_ALLOWED = {
    "queued": {"running", "cancelled"},
    "running": {"done", "failed", "cancelled", "queued"},
    "done": set(),
    "failed": {"queued"},
    "cancelled": {"queued"},
}


class TransitionError(RuntimeError):
    """An illegal job state transition (e.g. cancelling a done job)."""


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_atomic(path: str, payload: bytes) -> None:
    d = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=d, prefix=".state-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(d)


@dataclass
class Job:
    """One journaled job (a snapshot; re-read for fresh state)."""

    id: str
    path: str
    state: str
    created: float
    updated: float
    error: str = ""
    detail: dict = field(default_factory=dict)

    @property
    def spec_path(self) -> str:
        return os.path.join(self.path, "spec.json")

    @property
    def records_path(self) -> str:
        return os.path.join(self.path, "records.jsonl")

    def spec(self) -> dict:
        with open(self.spec_path) as fh:
            return json.load(fh)

    def record_count(self) -> int:
        """Complete (newline-terminated) records on disk right now."""
        try:
            with open(self.records_path, "rb") as fh:
                return fh.read().count(b"\n")
        except FileNotFoundError:
            return 0

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "state": self.state,
            "created": self.created,
            "updated": self.updated,
            "error": self.error,
            "records": self.record_count(),
            **self.detail,
        }


class JobStore:
    """The job directory tree under ``<root>/jobs``."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)

    # -- creation -------------------------------------------------------
    def create(self, spec: Any) -> tuple[Job, bool]:
        """Journal a new job for ``spec``; returns ``(job, created)``.

        Idempotent: the id is the spec's content hash, and a lost-race
        or retried creation adopts the existing directory.
        """
        spec = canonical_spec(spec)
        jid = job_key(spec)
        path = os.path.join(self.jobs_dir, jid)
        if not os.path.isdir(path):
            stage = tempfile.mkdtemp(dir=self.jobs_dir, prefix=".new-")
            try:
                with open(os.path.join(stage, "spec.json"), "w") as fh:
                    json.dump(spec, fh, sort_keys=True, separators=(",", ":"))
                    fh.flush()
                    os.fsync(fh.fileno())
                now = time.time()
                _write_atomic(
                    os.path.join(stage, "state.json"),
                    json.dumps(
                        {"state": "queued", "created": now, "updated": now,
                         "error": "", "detail": {}}
                    ).encode(),
                )
                try:
                    os.rename(stage, path)  # atomic publish
                    _fsync_dir(self.jobs_dir)
                    return self.get(jid), True
                except OSError as exc:
                    if exc.errno not in (errno.EEXIST, errno.ENOTEMPTY):
                        raise
                    # lost the creation race: adopt the winner below
            finally:
                if os.path.isdir(stage):
                    for name in os.listdir(stage):
                        os.unlink(os.path.join(stage, name))
                    os.rmdir(stage)
        return self.get(jid), False

    # -- lookup ---------------------------------------------------------
    def get(self, jid: str) -> Job:
        path = os.path.join(self.jobs_dir, jid)
        state_path = os.path.join(path, "state.json")
        with open(state_path) as fh:  # FileNotFoundError -> 404 upstream
            st = json.load(fh)
        return Job(
            id=jid,
            path=path,
            state=st["state"],
            created=st["created"],
            updated=st["updated"],
            error=st.get("error", ""),
            detail=st.get("detail", {}),
        )

    def ids(self) -> list[str]:
        return sorted(
            d for d in os.listdir(self.jobs_dir)
            if not d.startswith(".")
            and os.path.isfile(os.path.join(self.jobs_dir, d, "state.json"))
        )

    def jobs(self) -> list[Job]:
        return [self.get(jid) for jid in self.ids()]

    # -- the state machine ----------------------------------------------
    def transition(
        self,
        jid: str,
        to: str,
        *,
        error: str = "",
        detail: dict | None = None,
        expect: str | None = None,
    ) -> Job:
        """Atomically move job ``jid`` to state ``to``.

        ``expect`` pins the current state (a mismatch raises
        :class:`TransitionError`, e.g. a cancel racing a completion);
        without it any transition legal from the current state is
        applied.
        """
        if to not in STATES:
            raise TransitionError(f"unknown state {to!r}")
        job = self.get(jid)
        if expect is not None and job.state != expect:
            raise TransitionError(
                f"job {jid} is {job.state}, expected {expect}"
            )
        if to != job.state and to not in _ALLOWED[job.state]:
            raise TransitionError(f"job {jid}: illegal {job.state} -> {to}")
        st = {
            "state": to,
            "created": job.created,
            "updated": time.time(),
            "error": error,
            "detail": detail if detail is not None else job.detail,
        }
        _write_atomic(
            os.path.join(job.path, "state.json"), json.dumps(st).encode()
        )
        return self.get(jid)

    # -- crash recovery -------------------------------------------------
    def recover(self) -> list[Job]:
        """Startup sweep: jobs left ``running`` by a crashed server are
        flipped back to ``queued``; returns every queued job in
        submission order (creation time, then id) for re-enqueueing."""
        queued: list[Job] = []
        for jid in self.ids():
            job = self.get(jid)
            if job.state == "running":
                job = self.transition(
                    jid, "queued",
                    error="",
                    detail={**job.detail, "recovered": True},
                )
            if job.state == "queued":
                queued.append(job)
        queued.sort(key=lambda j: (j.created, j.id))
        return queued
