"""A stdlib client for the scheduling service (plus a tiny CLI).

:class:`ServiceClient` wraps the JSON API with :mod:`urllib.request`
-- no dependencies, importable anywhere the package is. The module is
runnable (``python -m repro.service.client``) so shell scripts and the
CI smoke drill can submit, wait and fetch without writing Python::

    python -m repro.service.client spec  --out spec.json --scale tiny
    python -m repro.service.client submit spec.json --base http://...
    python -m repro.service.client wait <job-id>  --timeout 300
    python -m repro.service.client fetch <job-id> --out records.jsonl
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

__all__ = ["ServiceClient", "ServiceError", "main"]


class ServiceError(RuntimeError):
    """A non-2xx response; carries the HTTP status and decoded body."""

    def __init__(self, status: int, body: Any) -> None:
        detail = body.get("error") if isinstance(body, dict) else body
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.body = body


class ServiceClient:
    """Thin JSON-over-HTTP client; one instance per server."""

    def __init__(self, base: str, timeout: float = 30.0) -> None:
        self.base = base.rstrip("/")
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Any = None, *, raw: bool = False
    ):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                body = resp.read()
                status = resp.status
        except urllib.error.HTTPError as exc:
            body = exc.read()
            status = exc.code
        if raw and 200 <= status < 300:
            return body
        try:
            decoded = json.loads(body) if body else {}
        except json.JSONDecodeError:
            decoded = body.decode(errors="replace")
        if status >= 400:
            raise ServiceError(status, decoded)
        return decoded

    # -- the API --------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def ready(self) -> dict:
        return self._request("GET", "/readyz")

    def submit(self, spec: dict) -> dict:
        """POST the job; retries transparently on 429 backpressure."""
        while True:
            try:
                return self._request("POST", "/jobs", spec)
            except ServiceError as exc:
                if exc.status != 429:
                    raise
                hint = 1.0
                if isinstance(exc.body, dict):
                    hint = float(exc.body.get("retry_after", 1.0))
                time.sleep(hint)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.25
    ) -> dict:
        """Poll until the job settles (done/failed/cancelled)."""
        deadline = time.monotonic() + timeout
        while True:
            st = self.status(job_id)
            if st["state"] in ("done", "failed", "cancelled"):
                return st
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {st['state']} after {timeout:g}s"
                )
            time.sleep(poll)

    def fetch_records(self, job_id: str) -> bytes:
        """The job's record stream as raw JSONL bytes (complete lines
        only -- byte-comparable against a local campaign checkpoint)."""
        return self._request("GET", f"/jobs/{job_id}/records", raw=True)


# ----------------------------------------------------------------------
# CLI for shell scripts and the CI smoke drill
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    import argparse
    import sys

    ap = argparse.ArgumentParser(
        prog="python -m repro.service.client",
        description="talk to a running `repro serve`",
    )
    ap.add_argument("--base", default="http://127.0.0.1:8042",
                    help="server base URL (default %(default)s)")
    sub = ap.add_subparsers(dest="cmd", required=True)

    sp = sub.add_parser("spec", help="write a demo job spec (synthetic dataset)")
    sp.add_argument("--out", required=True)
    sp.add_argument("--scale", default="tiny")
    sp.add_argument("--limit", type=int, default=None)
    sp.add_argument("--algorithms", default="ParSubtrees,ParDeepestFirst")
    sp.add_argument("--procs", default="2,4")
    sp.add_argument("--no-supervise", action="store_true")

    sb = sub.add_parser("submit", help="POST a spec file; prints the job id")
    sb.add_argument("spec")
    sb.add_argument("--wait", action="store_true")
    sb.add_argument("--timeout", type=float, default=300.0)

    for name, hlp in (
        ("status", "print one job's state"),
        ("wait", "block until a job settles"),
        ("cancel", "cancel a queued or running job"),
    ):
        p = sub.add_parser(name, help=hlp)
        p.add_argument("job_id")
        if name == "wait":
            p.add_argument("--timeout", type=float, default=300.0)

    fp = sub.add_parser("fetch", help="download a job's records.jsonl")
    fp.add_argument("job_id")
    fp.add_argument("--out", required=True)

    sub.add_parser("health", help="GET /healthz")
    sub.add_parser("ready", help="GET /readyz")

    args = ap.parse_args(argv)
    client = ServiceClient(args.base)

    if args.cmd == "spec":
        from .payload import spec_from_dataset

        spec = spec_from_dataset(
            scale=args.scale,
            limit=args.limit,
            algorithms=[a for a in args.algorithms.split(",") if a],
            processor_counts=[int(p) for p in args.procs.split(",") if p],
            supervise=not args.no_supervise,
        )
        with open(args.out, "w") as fh:
            json.dump(spec, fh)
        print(f"wrote {args.out} ({len(spec['trees'])} tree(s))")
        return 0
    if args.cmd == "submit":
        with open(args.spec) as fh:
            spec = json.load(fh)
        job = client.submit(spec)
        if args.wait:
            job = client.wait(job["id"], timeout=args.timeout)
        print(json.dumps(job))
        return 0 if job.get("state") != "failed" else 1
    if args.cmd == "status":
        print(json.dumps(client.status(args.job_id)))
        return 0
    if args.cmd == "wait":
        st = client.wait(args.job_id, timeout=args.timeout)
        print(json.dumps(st))
        return 0 if st["state"] == "done" else 1
    if args.cmd == "cancel":
        print(json.dumps(client.cancel(args.job_id)))
        return 0
    if args.cmd == "fetch":
        data = client.fetch_records(args.job_id)
        with open(args.out, "wb") as fh:
            fh.write(data)
        lines = data.count(bytes((10,)))
        print(f"wrote {args.out} ({lines} record(s))")
        return 0
    if args.cmd == "health":
        print(json.dumps(client.health()))
        return 0
    if args.cmd == "ready":
        try:
            print(json.dumps(client.ready()))
            return 0
        except ServiceError as exc:
            print(json.dumps(exc.body), file=sys.stderr)
            return 1
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
