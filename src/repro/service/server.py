"""The scheduling service: job queue, executor, and HTTP front ends.

Architecture
------------
:class:`SchedulerService` owns the durable pieces -- the
:class:`~repro.service.jobs.JobStore` journal, a bounded admission
queue, one executor thread, a persistent
:class:`~repro.analysis.supervisor.SupervisorPool` for supervised jobs
and a process-wide :class:`PreparedLRU` for in-process jobs (each
sweep leases its own mutation scratch row, so concurrent use of one
cached tree is safe). HTTP is a thin shell: every route reduces to
:func:`dispatch`, which both the stdlib :mod:`http.server` handler and
the ASGI adapter (:func:`build_asgi`, for ``uvicorn`` via the
``serve`` extra) call -- the wire behaviour is identical.

Crash safety
------------
Submission journals the job *before* the HTTP response; execution
checkpoints every record through the campaign resume contract. A
``kill -9`` therefore loses at most the torn final line of a record
file: on restart :meth:`SchedulerService.start` flips interrupted jobs
back to ``queued`` and re-runs them with ``resume=True``, producing a
record stream byte-identical to an uninterrupted run (pinned by the
service test suite and the CI smoke drill).

Backpressure and drain
----------------------
``POST /jobs`` answers ``429`` with a ``Retry-After`` hint once
``queue_depth`` jobs are waiting, and ``503`` once draining. On
``SIGTERM`` the server stops accepting, aborts the in-flight campaign
between scenarios (its records are already checkpointed; the job goes
back to ``queued`` for the next server), closes the pool and exits 0.
"""

from __future__ import annotations

import json
import multiprocessing.util
import os
import re
import signal
import threading
import time
from collections import OrderedDict, deque
from hashlib import sha256
from typing import Any

from repro.analysis.campaign import run_campaign
from repro.analysis.supervisor import CampaignAborted, SupervisorPool
from repro.core.prepared import PreparedTree

from . import payload as payload_mod
from .jobs import JobStore, TransitionError
from .payload import SpecError

__all__ = ["PreparedLRU", "SchedulerService", "build_asgi", "dispatch", "serve"]


class PreparedLRU:
    """A process-wide ``tree bytes -> PreparedTree`` cache.

    Keyed by the content of the tree's four defining arrays, so equal
    trees posted by different jobs share one preparation (CSR counts,
    optimal traversal, rank permutations). Safe under concurrency: a
    PreparedTree is immutable apart from its pending scratch, and
    every sweep leases a private scratch row.
    """

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = max(1, capacity)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, PreparedTree]" = OrderedDict()

    @staticmethod
    def key_of(tree) -> str:
        h = sha256()
        for col in (tree.parent, tree.w, tree.f, tree.sizes):
            h.update(col.tobytes())
        return h.hexdigest()

    def prepare(self, inst) -> PreparedTree:
        """The ``prepare=`` hook of :func:`run_campaign`."""
        key = self.key_of(inst.tree)
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return hit
            self.misses += 1
        prepared = PreparedTree(inst.tree)
        with self._lock:
            self._entries[key] = prepared
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return prepared

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }


class SchedulerService:
    """The durable job runner behind every HTTP front end."""

    def __init__(
        self,
        root: str,
        *,
        workers: int = 1,
        queue_depth: int = 16,
        job_timeout: float | None = None,
        retry_after: float = 2.0,
        prepared_capacity: int = 32,
    ) -> None:
        self.jobs = JobStore(root)
        self.workers = max(1, workers)
        self.queue_depth = max(1, queue_depth)
        self.job_timeout = job_timeout
        self.retry_after = retry_after
        self.prepared = PreparedLRU(prepared_capacity)
        self.started = time.time()
        self.draining = False
        self._lock = threading.Lock()
        self._queue: deque[str] = deque()
        self._wakeup = threading.Condition(self._lock)
        self._aborts: dict[str, threading.Event] = {}
        self._cancelled: set[str] = set()
        self._running: str | None = None
        self._done_jobs = 0
        self._pool: SupervisorPool | None = None
        self._executor: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> list[str]:
        """Recover interrupted jobs, start the executor; returns the
        ids re-enqueued from the journal (crash/drain leftovers)."""
        recovered = [job.id for job in self.jobs.recover()]
        with self._lock:
            self._queue.extend(recovered)
        self._executor = threading.Thread(
            target=self._executor_main, name="repro-serve-executor", daemon=True
        )
        self._executor.start()
        return recovered

    def drain(self, timeout: float = 30.0) -> None:
        """Stop accepting, abort the in-flight job between scenarios
        (checkpointed; it re-queues), and join the executor."""
        with self._lock:
            self.draining = True
            for ev in self._aborts.values():
                ev.set()
            self._wakeup.notify_all()
        if self._executor is not None:
            self._executor.join(timeout=timeout)
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # -- submission / queries -------------------------------------------
    def submit(self, spec: Any) -> tuple[int, dict]:
        """Journal + enqueue; returns ``(http status, body)``."""
        if self.draining:
            return 503, {"error": "server is draining"}
        with self._lock:
            depth = len(self._queue)
            if depth >= self.queue_depth:
                return 429, {
                    "error": f"queue full ({depth} job(s) waiting)",
                    "retry_after": self.retry_after,
                }
        try:
            job, created = self.jobs.create(spec)
        except SpecError as exc:
            return 400, {"error": str(exc)}
        with self._lock:
            if not created and job.state in ("queued", "running", "done"):
                # idempotent retry: pending or already finished
                return 200, job.to_dict()
            if job.state in ("failed", "cancelled"):
                # explicit resubmission: requeue, resume from checkpoint
                job = self.jobs.transition(job.id, "queued")
                self._cancelled.discard(job.id)
            if job.id not in self._queue:
                self._queue.append(job.id)
            self._wakeup.notify_all()
        return (201 if created else 200), job.to_dict()

    def status(self, jid: str) -> tuple[int, dict]:
        try:
            return 200, self.jobs.get(jid).to_dict()
        except FileNotFoundError:
            return 404, {"error": f"no such job {jid!r}"}

    def listing(self) -> tuple[int, dict]:
        return 200, {"jobs": [j.to_dict() for j in self.jobs.jobs()]}

    def cancel(self, jid: str) -> tuple[int, dict]:
        try:
            job = self.jobs.get(jid)
        except FileNotFoundError:
            return 404, {"error": f"no such job {jid!r}"}
        with self._lock:
            if job.state == "queued":
                try:
                    job = self.jobs.transition(jid, "cancelled", expect="queued")
                except TransitionError:
                    job = self.jobs.get(jid)  # raced the executor
                else:
                    self._cancelled.add(jid)
                    if jid in self._queue:
                        self._queue.remove(jid)
                    return 200, job.to_dict()
            if job.state == "running":
                self._cancelled.add(jid)
                ev = self._aborts.get(jid)
                if ev is not None:
                    ev.set()
                return 202, {**job.to_dict(), "cancelling": True}
        if job.state == "cancelled":
            return 200, job.to_dict()
        return 409, {
            "error": f"job {jid} is {job.state}: nothing to cancel",
            **job.to_dict(),
        }

    def health(self) -> tuple[int, dict]:
        with self._lock:
            queued = len(self._queue)
            running = self._running
        return 200, {
            "ok": True,
            "uptime": time.time() - self.started,
            "queued": queued,
            "running": running,
            "completed": self._done_jobs,
            "draining": self.draining,
            "workers": self.workers,
            "prepared_cache": self.prepared.stats(),
        }

    def ready(self) -> tuple[int, dict]:
        if self.draining:
            return 503, {"ready": False, "reason": "draining"}
        try:
            from repro.core.engine import probe_backend

            chosen, skipped = probe_backend()  # memoised per process
        except Exception as exc:
            return 503, {"ready": False, "reason": f"no usable backend: {exc}"}
        return 200, {
            "ready": True,
            "backend": chosen,
            "skipped": [list(s) for s in skipped],
        }

    def records_file(self, jid: str) -> tuple[int, Any]:
        """``(200, (path, length))`` with length clamped to the last
        complete line, or ``(404, body)``."""
        try:
            job = self.jobs.get(jid)
        except FileNotFoundError:
            return 404, {"error": f"no such job {jid!r}"}
        path = job.records_path
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return 200, (path, 0)
        # serve complete records only: crash residue never leaves disk
        return 200, (path, data.rfind(b"\n") + 1)

    # -- execution ------------------------------------------------------
    def _pool_for(self) -> SupervisorPool:
        if self._pool is None:
            self._pool = SupervisorPool(workers=self.workers)
        return self._pool

    def _executor_main(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self.draining:
                    self._wakeup.wait()
                if self.draining:
                    return
                jid = self._queue.popleft()
                if jid in self._cancelled:
                    continue
                abort = threading.Event()
                self._aborts[jid] = abort
                self._running = jid
            try:
                self._run_job(jid, abort)
            finally:
                with self._lock:
                    self._aborts.pop(jid, None)
                    self._cancelled.discard(jid)
                    self._running = None

    def _run_job(self, jid: str, abort: threading.Event) -> None:
        try:
            job = self.jobs.transition(jid, "running", expect="queued")
        except TransitionError:
            return  # cancelled (or otherwise settled) while waiting
        spec = job.spec()
        cfg = payload_mod.run_config(spec)
        timer: threading.Timer | None = None
        timed_out = threading.Event()
        if self.job_timeout is not None:
            def _expire() -> None:
                timed_out.set()
                abort.set()

            timer = threading.Timer(self.job_timeout, _expire)
            timer.daemon = True
            timer.start()
        t0 = time.monotonic()
        try:
            instances = payload_mod.to_instances(spec)
            campaign = payload_mod.to_campaign(spec)
            kwargs: dict[str, Any] = dict(
                checkpoint=job.records_path,
                resume=os.path.exists(job.records_path),
                retries=int(cfg["retries"]),
                timeout=cfg["timeout"],
                backoff=float(cfg["backoff"]),
                abort=abort,
            )
            reports: list = []
            if cfg["supervise"]:
                kwargs["pool"] = self._pool_for()
                kwargs["report"] = reports
            else:
                kwargs["prepare"] = self.prepared.prepare
            records = run_campaign(instances, campaign, **kwargs)
            detail = {
                "scenarios": len(records),
                "failed_scenarios": sum(
                    1 for r in records if type(r).__name__ == "FailedRecord"
                ),
                "elapsed": time.monotonic() - t0,
            }
            if reports:
                detail["respawns"] = reports[0].respawns
                detail["retried"] = len(reports[0].retried)
            self.jobs.transition(jid, "done", detail=detail)
            self._done_jobs += 1
        except CampaignAborted:
            if timed_out.is_set():
                self.jobs.transition(
                    jid, "failed",
                    error=f"job exceeded its {self.job_timeout:g}s wall-clock "
                          "budget; partial records are checkpointed",
                )
            elif jid in self._cancelled:
                self.jobs.transition(jid, "cancelled", error="cancelled")
            else:  # draining: back to the queue, resume on next start
                self.jobs.transition(jid, "queued")
        except Exception as exc:
            self.jobs.transition(
                jid, "failed", error=f"{type(exc).__name__}: {exc}"
            )
        finally:
            if timer is not None:
                timer.cancel()


# ----------------------------------------------------------------------
# one dispatch, two front ends
# ----------------------------------------------------------------------
_JOB_ID = re.compile(r"^/jobs/([0-9a-f]{6,64})(/records|/cancel)?$")


def dispatch(
    service: SchedulerService, method: str, path: str, body: bytes
) -> tuple[int, dict[str, str], Any]:
    """Route one request; returns ``(status, extra headers, payload)``.

    ``payload`` is a JSON-able dict, or a ``("file", path, length)``
    triple for the streamed record fetch.
    """
    if method == "GET" and path == "/healthz":
        status, out = service.health()
        return status, {}, out
    if method == "GET" and path == "/readyz":
        status, out = service.ready()
        return status, {}, out
    if path == "/jobs" and method == "POST":
        try:
            spec = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            return 400, {}, {"error": f"request body is not JSON: {exc}"}
        status, out = service.submit(spec)
        headers = {}
        if status == 429:
            headers["Retry-After"] = f"{service.retry_after:g}"
        return status, headers, out
    if path == "/jobs" and method == "GET":
        status, out = service.listing()
        return status, {}, out
    m = _JOB_ID.match(path)
    if m:
        jid, tail = m.group(1), m.group(2)
        if tail is None and method == "GET":
            status, out = service.status(jid)
            return status, {}, out
        if tail == "/cancel" and method == "POST":
            status, out = service.cancel(jid)
            return status, {}, out
        if tail == "/records" and method == "GET":
            status, out = service.records_file(jid)
            if status != 200:
                return status, {}, out
            fpath, length = out
            return 200, {}, ("file", fpath, length)
    return 404, {}, {"error": f"no route for {method} {path}"}


def _iter_file(path: str, length: int, chunk: int = 1 << 16):
    sent = 0
    if length:
        with open(path, "rb") as fh:
            while sent < length:
                piece = fh.read(min(chunk, length - sent))
                if not piece:
                    break  # file shrank under us; stop at what we have
                sent += len(piece)
                yield piece


# -- stdlib front end ---------------------------------------------------
def _make_handler(service: SchedulerService):
    from http.server import BaseHTTPRequestHandler

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve"

        def log_message(self, fmt, *args):  # quiet by default
            if os.environ.get("REPRO_SERVE_LOG"):
                super().log_message(fmt, *args)

        def _reply(self) -> None:
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            status, headers, out = dispatch(
                service, self.command, self.path.split("?", 1)[0], body
            )
            if isinstance(out, tuple) and out[0] == "file":
                _, fpath, flen = out
                self.send_response(status)
                self.send_header("Content-Type", "application/jsonl")
                self.send_header("Content-Length", str(flen))
                self.end_headers()
                for piece in _iter_file(fpath, flen):
                    self.wfile.write(piece)
                return
            payload = json.dumps(out).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for k, v in headers.items():
                self.send_header(k, v)
            self.end_headers()
            self.wfile.write(payload)

        do_GET = do_POST = do_DELETE = _reply

    return Handler


def serve(
    root: str,
    host: str = "127.0.0.1",
    port: int = 8042,
    *,
    workers: int = 1,
    queue_depth: int = 16,
    job_timeout: float | None = None,
    announce=print,
) -> int:
    """Run the scheduling service until SIGTERM/SIGINT; returns 0.

    Prints (via ``announce``) one JSON line with the bound address
    once ready -- with ``port=0`` the kernel picks a free port, so
    parse that line rather than guessing. The same line is journaled
    to ``<root>/service.json`` for tooling.
    """
    from http.server import ThreadingHTTPServer

    service = SchedulerService(
        root,
        workers=workers,
        queue_depth=queue_depth,
        job_timeout=job_timeout,
    )
    recovered = service.start()
    httpd = ThreadingHTTPServer((host, port), _make_handler(service))
    httpd.daemon_threads = True
    # The supervised pool forks workers that would inherit the listening
    # socket; if the server is then SIGKILLed those children keep the
    # port bound and a restarted server cannot bind it. Close the
    # inherited fd in every forked child.
    multiprocessing.util.register_after_fork(
        httpd, lambda srv: srv.socket.close()
    )
    bound = f"http://{httpd.server_address[0]}:{httpd.server_address[1]}"
    info = {"serving": bound, "root": service.jobs.root, "recovered": recovered}

    def _shutdown(signum, frame):  # pragma: no cover - signal path
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        previous[sig] = signal.signal(sig, _shutdown)
    try:
        with open(os.path.join(service.jobs.root, "service.json"), "w") as fh:
            json.dump(info, fh)
        announce(json.dumps(info), flush=True)
        httpd.serve_forever()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        httpd.server_close()
        service.drain()
    return 0


# -- ASGI front end (the optional `serve` extra runs this under uvicorn)
def build_asgi(service: SchedulerService):
    """An ASGI 3 application over the same :func:`dispatch` table.

    Needs no third-party code by itself; install the ``serve`` extra
    and run ``uvicorn`` against the callable for a production-grade
    event loop. Lifecycle (recovery, drain) follows the ASGI lifespan
    protocol.
    """

    async def app(scope, receive, send):
        if scope["type"] == "lifespan":
            while True:
                msg = await receive()
                if msg["type"] == "lifespan.startup":
                    service.start()
                    await send({"type": "lifespan.startup.complete"})
                elif msg["type"] == "lifespan.shutdown":
                    service.drain()
                    await send({"type": "lifespan.shutdown.complete"})
                    return
        if scope["type"] != "http":  # pragma: no cover - websockets etc.
            raise RuntimeError(f"unsupported scope {scope['type']!r}")
        body = b""
        while True:
            msg = await receive()
            if msg["type"] == "http.request":
                body += msg.get("body", b"")
                if not msg.get("more_body"):
                    break
        status, headers, out = dispatch(
            service, scope["method"], scope["path"], body
        )
        if isinstance(out, tuple) and out[0] == "file":
            _, fpath, flen = out
            await send({
                "type": "http.response.start",
                "status": status,
                "headers": [
                    (b"content-type", b"application/jsonl"),
                    (b"content-length", str(flen).encode()),
                ],
            })
            for piece in _iter_file(fpath, flen):
                await send({
                    "type": "http.response.body",
                    "body": piece,
                    "more_body": True,
                })
            await send({"type": "http.response.body", "body": b""})
            return
        payload = json.dumps(out).encode()
        wire_headers = [
            (b"content-type", b"application/json"),
            (b"content-length", str(len(payload)).encode()),
        ] + [(k.lower().encode(), v.encode()) for k, v in headers.items()]
        await send({
            "type": "http.response.start",
            "status": status,
            "headers": wire_headers,
        })
        await send({"type": "http.response.body", "body": payload})

    return app
