"""The durable scheduling service: a crash-safe job API over the
supervised campaign runtime.

``repro serve`` exposes the campaign engine as a small JSON HTTP
service (stdlib :mod:`http.server`; an ASGI adapter for the optional
``serve`` extra): submit a grid with ``POST /jobs``, poll
``GET /jobs/<id>``, fetch the record stream with
``GET /jobs/<id>/records``. Every job is journaled to an on-disk job
directory with atomic state transitions and a per-record-flushed
checkpoint, so a ``kill -9`` of the server resumes every interrupted
job on restart and finishes it **byte-identical** to an uninterrupted
run -- the same resume contract the CLI campaigns honour.
"""

from .jobs import Job, JobStore
from .payload import canonical_spec, job_key, spec_from_dataset
from .server import SchedulerService, serve

__all__ = [
    "Job",
    "JobStore",
    "SchedulerService",
    "ServiceClient",
    "canonical_spec",
    "job_key",
    "serve",
    "spec_from_dataset",
]


def __getattr__(name):
    # lazy, so `python -m repro.service.client` doesn't import the
    # client twice (runpy warns when the package already did)
    if name == "ServiceClient":
        from .client import ServiceClient

        return ServiceClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
