"""Job payloads: the wire form of a campaign, and its content key.

A job spec is one JSON object::

    {
      "trees": [
        {"name": "t0", "parent": [-1, 0, 0], "w": [...],
         "f": [...], "sizes": [...]},
        ...
      ],
      "campaign": {
        "algorithms": ["ParSubtrees", "ParDeepestFirst"],
        "processor_counts": [2, 4],        # default: the paper's five
        "cap_factors": [],                  # optional
        "backend": null,                    # optional engine backend
        "validate": false
      },
      "run": {                              # all optional
        "supervise": true,                  # default: true
        "retries": 2,
        "timeout": null,                    # per-scenario seconds
        "backoff": 0.25
      }
    }

Trees travel inline as plain lists -- the service executes exactly
what was posted, nothing is resolved against server-side state. The
spec is canonicalized (defaults filled, keys sorted, no whitespace)
before hashing, so the **job key is a pure function of the work**:
re-posting the same grid -- a client retry after a lost response, a
crashed submitter rerunning its script -- lands on the same job
directory instead of a duplicate execution.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable

from repro.analysis.campaign import Campaign
from repro.core.tree import TaskTree
from repro.workloads.dataset import PROCESSOR_COUNTS, TreeInstance

__all__ = [
    "SpecError",
    "canonical_spec",
    "job_key",
    "run_config",
    "spec_from_dataset",
    "spec_from_instances",
    "to_campaign",
    "to_instances",
]


class SpecError(ValueError):
    """A malformed job spec (the server answers 400 with the message)."""


_RUN_DEFAULTS: dict[str, Any] = {
    "supervise": True,
    "retries": 2,
    "timeout": None,
    "backoff": 0.25,
}


def _fail(msg: str) -> None:
    raise SpecError(msg)


def canonical_spec(spec: Any) -> dict:
    """Validate ``spec`` and return its canonical form.

    Canonical means: every default filled in, every number normalised
    (ints for node indices and processor counts, floats for weights),
    unknown keys rejected -- so two specs describing the same work
    always serialize to the same bytes.
    """
    if not isinstance(spec, dict):
        _fail("spec must be a JSON object")
    unknown = set(spec) - {"trees", "campaign", "run"}
    if unknown:
        _fail(f"unknown spec key(s): {sorted(unknown)}")

    trees = spec.get("trees")
    if not isinstance(trees, list) or not trees:
        _fail("spec.trees must be a non-empty list")
    seen: set[str] = set()
    canon_trees = []
    for k, t in enumerate(trees):
        if not isinstance(t, dict):
            _fail(f"spec.trees[{k}] must be an object")
        missing = {"name", "parent", "w", "f", "sizes"} - set(t)
        if missing:
            _fail(f"spec.trees[{k}] is missing {sorted(missing)}")
        unknown = set(t) - {"name", "parent", "w", "f", "sizes"}
        if unknown:
            _fail(f"spec.trees[{k}] has unknown key(s): {sorted(unknown)}")
        name = t["name"]
        if not isinstance(name, str) or not name:
            _fail(f"spec.trees[{k}].name must be a non-empty string")
        if name in seen:
            _fail(f"duplicate tree name {name!r}")
        seen.add(name)
        try:
            parent = [int(x) for x in t["parent"]]
            cols = {
                key: [float(x) for x in t[key]] for key in ("w", "f", "sizes")
            }
        except (TypeError, ValueError) as exc:
            _fail(f"spec.trees[{k}]: {exc}")
        n = len(parent)
        for key, col in cols.items():
            if len(col) != n:
                _fail(
                    f"spec.trees[{k}].{key} has {len(col)} entries for "
                    f"{n} node(s)"
                )
        try:  # full structural validation (single root, acyclic, ...)
            TaskTree(parent, cols["w"], cols["f"], cols["sizes"])
        except Exception as exc:
            _fail(f"spec.trees[{k}] is not a valid task tree: {exc}")
        canon_trees.append(
            {"name": name, "parent": parent, **{k2: cols[k2] for k2 in ("w", "f", "sizes")}}
        )

    camp = spec.get("campaign")
    if not isinstance(camp, dict):
        _fail("spec.campaign must be an object")
    unknown = set(camp) - {
        "algorithms", "processor_counts", "cap_factors", "backend", "validate",
    }
    if unknown:
        _fail(f"unknown spec.campaign key(s): {sorted(unknown)}")
    algorithms = camp.get("algorithms")
    if not isinstance(algorithms, list) or not algorithms or not all(
        isinstance(a, str) for a in algorithms
    ):
        _fail("spec.campaign.algorithms must be a non-empty list of names")
    try:
        procs = [int(p) for p in camp.get("processor_counts", PROCESSOR_COUNTS)]
        caps = [float(c) for c in camp.get("cap_factors", ())]
    except (TypeError, ValueError) as exc:
        _fail(f"spec.campaign: {exc}")
    if not procs or any(p < 1 for p in procs):
        _fail("spec.campaign.processor_counts must be positive integers")
    backend = camp.get("backend")
    if backend is not None and backend not in ("c", "numba", "python"):
        _fail(f"spec.campaign.backend must be c|numba|python, got {backend!r}")
    validate = bool(camp.get("validate", False))
    canon_campaign = {
        "algorithms": list(algorithms),
        "processor_counts": procs,
        "cap_factors": caps,
        "backend": backend,
        "validate": validate,
    }
    try:  # expand one grid row: unknown algorithm names fail here
        to_campaign({"campaign": canon_campaign}).scenarios_for("probe")
    except SpecError:
        raise
    except Exception as exc:
        _fail(f"spec.campaign does not expand: {exc}")

    run = spec.get("run", {})
    if not isinstance(run, dict):
        _fail("spec.run must be an object")
    unknown = set(run) - set(_RUN_DEFAULTS)
    if unknown:
        _fail(f"unknown spec.run key(s): {sorted(unknown)}")
    canon_run = dict(_RUN_DEFAULTS)
    canon_run["supervise"] = bool(run.get("supervise", True))
    try:
        canon_run["retries"] = int(run.get("retries", 2))
        canon_run["backoff"] = float(run.get("backoff", 0.25))
        timeout = run.get("timeout")
        canon_run["timeout"] = None if timeout is None else float(timeout)
    except (TypeError, ValueError) as exc:
        _fail(f"spec.run: {exc}")
    if canon_run["retries"] < 0:
        _fail("spec.run.retries must be >= 0")

    return {"trees": canon_trees, "campaign": canon_campaign, "run": canon_run}


def canonical_bytes(spec: Any) -> bytes:
    """The canonical JSON encoding of a (validated) spec."""
    return json.dumps(
        canonical_spec(spec), sort_keys=True, separators=(",", ":")
    ).encode()


def job_key(spec: Any) -> str:
    """The content hash naming a job: identical work, identical key."""
    return hashlib.sha256(canonical_bytes(spec)).hexdigest()[:24]


# ----------------------------------------------------------------------
# canonical spec -> runtime objects
# ----------------------------------------------------------------------
def to_instances(spec: dict) -> list[TreeInstance]:
    return [
        TreeInstance(
            name=t["name"],
            tree=TaskTree(t["parent"], t["w"], t["f"], t["sizes"]),
            matrix_name="service",
            ordering="none",
            amalgamation=1,
        )
        for t in spec["trees"]
    ]


def to_campaign(spec: dict) -> Campaign:
    camp = spec["campaign"]
    return Campaign(
        algorithms=tuple(camp["algorithms"]),
        processor_counts=tuple(camp["processor_counts"]),
        cap_factors=tuple(camp.get("cap_factors", ())),
        backend=camp.get("backend"),
        validate=bool(camp.get("validate", False)),
    )


def run_config(spec: dict) -> dict:
    cfg = dict(_RUN_DEFAULTS)
    cfg.update(spec.get("run", {}))
    return cfg


# ----------------------------------------------------------------------
# spec builders (client side)
# ----------------------------------------------------------------------
def spec_from_instances(
    instances: Iterable[TreeInstance],
    *,
    algorithms: Iterable[str],
    processor_counts: Iterable[int] = PROCESSOR_COUNTS,
    cap_factors: Iterable[float] = (),
    backend: str | None = None,
    validate: bool = False,
    **run: Any,
) -> dict:
    """Inline ``instances`` into a canonical job spec."""
    spec = {
        "trees": [
            {
                "name": inst.name,
                "parent": inst.tree.parent.tolist(),
                "w": inst.tree.w.tolist(),
                "f": inst.tree.f.tolist(),
                "sizes": inst.tree.sizes.tolist(),
            }
            for inst in instances
        ],
        "campaign": {
            "algorithms": list(algorithms),
            "processor_counts": list(processor_counts),
            "cap_factors": list(cap_factors),
            "backend": backend,
            "validate": validate,
        },
        "run": run,
    }
    return canonical_spec(spec)


def spec_from_dataset(
    scale: str = "tiny",
    *,
    algorithms: Iterable[str] = ("ParSubtrees", "ParDeepestFirst"),
    processor_counts: Iterable[int] = (2, 4),
    limit: int | None = None,
    seed: int = 2013,
    **kwargs: Any,
) -> dict:
    """A ready-made demo spec over the synthetic dataset (used by the
    quickstart and the CI smoke drill; the same ``build_dataset`` call
    also backs ``repro campaign``, so records are directly comparable)."""
    from repro.workloads.dataset import build_dataset

    instances = build_dataset(scale=scale, seed=seed)
    if limit is not None:
        instances = instances[:limit]
    return spec_from_instances(
        instances,
        algorithms=algorithms,
        processor_counts=processor_counts,
        **kwargs,
    )
