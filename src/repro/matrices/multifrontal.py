"""Numeric multifrontal Cholesky: execute a schedule for real.

The whole paper abstracts the multifrontal method into a weighted tree;
this module closes the loop by *running* that abstraction: given an SPD
matrix and any valid schedule of its elimination tree, it performs the
actual numeric factorization task by task -- dense frontal matrices,
partial factorization, extend-add of update matrices along the tree
edges -- and returns the Cholesky factor.

Because tasks only communicate through the tree edges (a child's update
matrix is consumed by its parent), *any* topological execution order
yields the same factor; the test suite exploits this to certify that
every scheduler in the library drives a numerically correct
factorization (against ``numpy.linalg.cholesky``).

The in-memory size of a node's update matrix is exactly the paper's
edge weight ``f_i = (mu_i - 1)^2``, and the frontal matrix accounts for
``n_i = eta^2 + 2 eta (mu-1)`` with ``eta = 1`` -- the weight model of
Section 6.2 made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.schedule import Schedule
from .etree import elimination_tree

__all__ = ["MultifrontalResult", "column_structures", "multifrontal_cholesky"]


@dataclass(frozen=True)
class MultifrontalResult:
    """Outcome of a numeric multifrontal factorization.

    Attributes
    ----------
    L:
        the lower-triangular Cholesky factor (dense, for test-scale
        matrices).
    peak_update_memory:
        maximum total size of live update matrices over the execution --
        the numeric counterpart of the model's file memory.
    """

    L: np.ndarray
    peak_update_memory: float


def column_structures(a: sp.spmatrix, parent: np.ndarray) -> list[np.ndarray]:
    """Row structure of every factor column (sorted, diagonal included).

    Built bottom-up with the characterisation
    ``struct(j) = rows of A(j:, j)  U  (struct(c) \\ {c}) for children c``.
    """
    a = sp.csc_matrix(a)
    n = a.shape[0]
    children: list[list[int]] = [[] for _ in range(n)]
    for j in range(n):
        p = int(parent[j])
        if p != -1:
            children[p].append(j)
    structs: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
    for j in range(n):
        rows = a.indices[a.indptr[j] : a.indptr[j + 1]]
        acc = set(int(r) for r in rows if r >= j)
        acc.add(j)
        for c in children[j]:
            acc.update(int(r) for r in structs[c] if r != c)
        structs[j] = np.asarray(sorted(acc), dtype=np.int64)
    return structs


def multifrontal_cholesky(
    a: sp.spmatrix,
    schedule: Schedule | None = None,
    order: np.ndarray | None = None,
) -> MultifrontalResult:
    """Factorize SPD ``a`` by the multifrontal method.

    Parameters
    ----------
    a:
        symmetric positive-definite matrix (dense fronts: test scale).
    schedule:
        a schedule of the elimination tree (node ``j`` of the tree is
        column ``j``); its start-time order drives the execution. The
        tree of the schedule must have one node per column.
    order:
        alternatively, an explicit topological order of the columns.
        Exactly one of ``schedule`` / ``order`` may be given; neither
        defaults to the natural order ``0..n-1``.

    Notes
    -----
    This is an ``eta = 1`` (no amalgamation) multifrontal method: one
    front per column, rank-1 pivot elimination per task.
    """
    a = sp.csc_matrix(a)
    n = a.shape[0]
    parent = elimination_tree(a)
    if schedule is not None and order is not None:
        raise ValueError("give either a schedule or an order, not both")
    if schedule is not None:
        if schedule.tree.n != n:
            raise ValueError("schedule tree size does not match the matrix")
        order = schedule.order()
    elif order is None:
        order = np.arange(n)
    order = np.asarray(order, dtype=np.int64)

    structs = column_structures(a, parent)
    pos_in_struct = [
        {int(r): k for k, r in enumerate(structs[j])} for j in range(n)
    ]
    updates: dict[int, np.ndarray] = {}  # node -> its update matrix
    pending_children: list[list[int]] = [[] for _ in range(n)]
    for j in range(n):
        p = int(parent[j])
        if p != -1:
            pending_children[p].append(j)

    L = np.zeros((n, n))
    peak = 0.0
    live = 0.0
    dense_cols = {}
    for j in order:
        j = int(j)
        struct = structs[j]
        m = struct.shape[0]
        front = np.zeros((m, m))
        # assemble A's column j (lower part) into the front
        col_rows = a.indices[a.indptr[j] : a.indptr[j + 1]]
        col_vals = a.data[a.indptr[j] : a.indptr[j + 1]]
        for r, v in zip(col_rows, col_vals):
            if r >= j:
                front[pos_in_struct[j][int(r)], 0] += v
        # extend-add the children's update matrices
        for c in pending_children[j]:
            if c not in updates:
                raise ValueError(
                    f"column {c} not factored before its parent {j}: "
                    "the order is not topological"
                )
            u = updates.pop(c)
            live -= u.size
            child_rows = structs[c][1:]  # struct(c) minus c itself
            idx = np.asarray([pos_in_struct[j][int(r)] for r in child_rows])
            front[np.ix_(idx, idx)] += u
        # partial factorization: eliminate the pivot (first) column
        pivot = front[0, 0]
        if pivot <= 0:
            raise np.linalg.LinAlgError(f"non-positive pivot at column {j}")
        lcol = front[:, 0] / np.sqrt(pivot)
        L[struct, j] = lcol
        update = front[1:, 1:] - np.outer(lcol[1:], lcol[1:])
        updates[j] = update
        live += update.size
        peak = max(peak, live)
        dense_cols[j] = True
    if any(u.size and not np.allclose(u, 0, atol=1e-8) for u in updates.values()):
        # roots' update matrices must be empty or zero: every eliminated
        # column's contribution was consumed.
        raise RuntimeError("leftover update mass at the roots")
    return MultifrontalResult(L=L, peak_update_memory=float(peak))
