"""Relaxed node amalgamation: elimination tree -> assembly tree.

The paper performs "a relaxed node amalgamation on these elimination
trees to create assembly trees ... allowing 1, 2, 4, and 16 relaxed
amalgamations per node". We reproduce this with a bottom-up greedy
merge along etree edges:

a child group ``c`` merges into its parent group ``p`` when

1. the combined size stays within the cap:
   ``eta_c + eta_p <= max_amalgamation``, and
2. the merge does not pad the supernode too much:
   ``(mu_top(p) + eta_p) - mu_c <= relax * (mu_top(p) + eta_p)``,
   i.e. the child's factor column is within a ``relax`` fraction of the
   length it would have were it perfectly nested under the parent group
   (``relax = 0`` keeps only fundamental supernodes; chains with exact
   nesting always satisfy it).

``max_amalgamation = 1`` disables merging, so the assembly tree equals
the elimination tree -- the paper's base variant.

Node weights of the resulting task tree follow
:mod:`repro.matrices.weights`: ``eta`` is the group size and ``mu`` the
column count of the group's *highest* node in the starting elimination
tree, exactly as Section 6.2 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tree import TaskTree, NO_PARENT
from .symbolic import SymbolicFactorization
from .weights import assembly_weights

__all__ = ["AssemblyTree", "amalgamate"]


@dataclass(frozen=True)
class AssemblyTree:
    """An assembly tree with the paper's weight model.

    Attributes
    ----------
    tree:
        the weighted task tree fed to the schedulers.
    eta:
        per-assembly-node count of amalgamated elimination nodes.
    mu:
        per-assembly-node factor column count of the highest node.
    group_of:
        map from original elimination-tree node to assembly node.
    """

    tree: TaskTree
    eta: np.ndarray
    mu: np.ndarray
    group_of: np.ndarray


def amalgamate(
    symbolic: SymbolicFactorization,
    max_amalgamation: int = 1,
    relax: float = 0.25,
) -> AssemblyTree:
    """Build the assembly tree from a symbolic factorization.

    Parameters
    ----------
    symbolic:
        the elimination tree and column counts of the (permuted) matrix.
    max_amalgamation:
        cap on the number of elimination nodes per assembly node (the
        paper sweeps 1, 2, 4, 16).
    relax:
        padding tolerance of criterion 2 above.

    Notes
    -----
    If the elimination structure is a forest (reducible matrix), a
    virtual root (``eta = mu = 1``, hence zero output file) is added to
    obtain a single tree, which does not change any schedule's memory
    behaviour (its weights are negligible).
    """
    if max_amalgamation < 1:
        raise ValueError("max_amalgamation must be >= 1")
    parent = symbolic.parent
    counts = symbolic.counts
    n = symbolic.n

    # Union-find over groups; the representative is the *highest*
    # (largest-index) member since merges always go child -> parent and
    # etree parents have larger indices.
    group = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while group[root] != root:
            root = int(group[root])
        while group[x] != root:
            group[x], x = root, int(group[x])
        return root

    eta = np.ones(n, dtype=np.int64)
    if max_amalgamation > 1:
        # Children have smaller indices than parents in an etree, so the
        # natural order is a valid bottom-up sweep.
        for j in range(n):
            p = int(parent[j])
            if p == -1:
                continue
            gc = find(j)
            gp = find(p)
            if gc == gp:
                continue
            combined = eta[gc] + eta[gp]
            if combined > max_amalgamation:
                continue
            nested_len = float(counts[gp] + eta[gp])
            padding = nested_len - float(counts[gc])
            if padding > relax * nested_len:
                continue
            group[gc] = gp
            eta[gp] = combined

    reps = sorted(set(find(j) for j in range(n)))
    index_of = {r: k for k, r in enumerate(reps)}
    group_of = np.array([index_of[find(j)] for j in range(n)], dtype=np.int64)
    m = len(reps)
    eta_g = np.array([eta[r] for r in reps], dtype=np.int64)
    mu_g = np.array([counts[r] for r in reps], dtype=np.int64)

    a_parent = np.full(m, NO_PARENT, dtype=np.int64)
    for k, r in enumerate(reps):
        p = int(parent[r])
        if p != -1:
            a_parent[k] = index_of[find(p)]

    roots = np.flatnonzero(a_parent == NO_PARENT)
    if roots.shape[0] > 1:
        # Virtual root to join the forest.
        a_parent = np.concatenate([a_parent, [NO_PARENT]])
        a_parent[roots] = m
        eta_g = np.concatenate([eta_g, [1]])
        mu_g = np.concatenate([mu_g, [1]])
        m += 1

    sizes, w, f = assembly_weights(eta_g, mu_g)
    tree = TaskTree(a_parent, w, f, sizes)
    return AssemblyTree(tree=tree, eta=eta_g, mu=mu_g, group_of=group_of)
