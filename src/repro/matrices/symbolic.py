"""Symbolic Cholesky analysis: the ``symbfact`` equivalent.

Combines the elimination tree and column counts into one result object,
and provides a dense reference implementation (explicit fill propagation)
used by the test suite to certify the sparse algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .etree import elimination_tree, column_counts, etree_heights

__all__ = ["SymbolicFactorization", "symbolic_cholesky", "dense_symbolic_cholesky"]


@dataclass(frozen=True)
class SymbolicFactorization:
    """Result of the symbolic analysis of a symmetric-pattern matrix.

    Attributes
    ----------
    parent:
        elimination-tree parent vector (``-1`` for roots).
    counts:
        factor column counts ``mu_j = |L(:, j)|`` (diagonal included).
    """

    parent: np.ndarray
    counts: np.ndarray

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return int(self.parent.shape[0])

    @property
    def factor_nnz(self) -> int:
        """Total number of nonzeros of the Cholesky factor ``L``."""
        return int(self.counts.sum())

    def height(self) -> int:
        """Height of the elimination forest."""
        return int(etree_heights(self.parent).max())

    def n_roots(self) -> int:
        """Number of trees in the elimination forest (1 iff irreducible)."""
        return int(np.sum(self.parent == -1))


def symbolic_cholesky(a: sp.spmatrix) -> SymbolicFactorization:
    """Symbolic Cholesky factorization of a symmetric-pattern matrix.

    Equivalent to Matlab's ``symbfact`` outputs used by the paper:
    elimination tree plus per-column factor counts.
    """
    parent = elimination_tree(a)
    counts = column_counts(a, parent)
    return SymbolicFactorization(parent=parent, counts=counts)


def dense_symbolic_cholesky(a: sp.spmatrix) -> np.ndarray:
    """Reference: dense boolean fill propagation, O(n^3).

    Returns the dense boolean lower-triangular pattern of ``L``
    (including the diagonal). Used in tests to certify
    :func:`symbolic_cholesky` on small matrices.
    """
    dense = np.asarray(sp.csr_matrix(a).todense() != 0)
    n = dense.shape[0]
    pattern = np.tril(dense).copy()
    np.fill_diagonal(pattern, True)
    for k in range(n):
        below = np.flatnonzero(pattern[:, k])
        below = below[below > k]
        # Eliminating column k fills in the clique among `below`.
        for idx, i in enumerate(below):
            pattern[below[idx + 1 :], i] = True
    return pattern
