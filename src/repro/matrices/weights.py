"""The paper's weight model for assembly-tree nodes (Section 6.2).

For an assembly node amalgamating ``eta`` elimination-tree nodes whose
highest (shallowest) node has factor column count ``mu``:

* execution-file size  ``n_i = eta^2 + 2*eta*(mu - 1)``,
* processing time      ``w_i = 2/3*eta^3 + eta^2*(mu-1) + eta*(mu-1)^2``,
* output-file size     ``f_i = (mu - 1)^2``.

The processing-time terms model one Gaussian elimination of the
``eta x eta`` pivot block, two triangular multiplications with the
``eta x (mu-1)`` panel, and one ``(mu-1) x eta`` by ``eta x (mu-1)``
product -- the dense kernel of a multifrontal factorization step.
"""

from __future__ import annotations

import numpy as np

__all__ = ["node_weights", "assembly_weights"]


def node_weights(eta: int, mu: int) -> tuple[float, float, float]:
    """Weights ``(n_i, w_i, f_i)`` of a single assembly node."""
    if eta < 1 or mu < 1:
        raise ValueError("eta and mu must be at least 1")
    eta_f = float(eta)
    m1 = float(mu - 1)
    n_i = eta_f**2 + 2.0 * eta_f * m1
    w_i = (2.0 / 3.0) * eta_f**3 + eta_f**2 * m1 + eta_f * m1**2
    f_i = m1**2
    return n_i, w_i, f_i


def assembly_weights(
    eta: np.ndarray, mu: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :func:`node_weights` over all assembly nodes."""
    eta = np.asarray(eta, dtype=np.float64)
    mu = np.asarray(mu, dtype=np.float64)
    if np.any(eta < 1) or np.any(mu < 1):
        raise ValueError("eta and mu must be at least 1")
    m1 = mu - 1.0
    n_i = eta**2 + 2.0 * eta * m1
    w_i = (2.0 / 3.0) * eta**3 + eta**2 * m1 + eta * m1**2
    f_i = m1**2
    return n_i, w_i, f_i
