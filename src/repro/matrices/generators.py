"""Synthetic sparse symmetric matrices -- substitute for the UFL collection.

The paper draws 76 matrices from the University of Florida Sparse Matrix
Collection (square, symmetric pattern, 20k-2M rows, >= 2.5 nnz/row).
Offline we generate structurally diverse symmetric patterns at laptop
scale; what the scheduling experiments consume is only the *assembly
tree* derived from each pattern, and the generators below cover the same
qualitative regimes of tree shape:

* :func:`grid2d` / :func:`grid3d` -- discretisation meshes; nested
  dissection gives wide, balanced assembly trees (the MeTiS regime);
* :func:`banded` -- band matrices; their elimination trees are chains
  (the deep-tree regime, depths up to tens of thousands in the paper);
* :func:`random_symmetric` -- Erdos-Renyi-like patterns, irregular trees;
* :func:`scale_free` -- power-law degree patterns, producing the
  huge-degree nodes the paper reports (max degree 175k).

All generators return a ``scipy.sparse.csr_matrix`` containing the
*pattern* (values are 1.0; only the structure matters for symbolic
factorization) with a zero-free symmetric structure and full diagonal.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["grid2d", "grid3d", "banded", "random_symmetric", "scale_free", "symmetrize"]


def symmetrize(a: sp.spmatrix) -> sp.csr_matrix:
    """Pattern-symmetrize a square sparse matrix and set a full diagonal."""
    a = sp.csr_matrix(a, copy=True)
    n = a.shape[0]
    pattern = a + a.T + sp.eye(n, format="csr")
    pattern.data[:] = 1.0
    pattern.eliminate_zeros()
    return sp.csr_matrix(pattern)


def grid2d(k: int) -> sp.csr_matrix:
    """5-point Laplacian pattern on a ``k x k`` grid (``n = k^2``)."""
    if k < 1:
        raise ValueError("k must be positive")
    eye = sp.identity(k, format="csr")
    band = sp.diags([1.0, 1.0], [-1, 1], shape=(k, k), format="csr")
    a = sp.kron(eye, band) + sp.kron(band, eye)
    return symmetrize(a)


def grid3d(k: int) -> sp.csr_matrix:
    """7-point Laplacian pattern on a ``k x k x k`` grid (``n = k^3``)."""
    if k < 1:
        raise ValueError("k must be positive")
    eye = sp.identity(k, format="csr")
    band = sp.diags([1.0, 1.0], [-1, 1], shape=(k, k), format="csr")
    a = (
        sp.kron(sp.kron(eye, eye), band)
        + sp.kron(sp.kron(eye, band), eye)
        + sp.kron(sp.kron(band, eye), eye)
    )
    return symmetrize(a)


def banded(n: int, bandwidth: int) -> sp.csr_matrix:
    """Symmetric band pattern with the given half-bandwidth."""
    if bandwidth < 1 or n < 1:
        raise ValueError("need n >= 1 and bandwidth >= 1")
    offsets = list(range(-bandwidth, bandwidth + 1))
    a = sp.diags([1.0] * len(offsets), offsets, shape=(n, n), format="csr")
    return symmetrize(a)


def random_symmetric(
    n: int, avg_degree: float = 4.0, rng: np.random.Generator | None = None
) -> sp.csr_matrix:
    """Random symmetric pattern with about ``avg_degree`` off-diagonal
    entries per row (Erdos-Renyi style)."""
    rng = rng or np.random.default_rng()
    m = int(n * avg_degree / 2)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    keep = rows != cols
    a = sp.csr_matrix(
        (np.ones(keep.sum()), (rows[keep], cols[keep])), shape=(n, n)
    )
    return symmetrize(a)


def scale_free(
    n: int, attach: int = 2, rng: np.random.Generator | None = None
) -> sp.csr_matrix:
    """Power-law pattern via Barabasi-Albert preferential attachment.

    Produces a few very high degree rows -- the regime that creates the
    paper's maximum node degrees (up to 175 000) in assembly trees.
    """
    import networkx as nx

    rng = rng or np.random.default_rng()
    seed = int(rng.integers(0, 2**31 - 1))
    g = nx.barabasi_albert_graph(n, attach, seed=seed)
    a = nx.to_scipy_sparse_array(g, format="csr", dtype=np.float64)
    return symmetrize(sp.csr_matrix(a))
