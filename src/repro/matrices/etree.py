"""Elimination tree and factor column counts (symbolic analysis).

The elimination tree of a symmetric matrix ``A`` (with Cholesky factor
``L``) is defined by ``parent(j) = min{ i > j : L(i,j) != 0 }``. We
compute it with Liu's ancestor path-compression algorithm in nearly
O(nnz * alpha) time, and the per-column factor counts
``mu_j = |L(:, j)|`` (diagonal included) with the row-subtree traversal
algorithm. Both are the quantities Matlab's ``symbfact`` returns, which
the paper uses to weight assembly-tree nodes.

References: J. W. H. Liu, "The role of elimination trees in sparse
factorization", SIAM J. Matrix Anal. Appl., 1990.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["elimination_tree", "column_counts", "etree_heights"]


def _lower_rows(a: sp.csr_matrix):
    """Yield ``(i, below-diagonal column indices of row i)``."""
    a = sp.csr_matrix(a)
    indptr, indices = a.indptr, a.indices
    for i in range(a.shape[0]):
        row = indices[indptr[i] : indptr[i + 1]]
        yield i, row[row < i]


def elimination_tree(a: sp.spmatrix) -> np.ndarray:
    """Elimination tree parent vector of a symmetric-pattern matrix.

    ``parent[j]`` is the etree parent of column ``j`` or ``-1`` for
    roots (the etree is a forest when the matrix is reducible).
    Only the lower triangle of ``a`` is read.
    """
    a = sp.csr_matrix(a)
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    for i, row in _lower_rows(a):
        for k in row:
            j = int(k)
            # Climb with path compression until reaching i's component.
            while ancestor[j] != -1 and ancestor[j] != i:
                nxt = int(ancestor[j])
                ancestor[j] = i
                j = nxt
            if ancestor[j] == -1:
                ancestor[j] = i
                parent[j] = i
    return parent


def column_counts(a: sp.spmatrix, parent: np.ndarray | None = None) -> np.ndarray:
    """Factor column counts ``mu_j = |L(:, j)|`` (diagonal included).

    Uses the row-subtree characterisation: ``L(i, j) != 0`` iff ``j`` is
    on the etree path from some ``k`` with ``A(i, k) != 0, k <= j`` up to
    ``i``. For each row we walk those paths, marking visited nodes so
    every column is counted once per row. Worst case O(nnz * height) --
    the simple ``symbfact`` algorithm, fast enough at our scale and
    verified against dense symbolic elimination in tests.
    """
    a = sp.csr_matrix(a)
    n = a.shape[0]
    if parent is None:
        parent = elimination_tree(a)
    counts = np.ones(n, dtype=np.int64)  # diagonal entries
    mark = np.full(n, -1, dtype=np.int64)
    for i, row in _lower_rows(a):
        mark[i] = i
        for k in row:
            j = int(k)
            while j != -1 and mark[j] != i:
                counts[j] += 1
                mark[j] = i
                j = int(parent[j])
    return counts


def etree_heights(parent: np.ndarray) -> np.ndarray:
    """Height of each node in the elimination forest (leaves have 0).

    Computed in one pass over a topological order (children have smaller
    indices than parents in an etree, by definition).
    """
    n = parent.shape[0]
    height = np.zeros(n, dtype=np.int64)
    for j in range(n):
        p = int(parent[j])
        if p != -1:
            height[p] = max(height[p], height[j] + 1)
    return height
