"""Sparse-matrix substrate: from matrix pattern to weighted assembly tree.

Pipeline (Section 6.2 of the paper):

1. generate / load a symmetric sparse pattern
   (:mod:`repro.matrices.generators`, :mod:`repro.matrices.collection`);
2. apply a fill-reducing ordering (:mod:`repro.matrices.ordering`);
3. symbolic Cholesky: elimination tree + column counts
   (:mod:`repro.matrices.etree`, :mod:`repro.matrices.symbolic`);
4. relaxed node amalgamation into an assembly tree with the paper's
   weight formulas (:mod:`repro.matrices.amalgamation`,
   :mod:`repro.matrices.weights`).
"""

from .generators import grid2d, grid3d, banded, random_symmetric, scale_free, symmetrize
from .etree import elimination_tree, column_counts, etree_heights
from .ordering import (
    minimum_degree,
    rcm,
    nested_dissection,
    natural,
    apply_ordering,
    ORDERINGS,
)
from .symbolic import SymbolicFactorization, symbolic_cholesky, dense_symbolic_cholesky
from .weights import node_weights, assembly_weights
from .amalgamation import AssemblyTree, amalgamate
from .collection import MatrixInstance, default_collection, SCALES
from .io import read_matrix_market, write_matrix_market, MatrixMarketError
from .multifrontal import (
    MultifrontalResult,
    column_structures,
    multifrontal_cholesky,
)

__all__ = [
    "grid2d",
    "grid3d",
    "banded",
    "random_symmetric",
    "scale_free",
    "symmetrize",
    "elimination_tree",
    "column_counts",
    "etree_heights",
    "minimum_degree",
    "rcm",
    "nested_dissection",
    "natural",
    "apply_ordering",
    "ORDERINGS",
    "SymbolicFactorization",
    "symbolic_cholesky",
    "dense_symbolic_cholesky",
    "node_weights",
    "assembly_weights",
    "AssemblyTree",
    "amalgamate",
    "MatrixInstance",
    "default_collection",
    "SCALES",
    "read_matrix_market",
    "write_matrix_market",
    "MatrixMarketError",
    "MultifrontalResult",
    "column_structures",
    "multifrontal_cholesky",
]
