"""A named matrix collection mimicking the paper's UFL selection.

The paper filters the University of Florida collection down to 76
square, pattern-symmetric matrices with 20k-2M rows and >= 2.5 nnz/row.
Offline we assemble an analogous spread of structures at four scales
(``tiny`` for unit tests, ``small`` for the benchmark suite, ``medium``
for the full experiment run, ``large`` for the parallel batch pipeline):
regular meshes, bands of several widths, random patterns of several
densities, and power-law graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp

from . import generators as gen

__all__ = ["MatrixInstance", "default_collection", "SCALES"]


@dataclass(frozen=True)
class MatrixInstance:
    """A named matrix of the synthetic collection."""

    name: str
    matrix: sp.csr_matrix

    @property
    def n(self) -> int:
        """Number of rows."""
        return int(self.matrix.shape[0])

    @property
    def nnz_per_row(self) -> float:
        """Average nonzeros per row (the UFL filter used >= 2.5)."""
        return float(self.matrix.nnz / self.matrix.shape[0])


#: scale name -> characteristic problem size (grid side, band length...).
SCALES: dict[str, int] = {"tiny": 8, "small": 24, "medium": 48, "large": 96}


def default_collection(scale: str = "small", seed: int = 2013) -> list[MatrixInstance]:
    """Build the synthetic collection at the requested scale.

    The same seed always yields the same matrices, making every
    experiment reproducible bit-for-bit.
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; pick one of {sorted(SCALES)}")
    k = SCALES[scale]
    rng = np.random.default_rng(seed)
    # Random patterns fill in heavily under elimination, which makes the
    # minimum-degree ordering superlinearly expensive; cap their sizes so
    # the ``large`` tier stays tractable (the caps are above every
    # smaller scale's k*k, so tiny/small/medium are unaffected). The
    # structured matrices (grids, bands) scale to the full size.
    r3 = min(k * k, 4096)
    r6 = min(k * k, 2304)
    g3 = max(3, min(k // 3, 20))  # 3D fill-in is the worst md offender
    builders: list[tuple[str, Callable[[], sp.csr_matrix]]] = [
        (f"grid2d-{k}", lambda: gen.grid2d(k)),
        (f"grid2d-{2 * k}", lambda: gen.grid2d(2 * k)),
        (f"grid3d-{g3}", lambda: gen.grid3d(g3)),
        (f"banded-{k * k}-w2", lambda: gen.banded(k * k, 2)),
        (f"banded-{k * k}-w8", lambda: gen.banded(k * k, min(8, k * k - 1))),
        (
            f"random-{r3}-d3",
            lambda: gen.random_symmetric(r3, 3.0, rng),
        ),
        (
            f"random-{r6}-d6",
            lambda: gen.random_symmetric(r6, 6.0, rng),
        ),
        (f"scalefree-{r3}", lambda: gen.scale_free(r3, 2, rng)),
    ]
    return [MatrixInstance(name, build()) for name, build in builders]
