"""Matrix Market I/O: drop-in support for the paper's real data.

The University of Florida Sparse Matrix Collection distributes matrices
in the Matrix Market exchange format (``.mtx``). This module provides a
self-contained reader/writer for the coordinate format so that a user
with access to the collection can feed the *actual* paper matrices into
the pipeline; offline, the test-suite round-trips the synthetic
collection through it.

Only the features needed for symbolic analysis are implemented:
coordinate ``real`` / ``integer`` / ``pattern`` fields with ``general``
or ``symmetric`` symmetry. Values are irrelevant to the assembly-tree
construction (only the pattern matters), so they are read but may be
discarded by the caller.
"""

from __future__ import annotations

import gzip
import pathlib
from typing import IO

import numpy as np
import scipy.sparse as sp

__all__ = ["read_matrix_market", "write_matrix_market", "MatrixMarketError"]


class MatrixMarketError(ValueError):
    """Raised on malformed Matrix Market input."""


_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRY = {"general", "symmetric"}


def _open(path: str | pathlib.Path, mode: str) -> IO:
    path = pathlib.Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_matrix_market(path: str | pathlib.Path) -> sp.csr_matrix:
    """Read a coordinate Matrix Market file (optionally gzipped).

    Symmetric storage is expanded to a full pattern. One-based indices
    are converted; duplicate entries are summed, as the format
    specifies.
    """
    with _open(path, "r") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise MatrixMarketError("missing %%MatrixMarket header")
        parts = header.strip().split()
        if len(parts) < 5:
            raise MatrixMarketError(f"malformed header: {header.strip()!r}")
        _, obj, fmt, field, symmetry = parts[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise MatrixMarketError("only coordinate matrices are supported")
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in _SUPPORTED_FIELDS:
            raise MatrixMarketError(f"unsupported field {field!r}")
        if symmetry not in _SUPPORTED_SYMMETRY:
            raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        try:
            n_rows, n_cols, nnz = (int(x) for x in line.split())
        except ValueError as exc:
            raise MatrixMarketError(f"malformed size line: {line.strip()!r}") from exc
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=np.float64)
        for k in range(nnz):
            line = fh.readline()
            if not line:
                raise MatrixMarketError(f"expected {nnz} entries, got {k}")
            parts = line.split()
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            if field != "pattern":
                if len(parts) < 3:
                    raise MatrixMarketError(f"missing value on line: {line.strip()!r}")
                vals[k] = float(parts[2])
    if np.any(rows < 0) or np.any(rows >= n_rows) or np.any(cols < 0) or np.any(cols >= n_cols):
        raise MatrixMarketError("index out of bounds")
    a = sp.coo_matrix((vals, (rows, cols)), shape=(n_rows, n_cols))
    if symmetry == "symmetric":
        off_diag = rows != cols
        mirror = sp.coo_matrix(
            (vals[off_diag], (cols[off_diag], rows[off_diag])), shape=(n_rows, n_cols)
        )
        a = a + mirror
    return sp.csr_matrix(a)


def write_matrix_market(
    path: str | pathlib.Path, a: sp.spmatrix, symmetric: bool = False
) -> None:
    """Write a sparse matrix in coordinate Matrix Market format.

    With ``symmetric=True`` only the lower triangle is stored (the
    matrix must be pattern-symmetric) and the header declares
    ``symmetric`` storage, matching how the UFL collection ships its
    matrices.
    """
    coo = sp.coo_matrix(a)
    if symmetric:
        if (coo != coo.T).nnz != 0:
            raise MatrixMarketError("matrix is not symmetric")
        keep = coo.row >= coo.col
        coo = sp.coo_matrix(
            (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=coo.shape
        )
    with _open(path, "w") as fh:
        sym = "symmetric" if symmetric else "general"
        fh.write(f"%%MatrixMarket matrix coordinate real {sym}\n")
        fh.write(f"% written by repro (IPDPS 2013 reproduction)\n")
        fh.write(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}\n")
        for r, c, v in zip(coo.row, coo.col, coo.data):
            fh.write(f"{r + 1} {c + 1} {v:.17g}\n")
