"""Fill-reducing orderings: minimum degree, RCM, nested dissection.

The paper orders its matrices with MeTiS (nested dissection) and ``amd``
(approximate minimum degree). We implement the same two families from
scratch -- a textbook minimum-degree on the elimination graph and a
recursive level-set nested dissection -- plus SciPy's reverse
Cuthill-McKee as a third, band-oriented regime. All functions return a
permutation array ``perm`` with ``perm[k] =`` the original index of the
k-th eliminated variable; apply it as ``A[perm][:, perm]``.
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.sparse as sp

__all__ = ["minimum_degree", "rcm", "nested_dissection", "natural", "ORDERINGS", "apply_ordering"]


def _adjacency_sets(a: sp.spmatrix) -> list[set[int]]:
    """Off-diagonal adjacency sets of a symmetric-pattern matrix."""
    a = sp.csr_matrix(a)
    n = a.shape[0]
    adj: list[set[int]] = []
    for i in range(n):
        row = set(int(j) for j in a.indices[a.indptr[i] : a.indptr[i + 1]])
        row.discard(i)
        adj.append(row)
    return adj


def natural(a: sp.spmatrix) -> np.ndarray:
    """The identity ordering (baseline)."""
    return np.arange(a.shape[0], dtype=np.int64)


def minimum_degree(a: sp.spmatrix) -> np.ndarray:
    """Greedy minimum-degree ordering on the elimination graph.

    At each step the node of smallest current degree is eliminated and
    its neighbourhood turned into a clique (the fill produced by that
    elimination). A lazy heap keeps the complexity near
    O(n log n + fill); this is the exact (non-approximate) variant of
    the ``amd`` family the paper uses.
    """
    adj = _adjacency_sets(a)
    n = len(adj)
    heap = [(len(adj[i]), i) for i in range(n)]
    heapq.heapify(heap)
    eliminated = np.zeros(n, dtype=bool)
    perm = np.empty(n, dtype=np.int64)
    k = 0
    while heap:
        deg, v = heapq.heappop(heap)
        if eliminated[v] or deg != len(adj[v]):
            continue  # stale entry
        eliminated[v] = True
        perm[k] = v
        k += 1
        neigh = adj[v]
        for u in neigh:
            adj[u].discard(v)
        # Form the clique among the (non-eliminated) neighbours.
        neigh_list = [u for u in neigh if not eliminated[u]]
        for idx, u in enumerate(neigh_list):
            others = neigh_list[idx + 1 :]
            before = len(adj[u])
            adj[u].update(others)
            for t in others:
                adj[t].add(u)
            if len(adj[u]) != before:
                heapq.heappush(heap, (len(adj[u]), u))
        for u in neigh_list:
            heapq.heappush(heap, (len(adj[u]), u))
        adj[v] = set()
    if k != n:  # pragma: no cover - defensive
        raise RuntimeError("minimum degree lost vertices")
    return perm


def rcm(a: sp.spmatrix) -> np.ndarray:
    """Reverse Cuthill-McKee (SciPy), a bandwidth-reducing ordering.

    Produces chain-like elimination trees -- the deep-tree regime of the
    paper's data set.
    """
    from scipy.sparse.csgraph import reverse_cuthill_mckee

    return np.asarray(
        reverse_cuthill_mckee(sp.csr_matrix(a), symmetric_mode=True), dtype=np.int64
    )


def _pseudo_peripheral(adj: list[set[int]], nodes: list[int]) -> tuple[int, dict[int, int]]:
    """Double-BFS pseudo-peripheral node of the subgraph on ``nodes``.

    Returns the chosen node and its BFS level map over the subgraph
    component containing it.
    """
    node_set = set(nodes)
    start = nodes[0]

    def bfs(src: int) -> dict[int, int]:
        level = {src: 0}
        frontier = [src]
        while frontier:
            nxt = []
            for u in frontier:
                for v in adj[u]:
                    if v in node_set and v not in level:
                        level[v] = level[u] + 1
                        nxt.append(v)
            frontier = nxt
        return level

    levels = bfs(start)
    far = max(levels, key=lambda u: (levels[u], u))
    levels = bfs(far)
    return far, levels


def nested_dissection(a: sp.spmatrix, leaf_size: int = 32) -> np.ndarray:
    """Recursive level-set nested dissection ordering.

    The separator is the middle BFS level from a pseudo-peripheral node;
    the two halves are ordered recursively and the separator last.
    Subgraphs of at most ``leaf_size`` nodes are ordered by minimum
    degree. This mirrors MeTiS's role in the paper: wide, balanced
    assembly trees.
    """
    adj = _adjacency_sets(a)
    n = len(adj)
    perm: list[int] = []

    def order_small(nodes: list[int]) -> list[int]:
        if len(nodes) <= 1:
            return list(nodes)
        idx = {u: i for i, u in enumerate(nodes)}
        rows, cols = [], []
        for u in nodes:
            for v in adj[u]:
                if v in idx:
                    rows.append(idx[u])
                    cols.append(idx[v])
        sub = sp.csr_matrix(
            (np.ones(len(rows) + len(nodes)),
             (rows + list(range(len(nodes))), cols + list(range(len(nodes))))),
            shape=(len(nodes), len(nodes)),
        )
        return [nodes[i] for i in minimum_degree(sub)]

    def recurse(nodes: list[int]) -> None:
        if len(nodes) <= leaf_size:
            perm.extend(order_small(nodes))
            return
        src, levels = _pseudo_peripheral(adj, nodes)
        if len(levels) < len(nodes):
            # Disconnected subgraph: handle the found component, recurse
            # on the rest.
            comp = [u for u in nodes if u in levels]
            rest = [u for u in nodes if u not in levels]
            recurse(comp)
            recurse(rest)
            return
        max_level = max(levels.values())
        if max_level < 2:
            perm.extend(order_small(nodes))
            return
        mid = max_level // 2
        sep = [u for u in nodes if levels[u] == mid]
        left = [u for u in nodes if levels[u] < mid]
        right = [u for u in nodes if levels[u] > mid]
        recurse(left)
        recurse(right)
        perm.extend(order_small(sep))

    recurse(list(range(n)))
    if len(perm) != n:  # pragma: no cover - defensive
        raise RuntimeError("nested dissection lost vertices")
    return np.asarray(perm, dtype=np.int64)


def apply_ordering(a: sp.spmatrix, perm: np.ndarray) -> sp.csr_matrix:
    """Symmetrically permute ``a`` by ``perm`` (``A[perm][:, perm]``)."""
    a = sp.csr_matrix(a)
    return sp.csr_matrix(a[perm][:, perm])


#: Named orderings used by the data-set builder.
ORDERINGS = {
    "natural": natural,
    "min-degree": minimum_degree,
    "rcm": rcm,
    "nested-dissection": nested_dissection,
}
