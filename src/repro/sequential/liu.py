"""Liu's exact memory-optimal tree traversal (Liu, 1987).

The optimal traversal of a tree is *not* always a postorder: interleaving
the processing of sibling subtrees can lower the peak. Liu's theorem
states that an optimal traversal can be built recursively:

1. compute an optimal traversal of each child subtree;
2. decompose each child traversal into **hill--valley segments**: cut the
   memory profile after the (first) global hill at the (first) subsequent
   minimum, and recurse on the remainder. Within one child, hills are
   non-increasing and valleys non-decreasing, hence the *drop*
   ``h - v`` of consecutive segments is non-increasing;
3. merge the segments of all children in non-increasing drop ``h - v``
   (a k-way merge, since each child's own segment order already satisfies
   the criterion), then append the parent task.

The exchange argument behind step 3 relies on every segment having a
non-negative net memory growth (valleys are non-decreasing), which the
decomposition of step 2 guarantees.

Implementation
--------------
Segments carry their node slices as numpy arrays, so the k-way merge
concatenates array blocks instead of extending element by element, and
the memory profile (the inner kernel, recomputed at every level) is the
vectorized interleaved cumsum of :func:`~repro.sequential.traversal
.traversal_profile` -- bit-identical to the historical per-task loop.
Profiles are only recomputed over the part of the traversal that a merge
can actually change: a node with several children re-profiles the merged
subtree order once, while a node with a **single child** (every link of
a chain) updates the child's segmentation incrementally from the cached
hill/valley summaries -- because each cut's valley is the minimum of the
*entire* remaining suffix, appending the parent either preserves a
leading segment verbatim or absorbs the whole tail, which the summaries
decide exactly (golden tests pin bit-identical orders and peaks against
the recompute-from-scratch implementation).

Worst-case complexity is :math:`O(n^2)` (the same bound as the
algorithms referenced by the paper [13, 14, 9]); chains -- the
historical worst case -- now cost amortised :math:`O(n)` segment
updates. The implementation is fully iterative and is property-tested
against exhaustive search over all topological orders on small random
trees.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.tree import TaskTree
from .traversal import TraversalResult, traversal_profile

__all__ = ["liu_optimal_traversal", "hill_valley_segments", "Segment"]


@dataclass(frozen=True, eq=False)
class Segment:
    """One hill--valley segment of a traversal's memory profile.

    Attributes
    ----------
    hill:
        the maximum memory reached while the segment runs (absolute,
        relative to an empty memory at the start of the subtree).
    valley:
        the resident memory once the segment's last task completed.
    nodes:
        the tasks of the segment, in execution order (int64 array).

    Equality and hashing compare by value (``nodes`` element-wise), as
    they did when ``nodes`` was a tuple.
    """

    hill: float
    valley: float
    nodes: np.ndarray

    @property
    def drop(self) -> float:
        """``hill - valley``: the merge priority of Liu's combination."""
        return self.hill - self.valley

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Segment):
            return NotImplemented
        return (
            self.hill == other.hill
            and self.valley == other.valley
            and np.array_equal(self.nodes, other.nodes)
        )

    def __hash__(self) -> int:
        return hash((self.hill, self.valley, tuple(self.nodes.tolist())))


def _segment_profile(
    order: np.ndarray, during: np.ndarray, after: np.ndarray
) -> list[Segment]:
    """Cut a profile into hill--valley segments.

    The historical loop re-scanned the remaining suffix with
    ``argmax``/``argmin`` for every cut (quadratic in the segment
    count); precomputing the positions of running suffix maxima of
    ``during`` and suffix minima of ``after`` turns each cut into two
    ``searchsorted`` lookups while selecting exactly the same (first)
    positions.
    """
    m = order.shape[0]
    segments: list[Segment] = []
    if m == 0:
        return segments
    hill_pos = np.flatnonzero(during == np.maximum.accumulate(during[::-1])[::-1])
    valley_pos = np.flatnonzero(after == np.minimum.accumulate(after[::-1])[::-1])
    start = 0
    while start < m:
        h = int(hill_pos[np.searchsorted(hill_pos, start)])
        v = int(valley_pos[np.searchsorted(valley_pos, h)])
        segments.append(
            Segment(hill=float(during[h]), valley=float(after[v]), nodes=order[start : v + 1])
        )
        start = v + 1
    return segments


def hill_valley_segments(tree: TaskTree, order) -> list[Segment]:
    """Decompose a (sub)tree traversal into hill--valley segments.

    ``order`` must be a topological order of a subtree whose every node's
    children are also in ``order`` (so the profile starts from an empty
    memory). Cuts are made at the first minimum following the first
    global maximum, repeatedly.
    """
    # Copy: the returned segments slice this array, and callers of the
    # public API must get snapshots (as the historical tuples were), not
    # views into their own possibly-reused order buffer.
    order = np.array(
        order if isinstance(order, np.ndarray) else list(order), dtype=np.int64
    )
    during, after = traversal_profile(tree, order)
    return _segment_profile(order, during, after)


def _merge_children_segments(
    child_segments: list[list[Segment]],
) -> list[np.ndarray]:
    """Merge segments of several children in non-increasing drop order.

    Within a child the drop is non-increasing, so a k-way heap merge on
    the head segment of each child yields a globally sorted interleaving
    that preserves every child's internal order. Returns the segments'
    node blocks (concatenated by the caller in one shot).
    """
    heap: list[tuple[float, int, int]] = []
    for c, segs in enumerate(child_segments):
        if segs:
            heapq.heappush(heap, (-segs[0].drop, c, 0))
    merged: list[np.ndarray] = []
    while heap:
        _, c, k = heapq.heappop(heap)
        merged.append(child_segments[c][k].nodes)
        if k + 1 < len(child_segments[c]):
            heapq.heappush(heap, (-child_segments[c][k + 1].drop, c, k + 1))
    return merged


def _append_task(
    segs: list[Segment], i: int, during_i: float, after_i: float
) -> list[Segment]:
    """Re-segment ``child order + [i]`` from cached summaries, exactly.

    Walk the child's segments in order. For segment ``s`` (hills are
    non-increasing, so its hill is the first maximum of the remaining
    suffix): if ``during_i`` exceeds it, the first global hill moves to
    the appended task and the whole remainder fuses into one segment;
    if ``after_i`` undercuts its valley -- which is the minimum of the
    *entire* remaining suffix of the child profile, so nothing between
    can be lower -- the first subsequent minimum moves to the end and
    the remainder fuses likewise; otherwise the segment is reproduced
    verbatim. Ties keep the historical first-occurrence cuts (strict
    inequalities); the caller derived ``during_i``/``after_i`` from the
    child's cached end memory with the exact arithmetic of a fresh
    profile, so every comparison sees the same bits the historical
    re-scan compared.
    """
    out: list[Segment] = []
    k = 0
    for k, s in enumerate(segs):
        if during_i > s.hill or after_i < s.valley:
            break
        out.append(s)
    else:
        k = len(segs)
    if k < len(segs):
        hill = during_i if during_i > segs[k].hill else segs[k].hill
        tail = [t.nodes for t in segs[k:]]
        tail.append(np.array([i], dtype=np.int64))
        out.append(Segment(hill=hill, valley=after_i, nodes=np.concatenate(tail)))
    else:
        out.append(
            Segment(hill=during_i, valley=after_i, nodes=np.array([i], dtype=np.int64))
        )
    return out


def liu_optimal_traversal(tree: TaskTree) -> TraversalResult:
    """Exact minimum-memory sequential traversal of ``tree``.

    Returns the traversal and its peak memory. The peak is never larger
    than :func:`repro.sequential.postorder.optimal_postorder`'s (tested),
    and matches exhaustive search on small instances.
    """
    n = tree.n
    f = tree.f
    sizes = tree.sizes
    inputs = tree.input_sizes()
    segments: dict[int, list[Segment]] = {}
    end_mem: dict[int, float] = {}
    for i in tree.postorder().tolist():
        kids = tree.children(i)
        if kids.shape[0] > 1:
            blocks = _merge_children_segments([segments.pop(int(c)) for c in kids])
            for c in kids:  # children data no longer needed: bound memory
                del end_mem[int(c)]
            blocks.append(np.array([i], dtype=np.int64))
            order = np.concatenate(blocks)
            during, after = traversal_profile(tree, order)
            segments[i] = _segment_profile(order, during, after)
            end_mem[i] = float(after[-1])
            continue
        if kids.shape[0] == 1:
            c = int(kids[0])
            segs = segments.pop(c)
            prev = end_mem.pop(c)
        else:
            segs = []
            prev = 0.0
        # One appended profile entry, with the exact arithmetic of a
        # fresh traversal_profile over the extended order.
        during_i = float((prev + sizes[i]) + f[i])
        after_i = float((prev + f[i]) - inputs[i])
        segments[i] = _append_task(segs, i, during_i, after_i)
        end_mem[i] = after_i
    root = tree.root
    root_segments = segments[root]
    order = np.concatenate([s.nodes for s in root_segments])
    peak = max(s.hill for s in root_segments)
    if order.shape[0] != n:  # pragma: no cover - defensive
        raise RuntimeError("traversal lost tasks")
    return TraversalResult(order=order, peak_memory=float(peak))
