"""Liu's exact memory-optimal tree traversal (Liu, 1987).

The optimal traversal of a tree is *not* always a postorder: interleaving
the processing of sibling subtrees can lower the peak. Liu's theorem
states that an optimal traversal can be built recursively:

1. compute an optimal traversal of each child subtree;
2. decompose each child traversal into **hill--valley segments**: cut the
   memory profile after the (first) global hill at the (first) subsequent
   minimum, and recurse on the remainder. Within one child, hills are
   non-increasing and valleys non-decreasing, hence the *drop*
   ``h - v`` of consecutive segments is non-increasing;
3. merge the segments of all children in non-increasing drop ``h - v``
   (a k-way merge, since each child's own segment order already satisfies
   the criterion), then append the parent task.

The exchange argument behind step 3 relies on every segment having a
non-negative net memory growth (valleys are non-decreasing), which the
decomposition of step 2 guarantees.

Worst-case complexity is :math:`O(n^2)` (e.g. on chains), the same bound
as the algorithms referenced by the paper [13, 14, 9]. The implementation
is fully iterative and is property-tested against exhaustive search over
all topological orders on small random trees.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.tree import TaskTree
from .traversal import TraversalResult, traversal_profile

__all__ = ["liu_optimal_traversal", "hill_valley_segments", "Segment"]


@dataclass(frozen=True)
class Segment:
    """One hill--valley segment of a traversal's memory profile.

    Attributes
    ----------
    hill:
        the maximum memory reached while the segment runs (absolute,
        relative to an empty memory at the start of the subtree).
    valley:
        the resident memory once the segment's last task completed.
    nodes:
        the tasks of the segment, in execution order.
    """

    hill: float
    valley: float
    nodes: tuple[int, ...]

    @property
    def drop(self) -> float:
        """``hill - valley``: the merge priority of Liu's combination."""
        return self.hill - self.valley


def hill_valley_segments(tree: TaskTree, order: list[int]) -> list[Segment]:
    """Decompose a (sub)tree traversal into hill--valley segments.

    ``order`` must be a topological order of a subtree whose every node's
    children are also in ``order`` (so the profile starts from an empty
    memory). Cuts are made at the first minimum following the first
    global maximum, repeatedly.
    """
    during, after = traversal_profile(tree, order)
    segments: list[Segment] = []
    start = 0
    m = len(order)
    while start < m:
        rel_h = int(np.argmax(during[start:])) + start
        rel_v = int(np.argmin(after[rel_h:])) + rel_h
        segments.append(
            Segment(
                hill=float(during[rel_h]),
                valley=float(after[rel_v]),
                nodes=tuple(order[start : rel_v + 1]),
            )
        )
        start = rel_v + 1
    return segments


def _merge_children_segments(
    child_segments: list[list[Segment]],
) -> list[int]:
    """Merge segments of several children in non-increasing drop order.

    Within a child the drop is non-increasing, so a k-way heap merge on
    the head segment of each child yields a globally sorted interleaving
    that preserves every child's internal order.
    """
    heap: list[tuple[float, int, int]] = []
    for c, segs in enumerate(child_segments):
        if segs:
            heapq.heappush(heap, (-segs[0].drop, c, 0))
    merged: list[int] = []
    while heap:
        _, c, k = heapq.heappop(heap)
        merged.extend(child_segments[c][k].nodes)
        if k + 1 < len(child_segments[c]):
            heapq.heappush(heap, (-child_segments[c][k + 1].drop, c, k + 1))
    return merged


def liu_optimal_traversal(tree: TaskTree) -> TraversalResult:
    """Exact minimum-memory sequential traversal of ``tree``.

    Returns the traversal and its peak memory. The peak is never larger
    than :func:`repro.sequential.postorder.optimal_postorder`'s (tested),
    and matches exhaustive search on small instances.
    """
    n = tree.n
    orders: dict[int, list[int]] = {}
    segments: dict[int, list[Segment]] = {}
    for i in tree.postorder():
        i = int(i)
        kids = tree.children(i)
        if not kids:
            order = [i]
        else:
            order = _merge_children_segments([segments[c] for c in kids])
            order.append(i)
            for c in kids:  # children data no longer needed: bound memory
                del orders[c], segments[c]
        orders[i] = order
        segments[i] = hill_valley_segments(tree, order)
    root_order = orders[tree.root]
    peak = max(s.hill for s in segments[tree.root])
    if len(root_order) != n:  # pragma: no cover - defensive
        raise RuntimeError("traversal lost tasks")
    return TraversalResult(order=np.asarray(root_order, dtype=np.int64), peak_memory=float(peak))
