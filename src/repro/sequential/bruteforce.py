"""Exhaustive-search references for the sequential algorithms.

These are exponential-time oracles used only in tests and small-scale
experiments, to certify that

* :func:`repro.sequential.postorder.optimal_postorder` is optimal among
  postorders, and
* :func:`repro.sequential.liu.liu_optimal_traversal` is optimal among
  *all* topological orders.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from repro.core.tree import TaskTree
from .traversal import TraversalResult, traversal_peak_memory

__all__ = ["best_postorder_bruteforce", "best_traversal_bruteforce"]

_MAX_BRUTE_NODES = 12


def _all_postorders(tree: TaskTree, node: int):
    """Yield every postorder of the subtree rooted at ``node``."""
    kids = tree.children(node)
    if kids.shape[0] == 0:
        yield [node]
        return
    for perm in permutations(kids.tolist()):
        stacks = [list(_all_postorders(tree, c)) for c in perm]

        def combine(idx: int):
            if idx == len(stacks):
                yield []
                return
            for head in stacks[idx]:
                for tail in combine(idx + 1):
                    yield head + tail

        for body in combine(0):
            yield body + [node]


def best_postorder_bruteforce(tree: TaskTree) -> TraversalResult:
    """Minimum peak memory over *all* postorder traversals.

    Exponential in the node degrees; guarded to small trees.
    """
    if tree.n > _MAX_BRUTE_NODES:
        raise ValueError(f"brute force limited to {_MAX_BRUTE_NODES} nodes")
    best_order: list[int] | None = None
    best_peak = float("inf")
    for order in _all_postorders(tree, tree.root):
        peak = traversal_peak_memory(tree, order)
        if peak < best_peak:
            best_peak = peak
            best_order = order
    assert best_order is not None
    return TraversalResult(order=np.asarray(best_order, dtype=np.int64), peak_memory=best_peak)


def best_traversal_bruteforce(tree: TaskTree) -> TraversalResult:
    """Minimum peak memory over all topological orders (any traversal).

    Depth-first search over ready sets with branch-and-bound pruning on
    the incumbent peak. Exponential; guarded to small trees.
    """
    if tree.n > _MAX_BRUTE_NODES:
        raise ValueError(f"brute force limited to {_MAX_BRUTE_NODES} nodes")
    n = tree.n
    inputs = tree.input_sizes()
    remaining_children = np.diff(tree.child_ptr).copy()
    ready = [i for i in range(n) if remaining_children[i] == 0]
    best = {"peak": float("inf"), "order": None}
    order: list[int] = []

    def dfs(mem: float, peak: float, ready: list[int]) -> None:
        if peak >= best["peak"]:
            return
        if len(order) == n:
            best["peak"] = peak
            best["order"] = list(order)
            return
        for k in range(len(ready)):
            node = ready[k]
            new_peak = max(peak, mem + tree.sizes[node] + tree.f[node])
            if new_peak >= best["peak"]:
                continue
            new_mem = mem + tree.f[node] - inputs[node]
            parent = int(tree.parent[node])
            new_ready = ready[:k] + ready[k + 1 :]
            if parent >= 0:
                remaining_children[parent] -= 1
                if remaining_children[parent] == 0:
                    new_ready = new_ready + [parent]
            order.append(node)
            dfs(new_mem, new_peak, new_ready)
            order.pop()
            if parent >= 0:
                remaining_children[parent] += 1

    dfs(0.0, 0.0, ready)
    assert best["order"] is not None
    return TraversalResult(
        order=np.asarray(best["order"], dtype=np.int64), peak_memory=float(best["peak"])
    )
