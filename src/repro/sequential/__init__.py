"""Sequential (one-processor) memory-optimal traversal algorithms."""

from .traversal import (
    TraversalResult,
    traversal_peak_memory,
    traversal_profile,
    check_topological,
)
from .postorder import optimal_postorder, postorder_peaks, natural_postorder
from .liu import liu_optimal_traversal, hill_valley_segments, Segment
from .bruteforce import best_postorder_bruteforce, best_traversal_bruteforce
from .reductions import (
    OutTree,
    out_tree_to_in_tree,
    out_tree_peak_memory,
    reverse_schedule,
    schedule_out_tree,
)

__all__ = [
    "TraversalResult",
    "traversal_peak_memory",
    "traversal_profile",
    "check_topological",
    "optimal_postorder",
    "postorder_peaks",
    "natural_postorder",
    "liu_optimal_traversal",
    "hill_valley_segments",
    "Segment",
    "best_postorder_bruteforce",
    "best_traversal_bruteforce",
    "OutTree",
    "out_tree_to_in_tree",
    "out_tree_peak_memory",
    "reverse_schedule",
    "schedule_out_tree",
]
