"""Liu's memory-optimal postorder traversal (Liu, 1986).

Among all *postorder* traversals (each subtree is processed entirely
before moving to a sibling), the minimum peak memory is achieved by
processing the children of every node in non-increasing
:math:`M_j - f_j`, where :math:`M_j` is the optimal postorder peak of the
subtree rooted at child ``j`` and :math:`f_j` its output size.

The recurrence for the peak of node ``i`` with children
:math:`c_1, \\dots, c_k` in that order is

.. math::

   M_i = \\max\\Bigl(\\max_k \\bigl(\\textstyle\\sum_{l<k} f_{c_l} + M_{c_k}\\bigr),\\;
                    \\sum_j f_{c_j} + n_i + f_i\\Bigr).

This is the algorithm the paper uses as its sequential reference
(Section 6.1): it is optimal over general traversals in 95.8% of their
instances with an average gap of 1%, and it runs in :math:`O(n \\log n)`.

Implementation
--------------
The bottom-up recurrence is evaluated **level-synchronously**: all
children at one depth share a single segmented argsort of
``peaks - f`` over the CSR child segments (``np.lexsort`` on
``(-key, segment)``, stable, so ties keep ascending node order exactly
like the historical per-node ``sorted(..., reverse=True)``), and the
sequential prefix sums of the recurrence run as row-wise ``np.cumsum``
over degree-bucketed padded matrices -- per-row accumulation order is
identical to the per-node Python loop, so every peak is bit-identical
to the historical implementation (pinned by golden tests). The final
traversal is emitted without any DFS: with children sorted, each node's
postorder position follows in closed form from subtree sizes and a
pointer-doubling root-path sum.

Deep chain-like trees (levels too narrow for numpy sweeps to pay off)
fall back to the historical per-node loop; all computations are
iterative, so depths up to tens of thousands never hit Python's
recursion limit.
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import (
    TaskTree,
    postorder_positions_from_sibling_order,
    use_level_sweeps,
)
from .traversal import TraversalResult

__all__ = ["optimal_postorder", "postorder_peaks", "natural_postorder"]


def _postorder_peaks_loop(tree: TaskTree, peaks: np.ndarray) -> np.ndarray:
    """Per-node fallback (the historical loop) for deep, narrow trees."""
    f = tree.f
    sizes = tree.sizes
    leaf = tree.leaf_mask()
    for i in tree.postorder().tolist():
        if leaf[i]:
            continue
        ordered = sorted(
            tree.children(i).tolist(), key=lambda j: peaks[j] - f[j], reverse=True
        )
        acc = 0.0
        best = 0.0
        for j in ordered:
            best = max(best, acc + peaks[j])
            acc += f[j]
        best = max(best, acc + sizes[i] + f[i])
        peaks[i] = best
    return peaks


def postorder_peaks(tree: TaskTree) -> np.ndarray:
    """Optimal postorder peak memory ``M_i`` of every subtree.

    ``M_i`` is computed bottom-up with the recurrence above; the value at
    the root is the optimal postorder peak of the whole tree.
    """
    n = tree.n
    f = tree.f
    sizes = tree.sizes
    peaks = np.zeros(n, dtype=np.float64)
    leaf = tree.leaf_mask()
    peaks[leaf] = sizes[leaf] + f[leaf]
    if bool(leaf.all()):
        return peaks
    depth = tree.depths()
    height = int(depth.max())
    if not use_level_sweeps(height, n):
        return _postorder_peaks_loop(tree, peaks)

    ptr = tree.child_ptr
    cidx = tree.child_idx
    internal = np.flatnonzero(~leaf)
    d_int = depth[internal]
    by_depth = np.argsort(d_int, kind="stable")
    level_counts = np.bincount(d_int, minlength=height + 1)
    pos = internal.shape[0]
    for c in level_counts[::-1]:  # deepest internal level first
        c = int(c)
        if c == 0:
            continue
        parents = internal[by_depth[pos - c : pos]]
        pos -= c
        cnt = ptr[parents + 1] - ptr[parents]
        seg_end = np.cumsum(cnt)
        seg_start = seg_end - cnt
        total = int(seg_end[-1])
        seg = np.repeat(np.arange(c, dtype=np.int64), cnt)
        slot = np.arange(total, dtype=np.int64) - seg_start[seg]
        kids = cidx[ptr[parents][seg] + slot]
        key = peaks[kids] - f[kids]
        # One segmented argsort for the whole level: primary key the
        # segment, secondary -key; np.lexsort is stable, so equal keys
        # keep ascending node order -- identical tie-breaking to the
        # historical stable ``sorted(..., reverse=True)`` per node.
        kids = kids[np.lexsort((-key, seg))]
        f_k = f[kids]
        m_k = peaks[kids]
        # The recurrence's running sums, bucketed by degree class so the
        # padded rows waste at most 2x the real entries: row-wise cumsum
        # accumulates left to right, the exact addition sequence of the
        # per-node loop (bit-identical partial sums).
        width_exp = np.zeros(c, dtype=np.int64)
        tmp = cnt - 1
        while np.any(tmp):
            np.add(width_exp, (tmp > 0).astype(np.int64), out=width_exp)
            tmp >>= 1
        for u in np.unique(width_exp):
            rows = np.flatnonzero(width_exp == u)
            width = 1 << int(u)
            row_cnt = cnt[rows]
            cols = np.arange(width, dtype=np.int64)
            valid = cols[None, :] < row_cnt[:, None]
            flat = seg_start[rows][:, None] + cols[None, :]
            padded_f = np.zeros((rows.shape[0], width), dtype=np.float64)
            padded_f[valid] = f_k[flat[valid]]
            acc_incl = np.cumsum(padded_f, axis=1)
            acc_excl = np.empty_like(acc_incl)
            acc_excl[:, 0] = 0.0
            acc_excl[:, 1:] = acc_incl[:, :-1]
            cand = np.full((rows.shape[0], width), -np.inf)
            cand[valid] = acc_excl[valid] + m_k[flat[valid]]
            best = cand.max(axis=1)
            acc_all = acc_incl[np.arange(rows.shape[0]), row_cnt - 1]
            nodes = parents[rows]
            peaks[nodes] = np.maximum(best, (acc_all + sizes[nodes]) + f[nodes])
    return peaks


def optimal_postorder(tree: TaskTree) -> TraversalResult:
    """Memory-optimal postorder traversal of the whole tree.

    Returns the traversal (children of every node visited in
    non-increasing ``M_j - f_j``) together with its peak memory, which by
    construction equals ``postorder_peaks(tree)[root]``.

    The order is emitted without a DFS: one global segmented argsort of
    ``peaks - f`` over the CSR child segments fixes every sibling order,
    then each node's postorder position is ``preorder position - depth
    + subtree size - 1`` where the preorder position is a
    pointer-doubling root-path sum of ``1 + (earlier siblings' subtree
    sizes)`` -- all integer arithmetic, bit-identical to the historical
    stack-based emission.
    """
    peaks = postorder_peaks(tree)
    n = tree.n
    if n == 1:
        return TraversalResult(
            order=np.zeros(1, dtype=np.int64), peak_memory=float(peaks[0])
        )
    cidx = tree.child_idx
    key = peaks[cidx] - tree.f[cidx]
    sorted_cidx = cidx[np.lexsort((-key, tree.parent[cidx]))]
    post = postorder_positions_from_sibling_order(
        tree.parent, tree.child_ptr, sorted_cidx, tree.subtree_sizes(copy=False), tree.depths()
    )
    order = np.empty(n, dtype=np.int64)
    order[post] = np.arange(n, dtype=np.int64)
    return TraversalResult(order=order, peak_memory=float(peaks[tree.root]))


def natural_postorder(tree: TaskTree) -> TraversalResult:
    """The naive postorder (children in index order) with its peak.

    Used as an ablation baseline: the gap between this and
    :func:`optimal_postorder` shows how much the child ordering matters.
    """
    from .traversal import traversal_peak_memory

    order = tree.postorder().copy()  # writable, like every other traversal
    return TraversalResult(order=order, peak_memory=traversal_peak_memory(tree, order))
