"""Liu's memory-optimal postorder traversal (Liu, 1986).

Among all *postorder* traversals (each subtree is processed entirely
before moving to a sibling), the minimum peak memory is achieved by
processing the children of every node in non-increasing
:math:`M_j - f_j`, where :math:`M_j` is the optimal postorder peak of the
subtree rooted at child ``j`` and :math:`f_j` its output size.

The recurrence for the peak of node ``i`` with children
:math:`c_1, \\dots, c_k` in that order is

.. math::

   M_i = \\max\\Bigl(\\max_k \\bigl(\\textstyle\\sum_{l<k} f_{c_l} + M_{c_k}\\bigr),\\;
                    \\sum_j f_{c_j} + n_i + f_i\\Bigr).

This is the algorithm the paper uses as its sequential reference
(Section 6.1): it is optimal over general traversals in 95.8% of their
instances with an average gap of 1%, and it runs in :math:`O(n \\log n)`.

All computations here are iterative (no recursion) so that the deep
trees of the experimental data set (depths up to tens of thousands) are
handled without hitting Python's recursion limit.
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import TaskTree, NO_PARENT
from .traversal import TraversalResult

__all__ = ["optimal_postorder", "postorder_peaks", "natural_postorder"]


def postorder_peaks(tree: TaskTree) -> np.ndarray:
    """Optimal postorder peak memory ``M_i`` of every subtree.

    ``M_i`` is computed bottom-up with the recurrence above; the value at
    the root is the optimal postorder peak of the whole tree.
    """
    n = tree.n
    peaks = np.zeros(n, dtype=np.float64)
    for i in tree.postorder():
        i = int(i)
        kids = tree.children(i)
        if not kids:
            peaks[i] = tree.sizes[i] + tree.f[i]
            continue
        ordered = sorted(kids, key=lambda j: peaks[j] - tree.f[j], reverse=True)
        acc = 0.0
        best = 0.0
        for j in ordered:
            best = max(best, acc + peaks[j])
            acc += tree.f[j]
        best = max(best, acc + tree.sizes[i] + tree.f[i])
        peaks[i] = best
    return peaks


def optimal_postorder(tree: TaskTree) -> TraversalResult:
    """Memory-optimal postorder traversal of the whole tree.

    Returns the traversal (children of every node visited in
    non-increasing ``M_j - f_j``) together with its peak memory, which by
    construction equals ``postorder_peaks(tree)[root]``.
    """
    peaks = postorder_peaks(tree)
    n = tree.n
    order = np.empty(n, dtype=np.int64)
    idx = 0
    # DFS that expands children in sorted order; emits postorder.
    root = tree.root
    sorted_children: dict[int, list[int]] = {}
    stack: list[tuple[int, int]] = [(root, 0)]
    while stack:
        node, cursor = stack.pop()
        if node not in sorted_children:
            sorted_children[node] = sorted(
                tree.children(node), key=lambda j: peaks[j] - tree.f[j], reverse=True
            )
        kids = sorted_children[node]
        if cursor < len(kids):
            stack.append((node, cursor + 1))
            stack.append((kids[cursor], 0))
        else:
            del sorted_children[node]
            order[idx] = node
            idx += 1
    return TraversalResult(order=order, peak_memory=float(peaks[tree.root]))


def natural_postorder(tree: TaskTree) -> TraversalResult:
    """The naive postorder (children in index order) with its peak.

    Used as an ablation baseline: the gap between this and
    :func:`optimal_postorder` shows how much the child ordering matters.
    """
    from .traversal import traversal_peak_memory

    order = tree.postorder()
    return TraversalResult(order=order, peak_memory=traversal_peak_memory(tree, order))
