"""Sequential traversal evaluation: peak memory of a topological order.

Executing a tree on one processor in order :math:`\\sigma` produces the
memory profile of Section 3.1: before task ``i`` runs, the outputs of all
completed-but-unconsumed tasks are resident; running ``i`` additionally
needs ``n_i + f_i``; completing ``i`` frees ``n_i`` and the outputs of its
children.

This evaluation is the single source of truth used to compare traversal
algorithms; the event-sweep simulator reproduces it exactly for
one-processor schedules (cross-checked in tests).

The profile is computed as **one interleaved cumsum**: the historical
per-task loop performed ``mem = (mem + f_i) - inputs_i``, i.e. two float
additions per task in a fixed order. Writing the sequence
``f_0, -inputs_0, f_1, -inputs_1, ...`` and taking ``np.cumsum``
performs exactly the same additions in exactly the same order, so the
vectorized profile is bit-identical to the historical loop (pinned by
the golden-equivalence tests) while running at numpy speed -- this is
the inner kernel of Liu's exact traversal, recomputed at every tree
level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.tree import TaskTree, NO_PARENT

__all__ = ["TraversalResult", "traversal_peak_memory", "traversal_profile", "check_topological"]


@dataclass(frozen=True)
class TraversalResult:
    """A sequential traversal and its peak memory.

    Attributes
    ----------
    order:
        the tasks in execution order (a topological order of the tree).
    peak_memory:
        the peak resident memory of executing ``order`` sequentially.
    """

    order: np.ndarray
    peak_memory: float

    def __iter__(self):
        return iter((self.order, self.peak_memory))


def _as_order_array(order: Iterable[int]) -> np.ndarray:
    """Normalise any iterable of node indices to an int64 array."""
    if isinstance(order, np.ndarray):
        return order.astype(np.int64, copy=False)
    return np.fromiter(order, dtype=np.int64)


def check_topological(tree: TaskTree, order: Sequence[int]) -> None:
    """Raise ``ValueError`` unless ``order`` is a permutation of the tasks
    in which every child precedes its parent."""
    order = _as_order_array(order)
    if (
        order.shape[0] != tree.n
        or np.unique(order).shape[0] != tree.n
        or (order.shape[0] > 0 and (int(order.min()) < 0 or int(order.max()) >= tree.n))
    ):
        raise ValueError("order must be a permutation of all tasks")
    position = np.empty(tree.n, dtype=np.int64)
    position[order] = np.arange(tree.n)
    # Every child precedes its parent iff pos[j] < pos[parent[j]] for
    # every non-root j -- one vectorized gather instead of n loops.
    has_parent = tree.parent != NO_PARENT
    violated = has_parent & (position > position[np.where(has_parent, tree.parent, 0)])
    if np.any(violated):
        j = int(np.flatnonzero(violated)[0])
        raise ValueError(f"child {j} scheduled after parent {int(tree.parent[j])}")


def traversal_profile(
    tree: TaskTree, order: Iterable[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Per-task memory profile of a sequential traversal.

    Returns ``(during, after)`` aligned with ``order``: ``during[k]`` is
    the memory while the k-th task runs and ``after[k]`` the resident
    memory once it completed (its inputs and program freed, its output
    kept).
    """
    order = _as_order_array(order)
    m = order.shape[0]
    if m == 0:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64)
    f_o = tree.f[order]
    deltas = np.empty(2 * m, dtype=np.float64)
    deltas[0::2] = f_o
    deltas[1::2] = -tree.input_sizes()[order]
    resident = np.cumsum(deltas)
    after = np.ascontiguousarray(resident[1::2])
    before = np.empty(m, dtype=np.float64)
    before[0] = 0.0
    before[1:] = after[:-1]
    during = (before + tree.sizes[order]) + f_o
    return during, after


def traversal_peak_memory(tree: TaskTree, order: Iterable[int], check: bool = False) -> float:
    """Peak memory of executing ``order`` on one processor.

    Parameters
    ----------
    tree:
        the task tree.
    order:
        a topological order of the whole tree.
    check:
        when True, validate that ``order`` is topological first.
    """
    order = _as_order_array(order)
    if check:
        check_topological(tree, order)
    during, _ = traversal_profile(tree, order)
    return float(during.max()) if during.shape[0] else 0.0
