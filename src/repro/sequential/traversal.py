"""Sequential traversal evaluation: peak memory of a topological order.

Executing a tree on one processor in order :math:`\\sigma` produces the
memory profile of Section 3.1: before task ``i`` runs, the outputs of all
completed-but-unconsumed tasks are resident; running ``i`` additionally
needs ``n_i + f_i``; completing ``i`` frees ``n_i`` and the outputs of its
children.

This evaluation is the single source of truth used to compare traversal
algorithms; the event-sweep simulator reproduces it exactly for
one-processor schedules (cross-checked in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.tree import TaskTree

__all__ = ["TraversalResult", "traversal_peak_memory", "traversal_profile", "check_topological"]


@dataclass(frozen=True)
class TraversalResult:
    """A sequential traversal and its peak memory.

    Attributes
    ----------
    order:
        the tasks in execution order (a topological order of the tree).
    peak_memory:
        the peak resident memory of executing ``order`` sequentially.
    """

    order: np.ndarray
    peak_memory: float

    def __iter__(self):
        return iter((self.order, self.peak_memory))


def check_topological(tree: TaskTree, order: Sequence[int]) -> None:
    """Raise ``ValueError`` unless ``order`` is a permutation of the tasks
    in which every child precedes its parent."""
    order = np.asarray(order, dtype=np.int64)
    if order.shape[0] != tree.n or np.unique(order).shape[0] != tree.n:
        raise ValueError("order must be a permutation of all tasks")
    position = np.empty(tree.n, dtype=np.int64)
    position[order] = np.arange(tree.n)
    for i in range(tree.n):
        for j in tree.children(i):
            if position[j] > position[i]:
                raise ValueError(f"child {j} scheduled after parent {i}")


def traversal_profile(
    tree: TaskTree, order: Iterable[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Per-task memory profile of a sequential traversal.

    Returns ``(during, after)`` aligned with ``order``: ``during[k]`` is
    the memory while the k-th task runs and ``after[k]`` the resident
    memory once it completed (its inputs and program freed, its output
    kept).
    """
    order = np.asarray(list(order), dtype=np.int64)
    m = order.shape[0]
    during = np.empty(m, dtype=np.float64)
    after = np.empty(m, dtype=np.float64)
    mem = 0.0
    for k, node in enumerate(order):
        node = int(node)
        inputs = tree.input_size(node)
        during[k] = mem + tree.sizes[node] + tree.f[node]
        mem = mem + tree.f[node] - inputs
        after[k] = mem
    return during, after


def traversal_peak_memory(tree: TaskTree, order: Iterable[int], check: bool = False) -> float:
    """Peak memory of executing ``order`` on one processor.

    Parameters
    ----------
    tree:
        the task tree.
    order:
        a topological order of the whole tree.
    check:
        when True, validate that ``order`` is topological first.
    """
    order = list(order)
    if check:
        check_topological(tree, order)
    during, _ = traversal_profile(tree, order)
    return float(during.max()) if during.shape[0] else 0.0
