"""Out-tree <-> in-tree reductions (Section 1 of the paper).

The paper studies in-trees (data flows towards the root) and notes that
out-trees are "absolutely equivalent ... a solution for an in-tree can
be transformed into a solution for the corresponding out-tree by just
reversing the arrow of time". This module makes that equivalence
executable:

* an :class:`OutTree` type where each task reads ONE input file (from
  its parent) and produces one file per child;
* the reduction :func:`out_tree_to_in_tree` mapping an out-tree to the
  reversed in-tree with the same memory semantics;
* :func:`reverse_schedule` implementing the time-reversal of a schedule,
  with the property (tested) that makespan is preserved and the peak
  memory of the reversed schedule on the reversed tree equals the
  original peak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schedule import Schedule
from repro.core.tree import TaskTree, NO_PARENT

__all__ = ["OutTree", "out_tree_to_in_tree", "reverse_schedule", "schedule_out_tree"]


@dataclass(frozen=True)
class OutTree:
    """An out-tree task graph: data flows from the root towards leaves.

    Task ``i`` consumes the file ``g[i]`` produced for it by its parent
    (the root reads an external input of size ``g[root]``, possibly 0),
    runs for ``w[i]`` with program size ``sizes[i]``, and produces one
    file of size ``g[j]`` for every child ``j``.
    """

    parent: np.ndarray
    w: np.ndarray
    g: np.ndarray
    sizes: np.ndarray

    def __post_init__(self) -> None:
        parent = np.asarray(self.parent, dtype=np.int64)
        object.__setattr__(self, "parent", parent)
        object.__setattr__(self, "w", np.asarray(self.w, dtype=np.float64))
        object.__setattr__(self, "g", np.asarray(self.g, dtype=np.float64))
        object.__setattr__(self, "sizes", np.asarray(self.sizes, dtype=np.float64))
        if np.sum(parent == NO_PARENT) != 1:
            raise ValueError("out-tree needs exactly one root")

    @property
    def n(self) -> int:
        """Number of tasks."""
        return int(self.parent.shape[0])


def out_tree_to_in_tree(out_tree: OutTree) -> TaskTree:
    """The time-reversal reduction: same structure, same file sizes.

    In the reversed execution, the file task ``i`` *read* in the
    out-tree (``g[i]``, produced by its parent) becomes the file it
    *writes* for its parent in the in-tree. Programs and durations are
    unchanged. Memory profiles of corresponding schedules coincide up to
    reversal of time, so peak memory is preserved (tested property).
    """
    return TaskTree(
        parent=out_tree.parent,
        w=out_tree.w,
        f=out_tree.g,
        sizes=out_tree.sizes,
    )


def reverse_schedule(schedule: Schedule) -> Schedule:
    """Reverse the arrow of time of a schedule.

    Task ``i`` running in ``[s_i, s_i + w_i)`` is mapped to
    ``[C - s_i - w_i, C - s_i)`` where ``C`` is the makespan, on the
    same processor. On the reversed tree this turns a valid in-tree
    schedule into a valid out-tree execution and vice versa.
    """
    makespan = schedule.makespan
    new_start = makespan - schedule.start - schedule.tree.w
    return Schedule(schedule.tree, new_start, schedule.proc, schedule.p)


def out_tree_peak_memory(out_tree: OutTree, schedule: Schedule) -> float:
    """Peak memory of an out-tree execution.

    Out-tree semantics mirror the in-tree rules under time reversal: the
    file ``g[j]`` for child ``j`` is allocated when the parent *starts*
    (the parent produces one file per child during its execution) and
    freed when child ``j`` *completes*; programs are resident during
    execution; the root's external input is resident from time 0 until
    the root completes.
    """
    start = schedule.start
    end = schedule.end
    events: list[tuple[float, int, float]] = []  # (time, phase, delta)
    n = out_tree.n
    children: list[list[int]] = [[] for _ in range(n)]
    root = -1
    for i in range(n):
        p = int(out_tree.parent[i])
        if p == NO_PARENT:
            root = i
        else:
            children[p].append(i)
    for i in range(n):
        # program
        events.append((float(start[i]), 1, float(out_tree.sizes[i])))
        events.append((float(end[i]), 0, -float(out_tree.sizes[i])))
        # the files this task produces for its children
        for j in children[i]:
            events.append((float(start[i]), 1, float(out_tree.g[j])))
            events.append((float(end[j]), 0, -float(out_tree.g[j])))
    # the root's external input file
    events.append((0.0, 1, float(out_tree.g[root])))
    events.append((float(end[root]), 0, -float(out_tree.g[root])))
    events.sort(key=lambda e: (e[0], e[1]))
    peak = 0.0
    mem = 0.0
    k = 0
    while k < len(events):
        t = events[k][0]
        while k < len(events) and events[k][0] == t:
            mem += events[k][2]
            k += 1
        peak = max(peak, mem)
    return peak


def schedule_out_tree(
    out_tree: OutTree, p: int, heuristic=None
) -> tuple[Schedule, TaskTree]:
    """Schedule an out-tree via the in-tree reduction.

    Runs ``heuristic`` (default ParSubtrees) on the reversed in-tree and
    reverses the resulting schedule back. Returns the (out-tree-time)
    schedule together with the reduced in-tree on which memory and
    validity are evaluated.
    """
    if heuristic is None:
        from repro.parallel.par_subtrees import par_subtrees as heuristic
    in_tree = out_tree_to_in_tree(out_tree)
    in_schedule = heuristic(in_tree, p)
    return reverse_schedule(in_schedule), in_tree
