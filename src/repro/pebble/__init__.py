"""Pebble-Game model: complexity gadgets and counterexample trees (Section 4)."""

from .three_partition import (
    ThreePartitionInstance,
    solve_three_partition,
    random_yes_instance,
)
from .gadget import PebbleGadget, build_gadget, schedule_from_partition, decide_gadget
from .game import PebbleGame, PebbleGameError, pebbling_from_schedule
from .exact import exact_pareto_front, decide_bi_objective, EXACT_MAX_NODES
from .counterexamples import (
    Fig2Tree,
    inapproximability_tree,
    inapprox_ratio_lower_bound,
    fork_tree,
    inner_first_memory_tree,
    deepest_first_memory_tree,
)

__all__ = [
    "ThreePartitionInstance",
    "solve_three_partition",
    "random_yes_instance",
    "PebbleGadget",
    "build_gadget",
    "schedule_from_partition",
    "decide_gadget",
    "PebbleGame",
    "PebbleGameError",
    "pebbling_from_schedule",
    "exact_pareto_front",
    "decide_bi_objective",
    "EXACT_MAX_NODES",
    "Fig2Tree",
    "inapproximability_tree",
    "inapprox_ratio_lower_bound",
    "fork_tree",
    "inner_first_memory_tree",
    "deepest_first_memory_tree",
]
