"""Exact bi-objective solver for the Pebble-Game model (tiny instances).

The paper proves BiObjectiveParallelTreeScheduling NP-complete, so no
polynomial algorithm exists -- but on toy trees an exhaustive search is
affordable and gives the *exact* Pareto front of (makespan, peak memory)
points, something the paper could not report. The test suite uses it to
measure the heuristics' true optimality gaps, and to decide the
scheduling question of Definition 1 directly.

State space: the search is over *step-synchronous* schedules (integer
start times; all running tasks advance together) -- the class every
scheduler in this library produces on unit-weight trees, and the class
the paper's own proofs reason about. A state is the set of finished
tasks; each step picks at most ``p`` ready tasks. Breadth-first search
over steps yields the minimum step count per memory bound, and a sweep
over bounds the full front. Exponential in ``n``; guarded to small
trees.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.schedule import Schedule
from repro.core.tree import TaskTree, NO_PARENT

__all__ = ["exact_pareto_front", "decide_bi_objective", "EXACT_MAX_NODES"]

#: Hard node-count guard for the exponential search.
EXACT_MAX_NODES = 14


def _check_pebble(tree: TaskTree) -> None:
    if (
        np.any(tree.w != 1)
        or np.any(tree.f != 1)
        or np.any(tree.sizes != 0)
    ):
        raise ValueError("exact solver requires the Pebble Game model")
    if tree.n > EXACT_MAX_NODES:
        raise ValueError(f"exact solver limited to {EXACT_MAX_NODES} nodes")


def _resident(tree: TaskTree, finished: frozenset[int]) -> frozenset[int]:
    """Outputs resident after `finished` completed: finished tasks whose
    parent has not finished."""
    return frozenset(
        i
        for i in finished
        if tree.parent[i] == NO_PARENT or int(tree.parent[i]) not in finished
    )


def _ready(tree: TaskTree, finished: frozenset[int]) -> list[int]:
    return [
        i
        for i in range(tree.n)
        if i not in finished
        and all(c in finished for c in tree.children(i))
    ]


def _search_min_steps(tree: TaskTree, p: int, memory_bound: float) -> list[list[int]] | None:
    """Minimum number of steps to finish under the memory bound, as the
    list of per-step task groups, or None if infeasible."""
    start: frozenset[int] = frozenset()
    frontier: dict[frozenset[int], list[list[int]]] = {start: []}
    seen = {start}
    while frontier:
        nxt: dict[frozenset[int], list[list[int]]] = {}
        for finished, steps in frontier.items():
            ready = _ready(tree, finished)
            resident = _resident(tree, finished)
            for k in range(1, min(p, len(ready)) + 1):
                for group in combinations(ready, k):
                    # transient memory: resident outputs + new outputs
                    transient = len(resident | set(group))
                    if transient > memory_bound + 1e-9:
                        continue
                    new_finished = frozenset(finished | set(group))
                    if new_finished in seen:
                        continue
                    if len(new_finished) == tree.n:
                        return steps + [list(group)]
                    if new_finished not in nxt:
                        nxt[new_finished] = steps + [list(group)]
        seen.update(nxt)
        frontier = nxt
    return None


def _schedule_from_steps(tree: TaskTree, p: int, steps: list[list[int]]) -> Schedule:
    start = np.empty(tree.n, dtype=np.float64)
    proc = np.empty(tree.n, dtype=np.int64)
    for t, group in enumerate(steps):
        for q, node in enumerate(group):
            start[node] = float(t)
            proc[node] = q
    return Schedule(tree, start, proc, p)


def decide_bi_objective(
    tree: TaskTree, p: int, memory_bound: float, makespan_bound: float
) -> Schedule | None:
    """Decide Definition 1's question exactly (Pebble Game model).

    Returns a witness schedule with peak <= ``memory_bound`` and
    makespan <= ``makespan_bound``, or None if none exists.
    """
    _check_pebble(tree)
    steps = _search_min_steps(tree, p, memory_bound)
    if steps is None or len(steps) > makespan_bound + 1e-9:
        return None
    return _schedule_from_steps(tree, p, steps)


def exact_pareto_front(tree: TaskTree, p: int) -> list[tuple[float, float, Schedule]]:
    """The exact Pareto front of (makespan, peak memory) pairs.

    Sweeps the memory bound from the absolute floor (the largest single
    working set) to ``n`` (everything resident) and records the minimum
    achievable makespan at each level, keeping the non-dominated pairs.
    """
    _check_pebble(tree)
    from repro.core.simulator import peak_memory

    floor = max(tree.degree(i) + 1 for i in range(tree.n))
    candidates: list[tuple[float, float, Schedule]] = []
    for bound in range(tree.n, floor - 1, -1):
        steps = _search_min_steps(tree, p, float(bound))
        if steps is None:
            break  # feasibility is monotone in the bound
        schedule = _schedule_from_steps(tree, p, steps)
        # measure the *actual* peak, which may be below the bound
        candidates.append((float(len(steps)), peak_memory(schedule), schedule))
    # keep the non-dominated pairs: sort by (makespan, memory) and sweep
    # for strictly decreasing memory.
    front: list[tuple[float, float, Schedule]] = []
    for mk, mem, sch in sorted(candidates, key=lambda x: (x[0], x[1])):
        if not front or mem < front[-1][1] - 1e-9:
            front.append((mk, mem, sch))
    return front
