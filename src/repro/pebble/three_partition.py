"""3-Partition instances: the source problem of the NP-completeness proof.

The reduction of Theorem 1 maps a 3-Partition instance -- ``3m`` integers
``a_i`` with ``sum(a) = m*B`` and ``B/4 < a_i < B/2`` -- to a
tree-scheduling instance. This module provides the instance type, a
generator of YES instances, and an exact (exponential) solver used to
drive both sides of the reduction in tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

__all__ = ["ThreePartitionInstance", "solve_three_partition", "random_yes_instance"]


@dataclass(frozen=True)
class ThreePartitionInstance:
    """A (restricted) 3-Partition instance.

    ``values`` are the ``3m`` integers; ``target`` is ``B``. The
    constructor checks the strong-NP-completeness restriction
    ``B/4 < a_i < B/2`` and ``sum = m*B``, which the reduction requires
    (it forces every subset summing to ``B`` to have exactly 3 elements).
    """

    values: tuple[int, ...]
    target: int

    def __post_init__(self) -> None:
        if len(self.values) % 3 != 0 or not self.values:
            raise ValueError("need 3m values")
        m = len(self.values) // 3
        if sum(self.values) != m * self.target:
            raise ValueError("values must sum to m*B")
        for a in self.values:
            if not (self.target / 4 < a < self.target / 2):
                raise ValueError(f"value {a} violates B/4 < a < B/2 (B={self.target})")

    @property
    def m(self) -> int:
        """Number of required subsets."""
        return len(self.values) // 3


def solve_three_partition(
    instance: ThreePartitionInstance,
) -> list[tuple[int, int, int]] | None:
    """Exact solver: return index triples partitioning the values into
    subsets of sum ``B``, or None when the instance is a NO instance.

    Backtracking over triples containing the smallest unassigned index;
    exponential, fine for the small instances used in tests/benchmarks.
    """
    values = instance.values
    B = instance.target
    n = len(values)

    def backtrack(unassigned: frozenset[int]) -> list[tuple[int, int, int]] | None:
        if not unassigned:
            return []
        first = min(unassigned)
        rest = sorted(unassigned - {first})
        for j, k in combinations(rest, 2):
            if values[first] + values[j] + values[k] == B:
                sub = backtrack(unassigned - {first, j, k})
                if sub is not None:
                    return [(first, j, k)] + sub
        return None

    return backtrack(frozenset(range(n)))


def random_yes_instance(
    m: int, B: int, rng: np.random.Generator | None = None, max_tries: int = 10_000
) -> ThreePartitionInstance:
    """Generate a random YES instance with ``m`` triples of sum ``B``.

    Each triple is drawn by picking two values in the open interval
    ``(B/4, B/2)`` whose complement also lies in the interval.
    """
    rng = rng or np.random.default_rng()
    lo = B // 4 + 1
    hi = (B - 1) // 2  # largest integer strictly below B/2
    if B % 4 == 0:
        lo = B // 4 + 1
    if lo > hi:
        raise ValueError(f"no integers strictly between B/4 and B/2 for B={B}")
    values: list[int] = []
    for _ in range(m):
        for _ in range(max_tries):
            x = int(rng.integers(lo, hi + 1))
            y = int(rng.integers(lo, hi + 1))
            z = B - x - y
            if lo <= z <= hi:
                values.extend((x, y, z))
                break
        else:  # pragma: no cover - generator exhaustion
            raise RuntimeError("could not sample a YES triple")
    perm = rng.permutation(len(values))
    return ThreePartitionInstance(tuple(int(values[i]) for i in perm), B)
