"""Constructive trees of the paper's negative results (Figures 2-5).

Each builder returns the exact tree of the corresponding figure in the
Pebble-Game model, plus closed-form values of the quantities the paper
derives for it. The theory benchmarks re-measure those quantities with
the actual heuristics and the simulator.

* :func:`inapproximability_tree` -- Figure 2 / Theorem 2: no algorithm is
  simultaneously an :math:`\\alpha`-approximation for makespan and a
  :math:`\\beta`-approximation for peak memory.
* :func:`fork_tree` -- Figure 3: ParSubtrees is (at best) a
  ``p``-approximation for makespan.
* :func:`inner_first_memory_tree` -- Figure 4: ParInnerFirst's memory is
  unbounded relative to the sequential optimum.
* :func:`deepest_first_memory_tree` -- Figure 5: ParDeepestFirst's memory
  grows with the number of chains while the sequential optimum stays 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tree import TaskTree, NO_PARENT

__all__ = [
    "Fig2Tree",
    "inapproximability_tree",
    "inapprox_ratio_lower_bound",
    "fork_tree",
    "inner_first_memory_tree",
    "deepest_first_memory_tree",
]


# ----------------------------------------------------------------------
# Figure 2 -- Theorem 2 (inapproximability)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig2Tree:
    """The Figure 2 tree and the paper's closed-form facts about it.

    Attributes
    ----------
    tree:
        the Pebble-Game tree: ``n`` identical subtrees below the root.
    n_subtrees, delta:
        the construction parameters ``n`` and ``delta``.
    optimal_makespan:
        critical-path length ``delta + 2`` (achievable with unboundedly
        many processors).
    optimal_peak_memory:
        ``n + delta`` (proof of Theorem 2).
    descendants_per_subtree:
        ``(delta^2 + 5*delta - 4) / 2`` descendants of each ``cp_1^i``.
    """

    tree: TaskTree
    n_subtrees: int
    delta: int
    optimal_makespan: float
    optimal_peak_memory: float
    descendants_per_subtree: int


def inapproximability_tree(n: int, delta: int) -> Fig2Tree:
    """Build the Figure 2 tree with ``n`` subtrees and parameter ``delta``.

    Each subtree hangs below the root as a chain
    ``cp_1 <- cp_2 <- ... <- cp_{delta-1}``; node ``cp_j`` additionally
    has the child ``d_j`` which has ``delta - j + 1`` leaf children; the
    last chain node ``cp_{delta-1}`` also has the child ``b_delta`` whose
    single child is the leaf ``b_{delta+1}``.
    """
    if delta < 2:
        raise ValueError("delta must be at least 2")
    parents: list[int] = [NO_PARENT]  # 0 = root
    for _ in range(n):
        # chain cp_1 .. cp_{delta-1}
        cp = []
        for j in range(1, delta):
            parent = 0 if j == 1 else cp[-1]
            parents.append(parent)
            cp.append(len(parents) - 1)
        for j in range(1, delta):
            d = len(parents)
            parents.append(cp[j - 1])  # d_j
            for _ in range(delta - j + 1):
                parents.append(d)  # leaves a^{i,j}
        parents.append(cp[-1])  # b_delta
        b_delta = len(parents) - 1
        parents.append(b_delta)  # b_{delta+1}
    tree = TaskTree.pebble_game(parents)
    return Fig2Tree(
        tree=tree,
        n_subtrees=n,
        delta=delta,
        optimal_makespan=float(delta + 2),
        optimal_peak_memory=float(n + delta),
        descendants_per_subtree=(delta * delta + 5 * delta - 4) // 2,
    )


def inapprox_ratio_lower_bound(n: int, delta: int, alpha: float) -> float:
    """The paper's lower bound on the memory ratio of any
    ``alpha``-approximation (proof of Theorem 2):

    .. math::

       lb = \\frac{n(\\delta^2 + 5\\delta - 6)}
                  {(\\alpha(\\delta+2) - 2)(n + \\delta)} .

    With ``delta = n^2`` this diverges as ``n`` grows, so no
    ``(alpha, beta)`` pair can exist.
    """
    return (n * (delta**2 + 5 * delta - 6)) / ((alpha * (delta + 2) - 2) * (n + delta))


# ----------------------------------------------------------------------
# Figure 3 -- ParSubtrees makespan worst case
# ----------------------------------------------------------------------
def fork_tree(p: int, k: int) -> TaskTree:
    """Figure 3: a root with ``p * k`` unit-weight leaves.

    The optimal makespan is ``k + 1``; ParSubtrees achieves
    ``p(k-1) + 2``, so its ratio tends to ``p`` as ``k`` grows.
    """
    n_leaves = p * k
    parents = [NO_PARENT] + [0] * n_leaves
    return TaskTree.pebble_game(parents)


# ----------------------------------------------------------------------
# Figure 4 -- ParInnerFirst memory blow-up
# ----------------------------------------------------------------------
def inner_first_memory_tree(p: int, k: int) -> TaskTree:
    """Figure 4: ``k - 1`` join nodes in a chain, each with ``p - 1``
    leaves, the last one continued by a chain so that the longest chain
    has length ``2k``.

    The sequential optimum (deepest-first) needs ``p + 1``; with ``p``
    processors ParInnerFirst has processed every leaf before the first
    join can execute, leaving ``(k-1)(p-1) + 1`` files in memory.
    """
    if k < 2 or p < 2:
        raise ValueError("need k >= 2 and p >= 2")
    parents: list[int] = [NO_PARENT]  # 0 = root (the topmost join's parent)
    prev = 0
    for _ in range(k - 1):  # join nodes, top to bottom
        parents.append(prev)
        join = len(parents) - 1
        for _ in range(p - 1):
            parents.append(join)  # the join's leaves
        prev = join
    # tail chain below the last join: longest root-to-leaf chain = 2k
    # (root + (k-1) joins + k+... nodes); length counted in nodes.
    for _ in range(2 * k - (k - 1) - 1):
        parents.append(prev)
        prev = len(parents) - 1
    return TaskTree.pebble_game(parents)


# ----------------------------------------------------------------------
# Figure 5 -- ParDeepestFirst memory blow-up
# ----------------------------------------------------------------------
def deepest_first_memory_tree(n_chains: int, chain_length: int) -> TaskTree:
    """Figure 5: a comb of equally-deep long chains.

    A spine ``s_1 (root) <- s_2 <- ... <- s_c`` with ``c = n_chains``;
    spine node ``s_i`` carries a hanging chain sized so that every
    chain's bottom leaf sits at the same depth
    ``L = n_chains + chain_length``. The optimal sequential traversal
    (deepest-first) needs exactly 3 units of memory -- process the inner
    spine subtree (1 retained file), then the local chain (peak
    ``1 + 2``), then the spine node (2 inputs + 1 output) -- whereas
    ParDeepestFirst sees all chain leaves at the deepest level, advances
    every chain in lockstep and keeps about ``n_chains`` files resident.
    """
    if n_chains < 2:
        raise ValueError("need at least two chains")
    if chain_length < 1:
        raise ValueError("chain_length must be >= 1")
    depth_target = n_chains + chain_length
    parents: list[int] = [NO_PARENT]
    spine = [0]
    for _ in range(n_chains - 1):
        parents.append(spine[-1])
        spine.append(len(parents) - 1)
    for i, node in enumerate(spine):  # hanging chain below spine node s_{i+1}
        prev = node
        for _ in range(depth_target - (i + 1)):
            parents.append(prev)
            prev = len(parents) - 1
    return TaskTree.pebble_game(parents)
