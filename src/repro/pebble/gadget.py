"""The NP-completeness gadget of Theorem 1 (Figure 1).

From a 3-Partition instance (``3m`` values ``a_i``, target ``B``) the
reduction builds a Pebble-Game tree: a root with ``3m`` children ``N_i``,
where ``N_i`` has ``3m * a_i`` leaf children. The scheduling question --
is there a schedule on ``p = 3mB`` processors with peak memory at most
``B_mem = 3mB + 3m`` and makespan at most ``B_Cmax = 2m + 1`` -- is a YES
exactly when the 3-Partition instance is a YES.

This module builds the gadget, derives the schedule of the forward
direction of the proof from a partition, and decides the scheduling
question by solving the underlying 3-Partition (the backward direction
of the proof shows the two are equivalent).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schedule import Schedule
from repro.core.tree import TaskTree, NO_PARENT
from .three_partition import ThreePartitionInstance, solve_three_partition

__all__ = ["PebbleGadget", "build_gadget", "schedule_from_partition", "decide_gadget"]


@dataclass(frozen=True)
class PebbleGadget:
    """The reduction's tree together with its scheduling bounds.

    Attributes
    ----------
    tree:
        the Pebble-Game task tree of Figure 1.
    instance:
        the source 3-Partition instance.
    p:
        number of processors of the question (``3mB``).
    memory_bound:
        ``B_mem = 3mB + 3m``.
    makespan_bound:
        ``B_Cmax = 2m + 1``.
    inner:
        node index of ``N_i`` for each value ``a_i``.
    leaves_of:
        leaf node indices below each ``N_i``.
    """

    tree: TaskTree
    instance: ThreePartitionInstance
    p: int
    memory_bound: float
    makespan_bound: float
    inner: tuple[int, ...]
    leaves_of: tuple[tuple[int, ...], ...]

    @property
    def root(self) -> int:
        """Index of the gadget's root node."""
        return self.tree.root


def build_gadget(instance: ThreePartitionInstance) -> PebbleGadget:
    """Build the Figure 1 tree for a 3-Partition instance."""
    m = instance.m
    B = instance.target
    three_m = 3 * m
    # Node layout: 0 = root; 1..3m = the N_i; leaves afterwards.
    parents: list[int] = [NO_PARENT]
    inner: list[int] = []
    leaves_of: list[tuple[int, ...]] = []
    for _ in range(three_m):
        parents.append(0)
        inner.append(len(parents) - 1)
    for i, a in enumerate(instance.values):
        first = len(parents)
        for _ in range(three_m * a):
            parents.append(inner[i])
        leaves_of.append(tuple(range(first, len(parents))))
    tree = TaskTree.pebble_game(parents)
    return PebbleGadget(
        tree=tree,
        instance=instance,
        p=three_m * B,
        memory_bound=float(three_m * B + three_m),
        makespan_bound=float(2 * m + 1),
        inner=tuple(inner),
        leaves_of=tuple(leaves_of),
    )


def schedule_from_partition(
    gadget: PebbleGadget, partition: list[tuple[int, int, int]]
) -> Schedule:
    """The forward-direction schedule of Theorem 1.

    Given a partition ``S_1..S_m`` (triples of value indices), build the
    step schedule of the proof: at step ``2n+1`` process all ``3mB``
    leaves of the triple ``S_{n+1}``; at step ``2n+2`` process its three
    ``N`` nodes; at step ``2m+1`` process the root. The resulting
    schedule has makespan exactly ``B_Cmax`` and peak memory exactly
    ``B_mem`` (asserted in tests via the simulator).
    """
    tree = gadget.tree
    n = tree.n
    covered = [i for triple in partition for i in triple]
    if sorted(covered) != list(range(len(gadget.instance.values))):
        raise ValueError("partition must cover every value index exactly once")
    B = gadget.instance.target
    for triple in partition:
        if sum(gadget.instance.values[i] for i in triple) != B:
            raise ValueError(f"triple {triple} does not sum to B={B}")
    start = np.empty(n, dtype=np.float64)
    proc = np.empty(n, dtype=np.int64)
    for step, triple in enumerate(partition):
        t_leaves = float(2 * step)  # step 2n+1 in 1-based step numbering
        q = 0
        for idx in triple:
            for leaf in gadget.leaves_of[idx]:
                start[leaf] = t_leaves
                proc[leaf] = q
                q += 1
        if q != gadget.p:
            raise ValueError(f"triple {triple} does not cover the {gadget.p} processors")
        for k, idx in enumerate(triple):
            start[gadget.inner[idx]] = t_leaves + 1.0
            proc[gadget.inner[idx]] = k
    start[gadget.root] = float(2 * len(partition))
    proc[gadget.root] = 0
    return Schedule(tree, start, proc, gadget.p)


def decide_gadget(gadget: PebbleGadget) -> Schedule | None:
    """Decide the BiObjectiveParallelTreeScheduling question of the gadget.

    Theorem 1 shows the question is equivalent to the source 3-Partition
    instance, so the decision runs the exact 3-Partition solver and, on a
    YES, materialises the witness schedule.
    """
    partition = solve_three_partition(gadget.instance)
    if partition is None:
        return None
    return schedule_from_partition(gadget, partition)
