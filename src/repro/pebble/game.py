"""An explicit Pebble-Game engine (Section 4's model, played move by move.

The paper's complexity results live in the Pebble Game model: placing a
pebble on a node = loading its unit output file; a node can be pebbled
(in one time step) only if all its children carry pebbles; pebbles on
the children can be removed once the parent is pebbled; the number of
pebbles in play is the memory in use.

This module implements the game as a state machine with explicit moves,
plus the bridge theorems to the scheduling model:

* a valid *parallel pebbling strategy* (at most ``p`` nodes pebbled per
  step) corresponds exactly to a unit-time schedule, with
  pebbles-in-play equal to the simulator's resident memory;
* :func:`pebbling_from_schedule` converts any Pebble-Game-model schedule
  into a strategy, and :meth:`PebbleGame.max_pebbles` then equals the
  simulator's peak (property-tested).

Useful for teaching, for cross-checking the simulator's accounting on
the unit-weight model, and for experimenting with game variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.schedule import Schedule
from repro.core.tree import TaskTree

__all__ = ["PebbleGame", "PebbleGameError", "pebbling_from_schedule"]


class PebbleGameError(RuntimeError):
    """Raised on an illegal move."""


@dataclass
class PebbleGame:
    """State of a pebble game on a tree (no re-pebbling allowed).

    The game proceeds in steps; each step pebbles a set of nodes
    simultaneously (all legality checks against the state *before* the
    step, as in the paper's step-synchronous schedules) and then removes
    the pebbles freed by the new placements.
    """

    tree: TaskTree
    pebbled: np.ndarray = field(init=False)  # has the node ever been pebbled
    in_play: np.ndarray = field(init=False)  # does the node carry a pebble now
    steps: int = field(init=False, default=0)
    _max_in_play: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if np.any(self.tree.w != 1) or np.any(self.tree.f != 1) or np.any(
            self.tree.sizes != 0
        ):
            raise PebbleGameError(
                "the pebble game requires the Pebble Game model "
                "(w = f = 1, sizes = 0); use TaskTree.pebble_game(...)"
            )
        self.pebbled = np.zeros(self.tree.n, dtype=bool)
        self.in_play = np.zeros(self.tree.n, dtype=bool)

    # ------------------------------------------------------------------
    def legal(self, node: int) -> bool:
        """Can ``node`` be pebbled in the next step?"""
        if self.pebbled[node]:
            return False
        return all(self.in_play[c] for c in self.tree.children(node))

    def play_step(self, nodes: list[int], p: int | None = None) -> int:
        """Pebble ``nodes`` simultaneously; return pebbles now in play.

        With ``p`` given, at most ``p`` nodes may be pebbled in one step
        (the processor constraint). During the step the children's
        pebbles are still required (the input files are read while the
        output is produced), so the transient count includes both; the
        children's pebbles are removed at the end of the step.
        """
        if p is not None and len(nodes) > p:
            raise PebbleGameError(f"{len(nodes)} placements exceed p={p}")
        if len(set(nodes)) != len(nodes):
            raise PebbleGameError("duplicate placements in one step")
        for node in nodes:
            if not self.legal(node):
                raise PebbleGameError(f"illegal placement on node {node}")
        # transient: all previous pebbles + the new ones
        for node in nodes:
            self.in_play[node] = True
            self.pebbled[node] = True
        transient = int(self.in_play.sum())
        self._max_in_play = max(self._max_in_play, transient)
        # end of step: inputs of the newly pebbled nodes are discarded
        for node in nodes:
            for c in self.tree.children(node):
                self.in_play[c] = False
        self.steps += 1
        return transient

    def finished(self) -> bool:
        """Has the root been pebbled?"""
        return bool(self.pebbled[self.tree.root])

    def max_pebbles(self) -> int:
        """Maximum number of pebbles simultaneously in play so far."""
        return self._max_in_play


def pebbling_from_schedule(schedule: Schedule) -> PebbleGame:
    """Replay a Pebble-Game-model schedule as a pebbling strategy.

    Tasks are grouped by start time into steps (the model has unit
    durations, so a valid schedule is step-synchronous up to irrelevant
    shifts). The resulting game's :meth:`~PebbleGame.max_pebbles` equals
    the simulator's peak memory on the same schedule -- the bridge
    between the two formalisms, asserted in tests.
    """
    game = PebbleGame(schedule.tree)
    start = schedule.start
    for t in sorted(set(float(s) for s in start)):
        nodes = [int(i) for i in np.flatnonzero(np.abs(start - t) < 1e-12)]
        game.play_step(nodes, p=schedule.p)
    if not game.finished():  # pragma: no cover - defensive
        raise PebbleGameError("schedule did not pebble the root")
    return game
