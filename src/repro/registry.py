"""Central algorithm registry: one catalogue of every scheduler.

Historically the algorithm catalogue was scattered: the four paper
heuristics lived in ``parallel/heuristics.py::HEURISTICS``, the ablation
variants in ``parallel/variants.py::VARIANTS``, and the sequential
traversals plus the memory-capped extension were wired into the CLI by
ad-hoc per-command imports. This module is now the single source of
truth; the old names remain as thin views over it.

Every entry is an :class:`Algorithm` with metadata (name, kind, tunable
parameters with defaults, one-line doc) and a uniform ``run(tree, p)``
entry point returning a :class:`~repro.core.schedule.Schedule`:

* ``kind="parallel"`` algorithms are called as ``fn(tree, p, **params)``;
* ``kind="sequential"`` algorithms are traversals ``fn(tree, **params)``
  returning a :class:`~repro.sequential.traversal.TraversalResult`,
  wrapped into the back-to-back one-processor schedule.

The registry is populated lazily on first access so that importing
:mod:`repro.registry` never drags in the whole package (and so that the
heuristic modules may themselves import this module without cycles).

>>> from repro import registry
>>> sorted(registry.names("sequential"))
['liu_optimal_traversal', 'natural_postorder', 'optimal_postorder']
>>> registry.run("ParDeepestFirst", tree, p=4)    # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.prepared import PreparedTree, tree_of
from repro.core.schedule import Schedule
from repro.core.tree import TaskTree

__all__ = [
    "Algorithm",
    "apply_backend",
    "register",
    "get",
    "names",
    "algorithms",
    "run",
]


@dataclass(frozen=True)
class Algorithm:
    """One registered scheduling algorithm and its metadata.

    Attributes
    ----------
    name:
        registry key (the paper's name for parallel heuristics, the
        function name for sequential traversals).
    kind:
        ``"parallel"`` (``fn(tree, p, **params)`` -> Schedule) or
        ``"sequential"`` (``fn(tree, **params)`` -> TraversalResult).
    fn:
        the underlying callable.
    params:
        tunable keyword parameters with their defaults; ``run`` accepts
        overrides for exactly these keys.
    doc:
        one-line description shown by ``repro algos``.
    accepts_prepared:
        True when ``fn`` understands a
        :class:`~repro.core.prepared.PreparedTree` first argument (the
        engine-based schedulers); others transparently receive the
        underlying :class:`TaskTree`, so ``run`` works uniformly with
        either input form -- which is what gives every catalogued
        algorithm campaign-grid support for free.
    sweep_spec:
        optional builder ``(prepared, p, **params) ->``
        :class:`~repro.core.engine.BatchScenario` describing the
        algorithm as one scenario of a megabatch kernel call (every
        engine-backed scheduler has one). Algorithms without a spec
        (the subtree-splitting family, sequential traversals) simply
        run unbatched; :meth:`batch_spec` is the public entry point.
    """

    name: str
    kind: str
    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    doc: str = ""
    accepts_prepared: bool = False
    sweep_spec: Callable[..., Any] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("sequential", "parallel"):
            raise ValueError(f"unknown kind {self.kind!r}")

    def run(
        self, tree: TaskTree | PreparedTree, p: int = 1, **overrides: Any
    ) -> Schedule:
        """Run the algorithm on ``(tree, p)`` and return its schedule.

        Sequential traversals execute back-to-back on processor 0 of the
        ``p``-processor platform. ``overrides`` must be a subset of the
        registered ``params``. ``tree`` may be bare or prepared; the
        schedule is bit-identical either way.
        """
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise TypeError(
                f"{self.name} accepts params {sorted(self.params)}, "
                f"got unknown {sorted(unknown)}"
            )
        merged = {**self.params, **overrides}
        if self.kind == "sequential":
            result = self.fn(tree_of(tree), **merged)
            return Schedule.sequential(tree_of(tree), result.order, p=max(1, p))
        target = tree if self.accepts_prepared else tree_of(tree)
        return self.fn(target, p, **merged)

    def batch_spec(self, tree: TaskTree | PreparedTree, p: int = 1, **overrides: Any):
        """The algorithm as one megabatch scenario, or None.

        Returns the :class:`~repro.core.engine.BatchScenario`
        equivalent to ``run(tree, p, **overrides)`` -- same rank
        permutation, cap, activation order and mode, so sweeping the
        scenario through :func:`~repro.core.engine.sweep_batch` is
        bit-identical to the unbatched call. Algorithms without a
        registered ``sweep_spec`` return None (callers fall back to
        :meth:`run`). The ``backend`` parameter, when declared, is a
        dispatch knob of the whole batch rather than one scenario, so
        it is stripped here; pass it to ``sweep_batch`` instead.
        """
        if self.sweep_spec is None:
            return None
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise TypeError(
                f"{self.name} accepts params {sorted(self.params)}, "
                f"got unknown {sorted(unknown)}"
            )
        merged = {**self.params, **overrides}
        merged.pop("backend", None)
        from repro.core.prepared import as_prepared

        return self.sweep_spec(as_prepared(tree), p, **merged)


_REGISTRY: dict[str, Algorithm] = {}
_populated = False


def register(algorithm: Algorithm) -> Algorithm:
    """Add an algorithm to the registry (names must be unique)."""
    if algorithm.name in _REGISTRY:
        raise ValueError(f"algorithm {algorithm.name!r} already registered")
    _REGISTRY[algorithm.name] = algorithm
    return algorithm


def _memory_bounded(
    tree: TaskTree | PreparedTree,
    p: int,
    cap_factor: float = 2.0,
    mode: str = "strict",
    backend: str | None = None,
):
    """Memory-capped list scheduling at ``cap_factor`` x the sequential
    optimal-postorder peak (the natural scale-free parameterisation)."""
    from repro.parallel.memory_bounded import memory_bounded_schedule

    if isinstance(tree, PreparedTree):
        res = tree.optimal()
    else:
        from repro.sequential.postorder import optimal_postorder

        res = optimal_postorder(tree)
    return memory_bounded_schedule(
        tree, p, cap_factor * res.peak_memory, order=res.order, mode=mode, backend=backend
    )


def _memory_aware_subtrees(
    tree: TaskTree | PreparedTree, p: int, cap_factor: float = 2.0
):
    """ParSubtrees constrained to ``cap_factor`` x the sequential peak."""
    from repro.parallel.memory_aware_subtrees import par_subtrees_memory_aware

    if isinstance(tree, PreparedTree):
        peak = tree.optimal().peak_memory
    else:
        from repro.sequential.postorder import optimal_postorder

        peak = optimal_postorder(tree).peak_memory
    return par_subtrees_memory_aware(tree_of(tree), p, cap_factor * peak)


def _populate() -> None:
    """Register the built-in catalogue (idempotent, import-cycle safe)."""
    global _populated
    if _populated:
        return
    _populated = True
    from repro.core.engine import BatchScenario
    from repro.parallel.par_subtrees import par_subtrees, par_subtrees_optim
    from repro.parallel.par_inner_first import par_inner_first, par_inner_first_rank
    from repro.parallel.par_deepest_first import (
        par_deepest_first,
        par_deepest_first_rank,
    )
    from repro.parallel.variants import (
        par_hop_deepest_first,
        par_hop_deepest_first_rank,
        par_inner_first_naive_order,
        par_inner_first_naive_rank,
    )
    from repro.sequential.postorder import natural_postorder, optimal_postorder
    from repro.sequential.liu import liu_optimal_traversal

    for name, fn, doc in (
        ("ParSubtrees", par_subtrees, "split into subtrees, one per processor (Section 5.1)"),
        ("ParSubtreesOptim", par_subtrees_optim, "ParSubtrees with work-packing optimisation"),
    ):
        register(Algorithm(name=name, kind="parallel", fn=fn, doc=doc))

    def _rank_spec(rank_fn):
        """Sweep spec of an uncapped list heuristic: its rank, cached on
        the prepared bundle under the heuristic's priority-spec key."""

        def spec(tree: PreparedTree, p: int) -> BatchScenario:
            return BatchScenario(rank=rank_fn(tree), p=p)

        return spec

    def _memory_bounded_spec(
        tree: PreparedTree, p: int, cap_factor: float = 2.0, mode: str = "strict"
    ) -> BatchScenario:
        # Mirrors _memory_bounded's prepared path exactly: the shared
        # optimal postorder as sigma, its rank permutation as priority,
        # the cap scaled off the sequential peak.
        import numpy as np

        res = tree.optimal()
        return BatchScenario(
            rank=tree.sigma_rank(),
            p=p,
            cap=cap_factor * res.peak_memory,
            order=np.asarray(res.order, dtype=np.int64),
            mode=mode,
        )

    # The list schedulers all run on the unified engine, whose sweep
    # backend ("auto"/"python"/"numba"/"c") is a tunable parameter --
    # declared here so `repro run --backend` and run_experiments can
    # discover which algorithms accept it. Each also registers its
    # megabatch sweep spec, so campaign grids collapse to one batched
    # kernel call per tree (see repro.core.engine.sweep_batch).
    for name, fn, rank_fn, doc in (
        ("ParInnerFirst", par_inner_first, par_inner_first_rank,
         "parallel postorder: inner nodes first (Section 5.2)"),
        ("ParDeepestFirst", par_deepest_first, par_deepest_first_rank,
         "critical-path list scheduling (Section 5.3)"),
        ("ParInnerFirst/naiveO", par_inner_first_naive_order,
         par_inner_first_naive_rank, "ablation: naive postorder as O"),
        ("ParDeepestFirst/hops", par_hop_deepest_first,
         par_hop_deepest_first_rank, "ablation: hop-count depth"),
    ):
        register(
            Algorithm(
                name=name,
                kind="parallel",
                fn=fn,
                params={"backend": None},
                doc=doc,
                accepts_prepared=True,
                sweep_spec=_rank_spec(rank_fn),
            )
        )
    register(
        Algorithm(
            name="MemoryBounded",
            kind="parallel",
            fn=_memory_bounded,
            params={"cap_factor": 2.0, "mode": "strict", "backend": None},
            doc="event scheduler under a peak-memory cap (future-work extension)",
            accepts_prepared=True,
            sweep_spec=_memory_bounded_spec,
        )
    )
    register(
        Algorithm(
            name="MemoryAwareSubtrees",
            kind="parallel",
            fn=_memory_aware_subtrees,
            params={"cap_factor": 2.0},
            doc="ParSubtrees restricted to a memory budget",
            accepts_prepared=True,
        )
    )
    for name, fn, doc in (
        ("optimal_postorder", optimal_postorder, "Liu 1986: memory-optimal postorder"),
        ("liu_optimal_traversal", liu_optimal_traversal, "Liu 1987: exact optimal traversal"),
        ("natural_postorder", natural_postorder, "index-order postorder baseline"),
    ):
        register(Algorithm(name=name, kind="sequential", fn=fn, doc=doc))


def get(name: str) -> Algorithm:
    """Look up one algorithm; raises ``KeyError`` listing known names."""
    _populate()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def names(kind: str | None = None) -> list[str]:
    """All registered names (insertion order), optionally one kind only."""
    _populate()
    return [a.name for a in _REGISTRY.values() if kind is None or a.kind == kind]


def algorithms(kind: str | None = None) -> list[Algorithm]:
    """All registered algorithms, optionally filtered by kind."""
    _populate()
    return [a for a in _REGISTRY.values() if kind is None or a.kind == kind]


def run(name: str, tree: TaskTree, p: int = 1, **params: Any) -> Schedule:
    """Run registry algorithm ``name`` on ``(tree, p)``."""
    return get(name).run(tree, p, **params)


def apply_backend(
    name: str, params: Mapping[str, Any], backend: str | None
) -> dict[str, Any]:
    """``params`` with the sweep backend forced, when ``name`` declares one.

    The supervised campaign runtime health-probes the backend chain once
    per worker (:func:`repro.core.engine.probe_backend`) and pins every
    scenario of that worker to the surviving backend through this
    helper; algorithms that do not declare a ``backend`` parameter (the
    subtree-splitting family, sequential traversals) pass through
    untouched. Schedules are backend-independent, so the override never
    changes a record.
    """
    merged = dict(params)
    if backend is not None and "backend" in get(name).params:
        merged["backend"] = backend
    return merged
