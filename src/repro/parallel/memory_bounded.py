"""Memory-capped list scheduling -- the paper's future-work extension.

The conclusion of the paper calls for "scheduling algorithms that take
as input a cap on the memory usage". This module implements an
event-driven scheduler that never lets the resident memory exceed a user
cap, built around an *activation order* :math:`\\sigma` (a sequential
traversal, by default the memory-optimal postorder):

* **strict mode** -- tasks *start* exactly in :math:`\\sigma` order; a
  task launches as soon as a processor is free and the allocation fits
  under the cap. When nothing is running, the resident memory equals the
  sequential state of :math:`\\sigma` before the next task, so any cap at
  least the sequential peak of :math:`\\sigma` is guaranteed feasible
  (deadlock-free) -- property-tested.
* **opportunistic mode** -- any ready task may start provided it fits,
  preferring the earliest in :math:`\\sigma`; more parallelism, but
  out-of-order residue can exceed the sequential state and make a tight
  cap infeasible, in which case :class:`MemoryCapError` is raised.

Both modes trade makespan for memory: sweeping the cap between
``M_seq`` and ``(p+1) M_seq`` traces the memory/makespan trade-off curve
(see ``benchmarks/bench_memory_cap.py``).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.schedule import Schedule
from repro.core.tree import TaskTree, NO_PARENT

__all__ = ["MemoryCapError", "memory_bounded_schedule"]


class MemoryCapError(RuntimeError):
    """Raised when no task fits under the cap and none is running."""


def memory_bounded_schedule(
    tree: TaskTree,
    p: int,
    cap: float,
    order: np.ndarray | None = None,
    mode: str = "strict",
) -> Schedule:
    """Schedule ``tree`` on ``p`` processors under a peak-memory cap.

    Parameters
    ----------
    tree, p:
        the instance.
    cap:
        the memory budget; the returned schedule's peak never exceeds it.
    order:
        activation order :math:`\\sigma` (default: optimal postorder).
        With ``mode="strict"`` any ``cap >= traversal peak of order`` is
        feasible.
    mode:
        ``"strict"`` or ``"opportunistic"`` (see module docstring).

    Raises
    ------
    MemoryCapError
        if the scheduler gets stuck: no running task and no startable
        task fits under the cap.
    """
    if mode not in ("strict", "opportunistic"):
        raise ValueError(f"unknown mode {mode!r}")
    if p < 1:
        raise ValueError("p must be positive")
    if order is None:
        from repro.sequential.postorder import optimal_postorder

        order = optimal_postorder(tree).order
    order = np.asarray(order, dtype=np.int64)
    n = tree.n
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)

    start = np.full(n, -1.0, dtype=np.float64)
    proc = np.full(n, -1, dtype=np.int64)
    pending_children = np.array([tree.degree(i) for i in range(n)], dtype=np.int64)
    alloc = tree.sizes + tree.f
    free_on_end = tree.sizes.copy()
    for i in range(n):
        for j in tree.children(i):
            free_on_end[i] += tree.f[j]

    ready: list[tuple[int, int]] = []  # (sigma rank, node)
    for i in range(n):
        if pending_children[i] == 0:
            heapq.heappush(ready, (int(rank[i]), i))

    free_procs = list(range(p - 1, -1, -1))
    events: list[tuple[float, int]] = []
    mem = 0.0
    now = 0.0
    started = 0
    next_sigma = 0  # index into `order` of the first unstarted task

    def try_start() -> None:
        nonlocal mem, started, next_sigma
        while free_procs and ready:
            if mode == "strict":
                node = int(order[next_sigma])
                if pending_children[node] > 0 or mem + alloc[node] > cap + 1e-9:
                    return
                # Remove it from the ready heap (it is necessarily the
                # smallest rank present).
                popped = heapq.heappop(ready)
                assert popped[1] == node
            else:
                skipped: list[tuple[int, int]] = []
                node = -1
                while ready:
                    r, cand = heapq.heappop(ready)
                    if mem + alloc[cand] <= cap + 1e-9:
                        node = cand
                        break
                    skipped.append((r, cand))
                for item in skipped:
                    heapq.heappush(ready, item)
                if node < 0:
                    return
            q = free_procs.pop()
            start[node] = now
            proc[node] = q
            mem += float(alloc[node])
            heapq.heappush(events, (now + float(tree.w[node]), node))
            started += 1
            while next_sigma < n and start[int(order[next_sigma])] >= 0:
                next_sigma += 1

    try_start()
    while started < n or events:
        if not events:
            running = False
        else:
            running = True
        if not running:
            node = int(order[next_sigma])
            raise MemoryCapError(
                f"cap {cap:g} infeasible: task {node} needs "
                f"{mem + alloc[node]:g} with nothing running "
                f"(mode={mode}; sequential peak of the activation order "
                f"is a feasible cap in strict mode)"
            )
        now, node = heapq.heappop(events)
        finished = [node]
        while events and events[0][0] == now:
            finished.append(heapq.heappop(events)[1])
        for node in finished:
            free_procs.append(int(proc[node]))
            mem -= float(free_on_end[node])
            parent = int(tree.parent[node])
            if parent != NO_PARENT:
                pending_children[parent] -= 1
                if pending_children[parent] == 0:
                    heapq.heappush(ready, (int(rank[parent]), parent))
        try_start()
    return Schedule(tree, start, proc, p)
