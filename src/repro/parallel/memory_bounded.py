"""Memory-capped list scheduling -- the paper's future-work extension.

The conclusion of the paper calls for "scheduling algorithms that take
as input a cap on the memory usage". This module configures the unified
event-driven engine (:class:`repro.core.engine.SchedulerEngine`) with
memory accounting so that the resident memory never exceeds a user cap,
built around an *activation order* :math:`\\sigma` (a sequential
traversal, by default the memory-optimal postorder):

* **strict mode** -- tasks *start* exactly in :math:`\\sigma` order; a
  task launches as soon as a processor is free and the allocation fits
  under the cap. When nothing is running, the resident memory equals the
  sequential state of :math:`\\sigma` before the next task, so any cap at
  least the sequential peak of :math:`\\sigma` is guaranteed feasible
  (deadlock-free) -- property-tested.
* **opportunistic mode** -- any ready task may start provided it fits,
  preferring the earliest in :math:`\\sigma`; more parallelism, but
  out-of-order residue can exceed the sequential state and make a tight
  cap infeasible, in which case :class:`MemoryCapError` is raised.

Both modes trade makespan for memory: sweeping the cap between
``M_seq`` and ``(p+1) M_seq`` traces the memory/makespan trade-off curve
(see ``benchmarks/bench_memory_cap.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import MemoryCapError, SchedulerEngine
from repro.core.prepared import PreparedTree, tree_of
from repro.core.schedule import Schedule
from repro.core.tree import TaskTree

__all__ = ["MemoryCapError", "memory_bounded_schedule"]


def memory_bounded_schedule(
    tree: TaskTree | PreparedTree,
    p: int,
    cap: float,
    order: np.ndarray | None = None,
    mode: str = "strict",
    *,
    backend: str | None = None,
) -> Schedule:
    """Schedule ``tree`` on ``p`` processors under a peak-memory cap.

    Parameters
    ----------
    tree, p:
        the instance (``tree`` bare or prepared; with a prepared tree
        the default activation order and its rank permutation are
        derived once and shared across every ``(p, cap)`` combination).
    cap:
        the memory budget; the returned schedule's peak never exceeds it.
    order:
        activation order :math:`\\sigma` (default: optimal postorder).
        With ``mode="strict"`` any ``cap >= traversal peak of order`` is
        feasible.
    mode:
        ``"strict"`` or ``"opportunistic"`` (see module docstring).
    backend:
        sweep backend passed through to
        :class:`~repro.core.engine.SchedulerEngine` (default: auto
        selection; all backends are bit-identical).

    Raises
    ------
    MemoryCapError
        if the scheduler gets stuck: no running task and no startable
        task fits under the cap.
    """
    if isinstance(tree, PreparedTree) and (
        order is None
        or (
            tree.optimal_computed is not None
            and order is tree.optimal_computed.order
        )
    ):
        # The sigma rank (and its inverse) comes from the prepared
        # cache; the activation order is the shared optimal postorder.
        # (A custom order never triggers the optimal computation: the
        # identity check only consults the already-computed cache.)
        order = np.asarray(tree.optimal().order, dtype=np.int64)
        rank = tree.sigma_rank()
    else:
        if order is None:
            from repro.sequential.postorder import optimal_postorder

            order = optimal_postorder(tree_of(tree)).order
        order = np.asarray(order, dtype=np.int64)
        # The ready queue is prioritised by sigma rank in both modes.
        rank = np.empty(tree_of(tree).n, dtype=np.int64)
        rank[order] = np.arange(tree_of(tree).n)
    return SchedulerEngine(
        tree, p, rank, cap=cap, order=order, mode=mode, backend=backend
    ).run()
