"""``ParSubtrees`` and ``ParSubtreesOptim`` (Section 5.1, Algorithm 1).

ParSubtrees splits the tree into subtrees with
:func:`~repro.parallel.split_subtrees.split_subtrees`, processes the (up
to) ``p`` heaviest subtrees concurrently -- each with the sequential
memory-optimal traversal -- and finally processes all remaining nodes
sequentially, again in a memory-minimizing order.

Guarantees proved in the paper and property-tested here:

* **memory**: peak at most :math:`(p+1) \\cdot M_{seq}` (each parallel
  subtree needs at most the sequential memory of the whole tree; the
  sequential phase adds at most ``p`` retained subtree outputs);
* **makespan**: a ``p``-approximation, tight on fork trees (Figure 3).

``ParSubtreesOptim`` allocates *all* produced subtrees over the ``p``
processors in LPT fashion (heaviest first onto the least-loaded
processor), which improves the makespan at the price of a (slightly)
higher memory usage -- exactly the trade-off reported in Table 1.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.schedule import Schedule
from repro.core.tree import TaskTree
from .split_subtrees import SplitResult, split_subtrees

__all__ = ["par_subtrees", "par_subtrees_optim"]

#: A sequential-order provider: maps a tree to a topological order.
SequentialOrder = Callable[[TaskTree], np.ndarray]


def _default_order(tree: TaskTree) -> np.ndarray:
    """The paper's sequential reference: Liu's optimal postorder."""
    from repro.sequential.postorder import optimal_postorder

    return optimal_postorder(tree).order


def _restricted_order(full_order: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Subsequence of ``full_order`` restricted to the ``keep`` mask.

    A restriction of a topological order is a topological order of the
    induced sub-forest, and restricting the memory-optimal order keeps
    its locality, which is why both phases use it.
    """
    return np.asarray([i for i in full_order if keep[i]], dtype=np.int64)


def _pack_schedule(
    tree: TaskTree,
    p: int,
    per_proc_orders: list[list[np.ndarray]],
    seq_nodes_order: np.ndarray,
) -> Schedule:
    """Assemble the two-phase schedule.

    Phase 1: processor ``q`` executes its subtree orders back-to-back.
    Phase 2: the remaining nodes run on processor 0 starting when every
    subtree has completed (the cost model of Algorithm 2).
    """
    start = np.empty(tree.n, dtype=np.float64)
    proc = np.empty(tree.n, dtype=np.int64)
    phase1_end = 0.0
    for q, orders in enumerate(per_proc_orders):
        t = 0.0
        for order in orders:
            for node in order:
                start[node] = t
                proc[node] = q
                t += float(tree.w[node])
        phase1_end = max(phase1_end, t)
    t = phase1_end
    for node in seq_nodes_order:
        start[node] = t
        proc[node] = 0
        t += float(tree.w[node])
    return Schedule(tree, start, proc, p)


def par_subtrees(
    tree: TaskTree,
    p: int,
    sequential_order: SequentialOrder = _default_order,
    split: SplitResult | None = None,
) -> Schedule:
    """Algorithm 1: ParSubtrees.

    Parameters
    ----------
    tree, p:
        the instance.
    sequential_order:
        the memory-minimizing sequential algorithm used for each subtree
        and for the remainder (default: optimal postorder, as in the
        paper's experiments; pass Liu's exact algorithm for the O(n^2)
        variant).
    split:
        an optional precomputed splitting (shared with
        :func:`par_subtrees_optim` in the benchmark harness).
    """
    if split is None:
        split = split_subtrees(tree, p)
    full_order = sequential_order(tree)
    keep = np.zeros(tree.n, dtype=bool)
    per_proc: list[list[np.ndarray]] = [[] for _ in range(p)]
    for q, r in enumerate(split.parallel_roots):
        sub, nodes = tree.subtree(r)
        sub_order = sequential_order(sub)
        per_proc[q].append(nodes[sub_order])
        keep[nodes] = True
    seq_order = _restricted_order(full_order, ~keep)
    return _pack_schedule(tree, p, per_proc, seq_order)


def par_subtrees_optim(
    tree: TaskTree,
    p: int,
    sequential_order: SequentialOrder = _default_order,
    split: SplitResult | None = None,
) -> Schedule:
    """ParSubtreesOptim: allocate *all* subtrees to processors (LPT).

    Subtrees are sorted by non-increasing work and greedily assigned to
    the processor with the smallest total load; each processor runs its
    subtrees back-to-back (each internally in memory-optimal order). The
    split nodes are processed sequentially afterwards.
    """
    if split is None:
        split = split_subtrees(tree, p)
    full_order = sequential_order(tree)
    work = tree.subtree_work()
    roots = sorted(split.frontier_roots, key=lambda r: float(work[r]), reverse=True)
    loads = np.zeros(p, dtype=np.float64)
    keep = np.zeros(tree.n, dtype=bool)
    per_proc: list[list[np.ndarray]] = [[] for _ in range(p)]
    for r in roots:
        q = int(np.argmin(loads))
        sub, nodes = tree.subtree(r)
        sub_order = sequential_order(sub)
        per_proc[q].append(nodes[sub_order])
        loads[q] += float(work[r])
        keep[nodes] = True
    seq_order = _restricted_order(full_order, ~keep)
    return _pack_schedule(tree, p, per_proc, seq_order)
