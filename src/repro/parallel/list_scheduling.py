"""Event-based list scheduling (Algorithm 3 of the paper).

A generic scheduler driven by task-completion events: whenever a task
finishes, its parent may become ready; every idle processor is then given
the head of a priority queue of ready tasks. The priority queue order is
the only thing distinguishing ParInnerFirst, ParDeepestFirst and the
memory-bounded extension, so they all share this engine.

Complexity is :math:`O(n \\log n)` (binary heaps for both the event set
and the ready queue), matching the paper's analysis.
"""

from __future__ import annotations

import heapq
from typing import Callable, Sequence

import numpy as np

from repro.core.schedule import Schedule
from repro.core.tree import TaskTree, NO_PARENT

__all__ = ["list_schedule", "PriorityKey"]

#: A priority function maps a node index to a sortable key; *smaller keys
#: are scheduled first* (heapq convention).
PriorityKey = Callable[[int], tuple]


def list_schedule(
    tree: TaskTree,
    p: int,
    priority: PriorityKey,
) -> Schedule:
    """Schedule ``tree`` on ``p`` processors by list scheduling.

    Parameters
    ----------
    tree:
        the task tree.
    p:
        number of identical processors.
    priority:
        key function over node indices; the ready task with the smallest
        key runs first. Keys are computed once per node, at insertion.

    Returns
    -------
    Schedule
        a valid schedule (validated property in tests): precedence
        respected and no processor oversubscribed. Like all list
        schedules it is a :math:`(2 - 1/p)`-approximation of the optimal
        makespan (Graham's bound).
    """
    if p < 1:
        raise ValueError("p must be positive")
    n = tree.n
    start = np.full(n, -1.0, dtype=np.float64)
    proc = np.full(n, -1, dtype=np.int64)
    pending_children = np.array([tree.degree(i) for i in range(n)], dtype=np.int64)

    ready: list[tuple[tuple, int]] = []
    for i in range(n):
        if pending_children[i] == 0:
            heapq.heappush(ready, (priority(i), i))

    free_procs = list(range(p - 1, -1, -1))  # pop() yields processor 0 first
    # Event set keyed by completion time; ties resolved by node index for
    # determinism.
    events: list[tuple[float, int]] = []
    now = 0.0
    scheduled = 0
    while scheduled < n or events:
        # Assign every idle processor the current head of the ready queue.
        while free_procs and ready:
            _, node = heapq.heappop(ready)
            q = free_procs.pop()
            start[node] = now
            proc[node] = q
            heapq.heappush(events, (now + float(tree.w[node]), node))
            scheduled += 1
        if not events:
            if scheduled < n:  # pragma: no cover - defensive
                raise RuntimeError("deadlock: tasks left but no event pending")
            break
        # Advance to the next completion event; process all completions at
        # that instant before assigning again.
        now, node = heapq.heappop(events)
        finished = [node]
        while events and events[0][0] == now:
            finished.append(heapq.heappop(events)[1])
        for node in finished:
            free_procs.append(int(proc[node]))
            parent = int(tree.parent[node])
            if parent != NO_PARENT:
                pending_children[parent] -= 1
                if pending_children[parent] == 0:
                    heapq.heappush(ready, (priority(parent), parent))
    return Schedule(tree, start, proc, p)


def postorder_ranks(tree: TaskTree, order: Sequence[int] | None = None) -> np.ndarray:
    """Rank of every node in a reference sequential order ``O``.

    The paper uses the memory-optimal sequential postorder as ``O`` for
    both ParInnerFirst (leaf order) and ParDeepestFirst (tie-breaking);
    when ``order`` is None that postorder is computed here.
    """
    if order is None:
        from repro.sequential.postorder import optimal_postorder

        order = optimal_postorder(tree).order
    order = np.asarray(order, dtype=np.int64)
    ranks = np.empty(tree.n, dtype=np.int64)
    ranks[order] = np.arange(tree.n)
    return ranks
