"""Event-based list scheduling (Algorithm 3 of the paper) -- front end.

The actual event sweep lives in :mod:`repro.core.engine`
(:class:`~repro.core.engine.SchedulerEngine`); this module keeps the
historical entry point :func:`list_schedule` as a thin configuration of
it, plus the :func:`postorder_ranks` helper shared by the heuristics.

``list_schedule`` accepts priorities in two forms:

* a **numpy integer rank array** (a permutation of ``0..n-1``, usually
  from :func:`repro.core.engine.lex_rank` over vectorized key columns)
  -- the fast path: heuristic setup is one vectorized sweep and the
  event loop does O(log n) integer heap operations only;
* a legacy **per-node callable** ``i -> tuple`` -- converted once to a
  rank array via :func:`repro.core.engine.rank_from_callable`, which
  reproduces the historical ``(priority(i), i)`` heap order bit for bit.

Every entry point accepts either a :class:`~repro.core.tree.TaskTree`
or a :class:`~repro.core.prepared.PreparedTree`; with a prepared tree
the reference postorder, the rank permutations and the engine's typed
sweep columns are derived once and shared across an arbitrary number of
``(p, cap)`` configurations -- schedules are bit-identical either way.

Complexity is :math:`O(n \\log n)` either way, matching the paper's
analysis.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.engine import SchedulerEngine, rank_from_callable
from repro.core.prepared import PreparedTree, tree_of
from repro.core.schedule import Schedule
from repro.core.tree import TaskTree

__all__ = ["list_schedule", "PriorityKey"]

#: A priority function maps a node index to a sortable key; *smaller keys
#: are scheduled first* (heapq convention).
PriorityKey = Callable[[int], tuple]


def list_schedule(
    tree: TaskTree | PreparedTree,
    p: int,
    priority: PriorityKey | np.ndarray,
    *,
    backend: str | None = None,
) -> Schedule:
    """Schedule ``tree`` on ``p`` processors by list scheduling.

    Parameters
    ----------
    tree:
        the task tree (bare or prepared; the prepared form amortizes
        the engine's per-tree derivations across calls).
    p:
        number of identical processors.
    priority:
        either an integer rank array (one rank per node, smallest rank
        runs first) or a legacy key function over node indices. Keys
        are fixed per node; both forms yield the identical schedule.
    backend:
        sweep backend passed through to
        :class:`~repro.core.engine.SchedulerEngine` (default: auto
        selection; all backends are bit-identical).

    Returns
    -------
    Schedule
        a valid schedule (validated property in tests): precedence
        respected and no processor oversubscribed. Like all list
        schedules it is a :math:`(2 - 1/p)`-approximation of the optimal
        makespan (Graham's bound).
    """
    if callable(priority):
        rank = rank_from_callable(tree_of(tree), priority)
    else:
        rank = np.asarray(priority, dtype=np.int64)
    return SchedulerEngine(tree, p, rank, backend=backend).run()


def postorder_ranks(
    tree: TaskTree | PreparedTree, order: Sequence[int] | None = None
) -> np.ndarray:
    """Rank of every node in a reference sequential order ``O``.

    The paper uses the memory-optimal sequential postorder as ``O`` for
    both ParInnerFirst (leaf order) and ParDeepestFirst (tie-breaking);
    when ``order`` is None that postorder is computed here -- once per
    prepared tree, on every call for a bare tree.
    """
    if order is None:
        if isinstance(tree, PreparedTree):
            return tree.sigma_rank()
        from repro.sequential.postorder import optimal_postorder

        order = optimal_postorder(tree_of(tree)).order
    order = np.asarray(order, dtype=np.int64)
    n = tree_of(tree).n
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.arange(n)
    return ranks
