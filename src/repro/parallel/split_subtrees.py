"""``SplitSubtrees`` (Algorithm 2): makespan-optimal splitting into subtrees.

The routine repeatedly replaces the heaviest frontier subtree by its
children (ties broken by non-increasing ``w_i``), evaluating after each
split the ParSubtrees makespan

.. math::

   C_{max}(s) = W_{head(PQ)} \\;+\\; \\sum_{i \\in seqSet} w_i
                \\;+\\; \\sum_{i = PQ[p+1]}^{|PQ|} W_i ,

i.e. the heaviest parallel subtree, plus the sequentially processed split
nodes, plus the surplus subtrees beyond the ``p`` heaviest. The splitting
with minimum cost is returned; Lemma 1 of the paper proves it is optimal
for ParSubtrees.

The frontier is maintained with a *top-p + rest* two-heap structure so
each step costs :math:`O(p + \\log n)` and the whole routine
:math:`O(n (p + \\log n))`, matching the paper's complexity analysis.
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass

import numpy as np

from repro.core.tree import TaskTree

__all__ = ["SplitResult", "split_subtrees"]

# Frontier entries sort by (W_i, w_i, -index): non-increasing subtree work,
# ties by non-increasing node work (as in the paper), then by node index
# for determinism.
_Key = tuple[float, float, int]


class _TopP:
    """Frontier of subtree roots with O(p + log n) access to the p largest.

    ``top`` is a sorted list (ascending) of at most ``p`` keys -- the
    largest elements; ``rest`` is a max-heap of the others. ``p`` is at
    most a few dozen in all experiments, so list insertion in ``top`` is
    cheap.
    """

    def __init__(self, p: int) -> None:
        self.p = p
        self.top: list[_Key] = []
        self.rest: list[_Key] = []  # negated keys (max-heap)
        self.sum_top = 0.0  # total W over `top`
        self.sum_all = 0.0  # total W over the whole frontier

    def __len__(self) -> int:
        return len(self.top) + len(self.rest)

    def insert(self, key: _Key) -> None:
        self.sum_all += key[0]
        if len(self.top) < self.p:
            insort(self.top, key)
            self.sum_top += key[0]
        elif key > self.top[0]:
            insort(self.top, key)
            self.sum_top += key[0]
            demoted = self.top.pop(0)
            self.sum_top -= demoted[0]
            heapq.heappush(self.rest, tuple(-v for v in demoted))
        else:
            heapq.heappush(self.rest, tuple(-v for v in key))

    def pop_max(self) -> _Key:
        key = self.top.pop()
        self.sum_top -= key[0]
        self.sum_all -= key[0]
        if self.rest:
            promoted = tuple(-v for v in heapq.heappop(self.rest))
            insort(self.top, promoted)
            self.sum_top += promoted[0]
        return key

    def head(self) -> _Key:
        return self.top[-1]

    def surplus_work(self) -> float:
        """Total W of the frontier beyond the p largest subtrees."""
        return self.sum_all - self.sum_top


@dataclass(frozen=True)
class SplitResult:
    """Outcome of :func:`split_subtrees`.

    Attributes
    ----------
    parallel_roots:
        roots of the (up to ``p``) heaviest subtrees of the selected
        splitting -- these are processed concurrently in ParSubtrees.
    frontier_roots:
        roots of *all* subtrees of the selected splitting (used by
        ParSubtreesOptim, which allocates every subtree LPT-style).
    seq_nodes:
        the split (popped) nodes, processed sequentially after the
        parallel phase, in no particular order.
    cost:
        the predicted ParSubtrees makespan :math:`C_{max}(x)` of the
        selected splitting.
    steps:
        number of splitting steps evaluated (diagnostic).
    """

    parallel_roots: tuple[int, ...]
    frontier_roots: tuple[int, ...]
    seq_nodes: tuple[int, ...]
    cost: float
    steps: int


def split_subtrees(tree: TaskTree, p: int) -> SplitResult:
    """Run Algorithm 2 and reconstruct the minimum-cost splitting.

    The loop records the sequence of popped nodes; after selecting the
    best step ``x``, the splitting is rebuilt by replaying the first
    ``x`` pops (the pop order is deterministic).
    """
    if p < 1:
        raise ValueError("p must be positive")
    work = tree.subtree_work()

    def key(i: int) -> _Key:
        return (float(work[i]), float(tree.w[i]), -i)

    frontier = _TopP(p)
    frontier.insert(key(tree.root))
    popped: list[int] = []
    seq_w = 0.0
    costs: list[float] = [float(work[tree.root])]  # Cost(0) = W_root
    while True:
        head = frontier.head()
        head_node = -head[2]
        # Loop condition of Algorithm 2: continue while W_head > w_head.
        # Equality means the head subtree is a single node (a leaf, or an
        # inner node whose whole subtree has zero extra work) and further
        # splitting cannot reduce the parallel time.
        if tree.is_leaf(head_node) or head[0] <= float(tree.w[head_node]) * (1 + 1e-12) + 1e-12:
            break
        node = -frontier.pop_max()[2]
        popped.append(node)
        seq_w += float(tree.w[node])
        for c in tree.children(node):
            frontier.insert(key(c))
        costs.append(float(frontier.head()[0]) + seq_w + frontier.surplus_work())
    best_step = int(np.argmin(costs))

    # Replay the first `best_step` pops to rebuild that frontier.
    frontier = _TopP(p)
    frontier.insert(key(tree.root))
    for node in popped[:best_step]:
        frontier.pop_max()
        for c in tree.children(node):
            frontier.insert(key(c))
    all_roots = [-k[2] for k in frontier.top] + [k[2] for k in frontier.rest]
    all_roots.sort(key=lambda i: key(i), reverse=True)
    parallel_roots = tuple(all_roots[:p])
    in_parallel = np.zeros(tree.n, dtype=bool)
    for r in parallel_roots:
        in_parallel[tree.subtree_nodes(r)] = True
    seq_nodes = tuple(int(i) for i in range(tree.n) if not in_parallel[i])
    return SplitResult(
        parallel_roots=parallel_roots,
        frontier_roots=tuple(all_roots),
        seq_nodes=seq_nodes,
        cost=float(costs[best_step]),
        steps=len(costs),
    )
