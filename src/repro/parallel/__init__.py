"""Parallel scheduling heuristics (Section 5 of the paper).

All list-style heuristics here are thin configurations of the unified
event engine in :mod:`repro.core.engine`; the canonical catalogue of
every algorithm (with metadata) is :mod:`repro.registry`.
"""

from .list_scheduling import list_schedule, postorder_ranks
from .split_subtrees import SplitResult, split_subtrees
from .par_subtrees import par_subtrees, par_subtrees_optim
from .par_inner_first import par_inner_first, par_inner_first_rank
from .par_deepest_first import par_deepest_first, par_deepest_first_rank
from .memory_bounded import MemoryCapError, memory_bounded_schedule
from .memory_aware_subtrees import par_subtrees_memory_aware, predicted_parallel_memory
from .heuristics import HEURISTICS, HeuristicResult, evaluate, run_all
from .variants import VARIANTS, par_inner_first_naive_order, par_hop_deepest_first

__all__ = [
    "list_schedule",
    "postorder_ranks",
    "SplitResult",
    "split_subtrees",
    "par_subtrees",
    "par_subtrees_optim",
    "par_inner_first",
    "par_inner_first_rank",
    "par_deepest_first",
    "par_deepest_first_rank",
    "MemoryCapError",
    "memory_bounded_schedule",
    "par_subtrees_memory_aware",
    "predicted_parallel_memory",
    "HEURISTICS",
    "HeuristicResult",
    "evaluate",
    "run_all",
    "VARIANTS",
    "par_inner_first_naive_order",
    "par_hop_deepest_first",
]
