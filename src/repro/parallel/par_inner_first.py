"""``ParInnerFirst`` (Section 5.2): parallel postorder by list scheduling.

The parallel postorder rules of the paper:

1. if an inner node is ready (all input files in memory), execute it;
2. otherwise process the leaf closest to the previously selected leaf.

Realised with the generic event-based list scheduler and the priority
order: (a) inner nodes before leaves, inner nodes by non-increasing
depth; (b) leaves in the order of a reference sequential postorder ``O``
(the memory-optimal one, so that rule 2's leaf locality is inherited).

The priority is built as vectorized numpy key columns collapsed into a
single integer rank per node (:func:`repro.core.engine.lex_rank`), so
the setup is one numpy sweep and the event loop stays integer-only.

With one processor this reproduces ``O`` exactly (tested); with ``p``
processors it is a list schedule, hence a :math:`(2-1/p)`-approximation
for the makespan; its memory usage is *unbounded* relative to the
sequential optimum (Figure 4, reproduced in the theory benchmarks).
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import lex_rank
from repro.core.prepared import PreparedTree, tree_of
from repro.core.schedule import Schedule
from repro.core.tree import TaskTree
from .list_scheduling import list_schedule, postorder_ranks

__all__ = ["par_inner_first", "par_inner_first_rank"]


def _build_rank(tree: TaskTree | PreparedTree, order: np.ndarray | None) -> np.ndarray:
    ranks = postorder_ranks(tree, order)
    t = tree_of(tree)
    depth = t.depths()
    leaf = t.leaf_mask()
    n = t.n
    return lex_rank(
        leaf.astype(np.int64),  # inner nodes before leaves
        np.where(leaf, ranks, -depth),  # leaves in O; inner by depth
        np.where(leaf, np.arange(n, dtype=np.int64), ranks),
    )


def par_inner_first_rank(
    tree: TaskTree | PreparedTree, order: np.ndarray | None = None
) -> np.ndarray:
    """Priority rank of every node under the ParInnerFirst order.

    Equivalent to the historical per-node key: leaves sort as
    ``(1, rank_in_O, node)``, inner nodes as ``(0, -depth, rank_in_O)``.
    With a prepared tree and the default reference order the rank is
    built once and cached under the priority spec ``"ParInnerFirst"``.
    """
    if isinstance(tree, PreparedTree) and order is None:
        return tree.rank_for("ParInnerFirst", lambda: _build_rank(tree, None))
    return _build_rank(tree, order)


def par_inner_first(
    tree: TaskTree | PreparedTree,
    p: int,
    order: np.ndarray | None = None,
    backend: str | None = None,
) -> Schedule:
    """Schedule ``tree`` on ``p`` processors with ParInnerFirst.

    Parameters
    ----------
    tree, p:
        the instance (``tree`` bare or prepared).
    order:
        the reference sequential order ``O`` (default: Liu's optimal
        postorder, as in the paper).
    backend:
        engine sweep backend (default: auto; bit-identical either way).
    """
    return list_schedule(tree, p, par_inner_first_rank(tree, order), backend=backend)
