"""``ParInnerFirst`` (Section 5.2): parallel postorder by list scheduling.

The parallel postorder rules of the paper:

1. if an inner node is ready (all input files in memory), execute it;
2. otherwise process the leaf closest to the previously selected leaf.

Realised with the generic event-based list scheduler and the priority
order: (a) inner nodes before leaves, inner nodes by non-increasing
depth; (b) leaves in the order of a reference sequential postorder ``O``
(the memory-optimal one, so that rule 2's leaf locality is inherited).

With one processor this reproduces ``O`` exactly (tested); with ``p``
processors it is a list schedule, hence a :math:`(2-1/p)`-approximation
for the makespan; its memory usage is *unbounded* relative to the
sequential optimum (Figure 4, reproduced in the theory benchmarks).
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Schedule
from repro.core.tree import TaskTree
from .list_scheduling import list_schedule, postorder_ranks

__all__ = ["par_inner_first"]


def par_inner_first(
    tree: TaskTree,
    p: int,
    order: np.ndarray | None = None,
) -> Schedule:
    """Schedule ``tree`` on ``p`` processors with ParInnerFirst.

    Parameters
    ----------
    tree, p:
        the instance.
    order:
        the reference sequential order ``O`` (default: Liu's optimal
        postorder, as in the paper).
    """
    ranks = postorder_ranks(tree, order)
    depth = tree.depths()

    def priority(i: int) -> tuple:
        if tree.is_leaf(i):
            # Leaves come after every inner node, in O's order.
            return (1, int(ranks[i]), i)
        # Inner nodes by non-increasing depth.
        return (0, -int(depth[i]), int(ranks[i]))

    return list_schedule(tree, p, priority)
