"""Heuristic variants for ablation studies.

Section 5 makes two low-key design remarks that deserve measurement:

* ParInnerFirst's leaf order "needs to be a sequential postorder. It
  makes heuristic sense that this postorder is an *optimal* sequential
  postorder" -- :func:`par_inner_first_naive_order` drops the optimality
  and uses the arbitrary (index-order) postorder instead;
* ParDeepestFirst's depth is "the *w-weighted* length of the path" --
  :func:`par_hop_deepest_first` uses plain hop counts instead, degrading
  the critical-path awareness on heterogeneous trees.

Both variants reuse the same list-scheduling engine, so any performance
difference is attributable to the ablated choice alone.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import lex_rank
from repro.core.prepared import PreparedTree, tree_of
from repro.core.schedule import Schedule
from repro.core.tree import TaskTree
from .list_scheduling import list_schedule, postorder_ranks

__all__ = [
    "par_inner_first_naive_order",
    "par_inner_first_naive_rank",
    "par_hop_deepest_first",
    "par_hop_deepest_first_rank",
    "VARIANTS",
]


def par_inner_first_naive_rank(tree: TaskTree | PreparedTree) -> np.ndarray:
    """Priority rank of the naive-postorder ParInnerFirst variant
    (cached on a prepared tree under the variant's registry key)."""
    from .par_inner_first import par_inner_first_rank

    def build() -> np.ndarray:
        return par_inner_first_rank(tree, tree_of(tree).postorder())

    if isinstance(tree, PreparedTree):
        return tree.rank_for("ParInnerFirst/naiveO", build)
    return build()


def par_inner_first_naive_order(
    tree: TaskTree | PreparedTree, p: int, backend: str | None = None
) -> Schedule:
    """ParInnerFirst with a naive (index-order) postorder as ``O``."""
    return list_schedule(tree, p, par_inner_first_naive_rank(tree), backend=backend)


def par_hop_deepest_first(
    tree: TaskTree | PreparedTree, p: int, backend: str | None = None
) -> Schedule:
    """ParDeepestFirst with hop-count depth instead of w-weighted depth.

    An inner node counts one hop deeper than its edge depth: hop depth
    ignores the work still ahead of a ready node, so without the boost a
    ready inner node at depth ``d`` would lose to any leaf at depth
    ``d+1`` even though completing the inner node is what unlocks its
    ancestors. The boost extends the paper's "inner nodes before leaves"
    tie-break (rule 2 of ParDeepestFirst) across adjacent depth classes:
    an inner node at depth ``d`` ties with leaves at depth ``d+1`` and
    wins the tie. (An earlier revision computed this term as
    ``0 if leaf else 0`` -- a no-op; pinned by a regression test.)
    """
    return list_schedule(tree, p, par_hop_deepest_first_rank(tree), backend=backend)


def par_hop_deepest_first_rank(tree: TaskTree | PreparedTree) -> np.ndarray:
    """Priority rank of the hop-depth ParDeepestFirst variant (cached
    on a prepared tree under the variant's registry key)."""

    def build() -> np.ndarray:
        ranks = postorder_ranks(tree)
        t = tree_of(tree)
        depth = t.depths()
        leaf = t.leaf_mask()
        eff_depth = depth + np.where(leaf, 0, 1)
        return lex_rank(-eff_depth, leaf.astype(np.int64), ranks)

    if isinstance(tree, PreparedTree):
        return tree.rank_for("ParDeepestFirst/hops", build)
    return build()


#: variant name -> (base heuristic name, variant callable)
VARIANTS = {
    "ParInnerFirst/naiveO": ("ParInnerFirst", par_inner_first_naive_order),
    "ParDeepestFirst/hops": ("ParDeepestFirst", par_hop_deepest_first),
}
