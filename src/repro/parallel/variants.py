"""Heuristic variants for ablation studies.

Section 5 makes two low-key design remarks that deserve measurement:

* ParInnerFirst's leaf order "needs to be a sequential postorder. It
  makes heuristic sense that this postorder is an *optimal* sequential
  postorder" -- :func:`par_inner_first_naive_order` drops the optimality
  and uses the arbitrary (index-order) postorder instead;
* ParDeepestFirst's depth is "the *w-weighted* length of the path" --
  :func:`par_hop_deepest_first` uses plain hop counts instead, degrading
  the critical-path awareness on heterogeneous trees.

Both variants reuse the same list-scheduling engine, so any performance
difference is attributable to the ablated choice alone.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Schedule
from repro.core.tree import TaskTree
from .list_scheduling import list_schedule, postorder_ranks

__all__ = ["par_inner_first_naive_order", "par_hop_deepest_first", "VARIANTS"]


def par_inner_first_naive_order(tree: TaskTree, p: int) -> Schedule:
    """ParInnerFirst with a naive (index-order) postorder as ``O``."""
    ranks = postorder_ranks(tree, tree.postorder())
    depth = tree.depths()

    def priority(i: int) -> tuple:
        if tree.is_leaf(i):
            return (1, int(ranks[i]), i)
        return (0, -int(depth[i]), int(ranks[i]))

    return list_schedule(tree, p, priority)


def par_hop_deepest_first(tree: TaskTree, p: int) -> Schedule:
    """ParDeepestFirst with hop-count depth instead of w-weighted depth."""
    ranks = postorder_ranks(tree)
    depth = tree.depths()

    def priority(i: int) -> tuple:
        return (
            -int(depth[i]) - (0 if tree.is_leaf(i) else 0),
            1 if tree.is_leaf(i) else 0,
            int(ranks[i]),
        )

    return list_schedule(tree, p, priority)


#: variant name -> (base heuristic name, variant callable)
VARIANTS = {
    "ParInnerFirst/naiveO": ("ParInnerFirst", par_inner_first_naive_order),
    "ParDeepestFirst/hops": ("ParDeepestFirst", par_hop_deepest_first),
}
