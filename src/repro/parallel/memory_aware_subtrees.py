"""Memory-aware ParSubtrees: spend parallelism only while it fits.

A second answer to the paper's future-work question ("take as input a
cap on the memory usage"), complementary to the list-scheduling variant
of :mod:`repro.parallel.memory_bounded`: keep ParSubtrees's two-phase
structure but choose *how many* subtrees run concurrently from the
memory budget.

The scheduler tries concurrency levels ``q = p, p-1, ..., 2`` -- running
the ``q`` heaviest subtrees of the Algorithm 2 splitting in parallel and
the rest sequentially -- and returns the first schedule whose *measured*
peak fits under the cap (the cheap sum-of-peaks predictor
:func:`predicted_parallel_memory` prunes hopeless levels first). With
``q = 1`` it degenerates to the memory-optimal sequential traversal, so
any ``cap >= M_seq`` is feasible; below that it raises
:class:`~repro.parallel.memory_bounded.MemoryCapError`.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Schedule
from repro.core.simulator import peak_memory
from repro.core.tree import TaskTree
from .memory_bounded import MemoryCapError
from .par_subtrees import (
    SequentialOrder,
    _default_order,
    _pack_schedule,
    _restricted_order,
)
from .split_subtrees import split_subtrees

__all__ = ["par_subtrees_memory_aware", "predicted_parallel_memory"]


def predicted_parallel_memory(tree: TaskTree, roots: list[int], q: int) -> float:
    """Optimistic phase-1 peak predictor for ``q``-way concurrency.

    The ``q`` concurrently active subtrees need at least the sum of the
    ``q`` *smallest* sequential subtree peaks; any concurrency level
    whose prediction already exceeds the cap cannot fit and is pruned
    without building the schedule.
    """
    from repro.sequential.postorder import optimal_postorder

    peaks = []
    for r in roots:
        sub, _ = tree.subtree(r)
        peaks.append(optimal_postorder(sub).peak_memory)
    peaks.sort()
    return float(sum(peaks[:q]))


def _build(tree, p, q, roots, work, sequential_order):
    chosen = sorted(roots, key=lambda r: float(work[r]), reverse=True)[:q]
    keep = np.zeros(tree.n, dtype=bool)
    per_proc: list[list[np.ndarray]] = [[] for _ in range(p)]
    for k, r in enumerate(chosen):
        sub, nodes = tree.subtree(r)
        sub_order = sequential_order(sub)
        per_proc[k].append(nodes[sub_order])
        keep[nodes] = True
    full_order = sequential_order(tree)
    seq_order = _restricted_order(full_order, ~keep)
    return _pack_schedule(tree, p, per_proc, seq_order)


def par_subtrees_memory_aware(
    tree: TaskTree,
    p: int,
    cap: float,
    sequential_order: SequentialOrder = _default_order,
) -> Schedule:
    """ParSubtrees constrained to a memory budget (see module docstring).

    Raises
    ------
    MemoryCapError
        when even the fully sequential fallback exceeds ``cap`` (i.e.
        ``cap`` is below the sequential optimum of ``sequential_order``).
    """
    if cap <= 0:
        raise ValueError("cap must be positive")
    split = split_subtrees(tree, p)
    roots = list(split.frontier_roots)
    work = tree.subtree_work()
    for q in range(min(p, len(roots)), 1, -1):
        if predicted_parallel_memory(tree, roots, q) > cap:
            continue
        schedule = _build(tree, p, q, roots, work, sequential_order)
        if peak_memory(schedule) <= cap + 1e-9:
            return schedule
    order = sequential_order(tree)
    schedule = Schedule.sequential(tree, order, p)
    peak = peak_memory(schedule)
    if peak > cap + 1e-9:
        raise MemoryCapError(
            f"cap {cap:g} below the sequential optimum {peak:g}: infeasible"
        )
    return schedule
