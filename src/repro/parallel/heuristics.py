"""The paper's heuristics, as a thin view over the central registry.

The canonical algorithm catalogue lives in :mod:`repro.registry`;
``HEURISTICS`` here remains the historical mapping of the four Section 5
heuristics (in the paper's presentation order) to their
``(tree, p) -> Schedule`` callables, because the experiment harness and
a large body of tests key on it. The ``evaluate`` helper runs one
heuristic and returns the (makespan, peak memory) pair measured by the
simulator, which is what every table and figure of Section 6 is built
from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import registry
from repro.core.schedule import Schedule
from repro.core.simulator import simulate
from repro.core.tree import TaskTree

__all__ = ["HEURISTICS", "HeuristicResult", "evaluate", "run_all"]

#: The four heuristics of Section 5, in the paper's presentation order.
HEURISTICS: dict[str, Callable[[TaskTree, int], Schedule]] = {
    name: registry.get(name).fn
    for name in ("ParSubtrees", "ParSubtreesOptim", "ParInnerFirst", "ParDeepestFirst")
}


@dataclass(frozen=True)
class HeuristicResult:
    """Measured performance of one heuristic on one scenario."""

    name: str
    makespan: float
    peak_memory: float


def evaluate(name: str, tree: TaskTree, p: int, validate: bool = False) -> HeuristicResult:
    """Run heuristic ``name`` on ``(tree, p)`` and measure it.

    Any registry algorithm name is accepted, not just the paper's four.
    ``validate=True`` re-checks schedule validity (slower; the test
    suite exercises this path, the benchmark harness skips it).
    """
    schedule = registry.run(name, tree, p)
    result = simulate(schedule, validate=validate)
    return HeuristicResult(name=name, makespan=result.makespan, peak_memory=result.peak_memory)


def run_all(tree: TaskTree, p: int, validate: bool = False) -> dict[str, HeuristicResult]:
    """Run every heuristic of the paper on one scenario."""
    return {name: evaluate(name, tree, p, validate=validate) for name in HEURISTICS}
