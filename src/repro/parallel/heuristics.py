"""Registry of the paper's heuristics, for the experiment harness.

Each entry maps the paper's heuristic name to a callable
``(tree, p) -> Schedule``. The ``evaluate`` helper runs one heuristic
and returns the (makespan, peak memory) pair measured by the simulator,
which is what every table and figure of Section 6 is built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.schedule import Schedule
from repro.core.simulator import simulate
from repro.core.tree import TaskTree

from .par_subtrees import par_subtrees, par_subtrees_optim
from .par_inner_first import par_inner_first
from .par_deepest_first import par_deepest_first

__all__ = ["HEURISTICS", "HeuristicResult", "evaluate", "run_all"]

#: The four heuristics of Section 5, in the paper's presentation order.
HEURISTICS: dict[str, Callable[[TaskTree, int], Schedule]] = {
    "ParSubtrees": par_subtrees,
    "ParSubtreesOptim": par_subtrees_optim,
    "ParInnerFirst": par_inner_first,
    "ParDeepestFirst": par_deepest_first,
}


@dataclass(frozen=True)
class HeuristicResult:
    """Measured performance of one heuristic on one scenario."""

    name: str
    makespan: float
    peak_memory: float


def evaluate(name: str, tree: TaskTree, p: int, validate: bool = False) -> HeuristicResult:
    """Run heuristic ``name`` on ``(tree, p)`` and measure it.

    ``validate=True`` re-checks schedule validity (slower; the test
    suite exercises this path, the benchmark harness skips it).
    """
    schedule = HEURISTICS[name](tree, p)
    result = simulate(schedule, validate=validate)
    return HeuristicResult(name=name, makespan=result.makespan, peak_memory=result.peak_memory)


def run_all(tree: TaskTree, p: int, validate: bool = False) -> dict[str, HeuristicResult]:
    """Run every heuristic of the paper on one scenario."""
    return {name: evaluate(name, tree, p, validate=validate) for name in HEURISTICS}
