"""``ParDeepestFirst`` (Section 5.3): critical-path-driven list scheduling.

The depth of a node is the *w-weighted* length of the path from the node
to the root, inclusive of the node itself; the deepest node is the first
node of the critical path. Priorities:

1. deepest nodes first (w-weighted path length to root);
2. inner nodes before leaf nodes (at equal depth);
3. leaves of equal depth in the order of the reference sequential
   postorder ``O`` -- a "reasonable" order that avoids alternating
   between leaves of different parents, which would hurt memory.

The priority is built as vectorized numpy key columns collapsed into a
single integer rank per node (:func:`repro.core.engine.lex_rank`), so
the setup is one numpy sweep and the event loop stays integer-only.

Focusing entirely on the makespan, its memory usage is unbounded
relative to the sequential optimum (Figure 5, reproduced in the theory
benchmarks), but its makespan is near-optimal in practice (Table 1:
best or within 5% of best in 99.9% of scenarios).
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import lex_rank
from repro.core.prepared import PreparedTree, tree_of
from repro.core.schedule import Schedule
from repro.core.tree import TaskTree
from .list_scheduling import list_schedule, postorder_ranks

__all__ = ["par_deepest_first", "par_deepest_first_rank"]


def _build_rank(tree: TaskTree | PreparedTree, order: np.ndarray | None) -> np.ndarray:
    ranks = postorder_ranks(tree, order)
    t = tree_of(tree)
    wdepth = (
        tree.weighted_depths()
        if isinstance(tree, PreparedTree)
        else t.weighted_depths()
    )
    leaf = t.leaf_mask()
    return lex_rank(-wdepth, leaf.astype(np.int64), ranks)


def par_deepest_first_rank(
    tree: TaskTree | PreparedTree, order: np.ndarray | None = None
) -> np.ndarray:
    """Priority rank of every node under the ParDeepestFirst order.

    Equivalent to the historical per-node key
    ``(-wdepth, is_leaf, rank_in_O)``. With a prepared tree and the
    default reference order the rank is built once and cached under the
    priority spec ``"ParDeepestFirst"``.
    """
    if isinstance(tree, PreparedTree) and order is None:
        return tree.rank_for("ParDeepestFirst", lambda: _build_rank(tree, None))
    return _build_rank(tree, order)


def par_deepest_first(
    tree: TaskTree | PreparedTree,
    p: int,
    order: np.ndarray | None = None,
    backend: str | None = None,
) -> Schedule:
    """Schedule ``tree`` on ``p`` processors with ParDeepestFirst.

    Parameters
    ----------
    tree, p:
        the instance (``tree`` bare or prepared).
    order:
        the reference sequential order ``O`` used to break ties among
        equal-depth leaves (default: Liu's optimal postorder).
    backend:
        engine sweep backend (default: auto; bit-identical either way).
    """
    return list_schedule(tree, p, par_deepest_first_rank(tree, order), backend=backend)
