"""Deterministic fault injection for the supervised campaign runtime.

A :class:`FaultPlan` is a declarative list of :class:`Fault` specs that
the runtime consults at well-defined seams:

* ``crash`` -- the worker process calls ``os._exit`` immediately before
  running a matching scenario (a hard crash: no cleanup, no queue
  flush; what an OOM kill looks like from the supervisor's side).
* ``slow`` -- the worker sleeps ``seconds`` before sweeping a matching
  scenario (after announcing the scenario start, so a supervisor
  timeout sees a wedged worker and kills it).
* ``compile_failure`` -- :mod:`repro.core._ckernel` reports the C
  backend unavailable, forcing the backend chain to degrade
  (c -> numba -> python).
* ``truncate_write`` -- the ``record``-th JSONL checkpoint append of
  this process writes only a prefix of its line and then hard-exits:
  the power-loss shape the resume path must recover from.

Faults match deterministically on the scenario identity (its
``tree|label|p`` key and/or its position in the dispatch stream) and on
the **attempt number**, never on wall-clock or worker identity -- so a
plan produces the same fault sequence on every run, which is what lets
the chaos suite assert byte-identical records under injected faults.

Activation is either programmatic (:func:`install`, used by in-process
tests and by supervised workers, which re-install the plan they were
handed) or via the ``REPRO_FAULT_PLAN`` environment variable holding
the JSON plan inline or ``@/path/to/plan.json`` (used by the CLI's
hidden ``--fault-plan`` flag and the CI chaos-smoke leg). With no plan
installed and the variable unset every hook is a cheap no-op.

The module is dependency-free on purpose: the production seams
(:mod:`repro.core._ckernel`, :mod:`repro.analysis.experiments`) import
it unconditionally.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass

__all__ = [
    "ENV_VAR",
    "Fault",
    "FaultPlan",
    "active_plan",
    "compile_failure",
    "install",
    "maybe_crash",
    "maybe_slow",
    "maybe_truncate_write",
    "scenario_key",
]

#: environment variable activating a plan process-wide (JSON inline, or
#: ``@path`` to a JSON file)
ENV_VAR = "REPRO_FAULT_PLAN"

#: the fault kinds the runtime consults
KINDS = ("crash", "slow", "compile_failure", "truncate_write")

#: exit code of injected hard crashes (distinguishable from real
#: signals and from Python tracebacks in the chaos tests)
CRASH_EXIT = 39


def scenario_key(tree: str, label: str, p: int) -> str:
    """The string identity of a scenario: ``"tree|label|p"``.

    ``label`` is what lands in ``ScenarioRecord.heuristic`` (the
    algorithm name, or ``name@capF``), so the key is exactly the resume
    key of the record.
    """
    return f"{tree}|{label}|{p}"


@dataclass(frozen=True)
class Fault:
    """One injected fault.

    Parameters
    ----------
    kind:
        one of :data:`KINDS`.
    scenario:
        optional ``"tree|label|p"`` key (see :func:`scenario_key`);
        ``None`` matches any scenario.
    index:
        optional position of the scenario in the run's dispatch stream
        (0-based over the scenarios actually executed, i.e. after
        resume skipping); ``None`` matches any position.
    attempts:
        attempt numbers (0-based) the fault fires on; the empty tuple
        fires on **every** attempt -- a poison scenario that exhausts
        its retries and is quarantined.
    seconds:
        sleep duration of ``slow`` faults.
    record:
        for ``truncate_write``: the 0-based ordinal of the checkpoint
        append (counted per process) that is cut short.
    keep_bytes:
        for ``truncate_write``: how many bytes of the line survive
        (default: half the line, newline never included).
    exit_code:
        process exit code of ``crash`` / ``truncate_write`` faults.
    """

    kind: str
    scenario: str | None = None
    index: int | None = None
    attempts: tuple[int, ...] = ()
    seconds: float = 0.0
    record: int | None = None
    keep_bytes: int | None = None
    exit_code: int = CRASH_EXIT

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        object.__setattr__(self, "attempts", tuple(int(a) for a in self.attempts))

    def matches(
        self,
        kind: str,
        scenario: str | None = None,
        index: int | None = None,
        attempt: int | None = None,
    ) -> bool:
        """Does this fault fire for the given scenario/attempt context?"""
        if self.kind != kind:
            return False
        if self.scenario is not None and self.scenario != scenario:
            return False
        if self.index is not None and self.index != index:
            return False
        if self.attempts and (attempt is None or attempt not in self.attempts):
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, JSON-serialisable list of faults."""

    faults: tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "faults",
            tuple(f if isinstance(f, Fault) else Fault(**f) for f in self.faults),
        )

    def match(
        self,
        kind: str,
        scenario: str | None = None,
        index: int | None = None,
        attempt: int | None = None,
    ) -> Fault | None:
        """The first fault firing in this context, or None."""
        for f in self.faults:
            if f.matches(kind, scenario, index, attempt):
                return f
        return None

    def without(self, kind: str) -> "FaultPlan":
        """A copy of the plan with every fault of ``kind`` removed."""
        return FaultPlan(tuple(f for f in self.faults if f.kind != kind))

    def to_json(self) -> str:
        return json.dumps(
            {"faults": [{k: v for k, v in asdict(f).items() if v not in (None, (), [])}
                        for f in self.faults]}
        )

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        """Parse a plan from its JSON form (raises ``ValueError`` on a
        malformed document, listing what was wrong)."""
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from None
        if not isinstance(doc, dict) or not isinstance(doc.get("faults"), list):
            raise ValueError('fault plan must be {"faults": [...]}')
        faults = []
        for k, row in enumerate(doc["faults"]):
            if not isinstance(row, dict):
                raise ValueError(f"fault #{k} must be an object")
            try:
                if "attempts" in row:
                    row = {**row, "attempts": tuple(row["attempts"])}
                faults.append(Fault(**row))
            except (TypeError, ValueError) as exc:
                raise ValueError(f"fault #{k} is invalid: {exc}") from None
        return FaultPlan(tuple(faults))


# ----------------------------------------------------------------------
# process-wide activation
# ----------------------------------------------------------------------

#: programmatically installed plan (takes precedence over the env var)
_INSTALLED: FaultPlan | None = None

#: cache of the last env-var parse, keyed by the raw variable value
_ENV_CACHE: tuple[str, FaultPlan] | None = None

#: per-process ordinal of JSONL checkpoint appends (truncate_write)
_WRITE_COUNT = 0


def install(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-wide (``None`` uninstalls).

    Also resets the per-process checkpoint-append counter, so
    ``truncate_write`` ordinals count from the moment of installation.
    """
    global _INSTALLED, _WRITE_COUNT
    _INSTALLED = plan
    _WRITE_COUNT = 0


def active_plan() -> FaultPlan | None:
    """The plan in force: the installed one, else ``REPRO_FAULT_PLAN``.

    The env form is parsed once per distinct value (so the per-call
    cost with no plan is one dict lookup). ``@path`` values load the
    plan from a JSON file.
    """
    if _INSTALLED is not None:
        return _INSTALLED
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    global _ENV_CACHE
    if _ENV_CACHE is not None and _ENV_CACHE[0] == raw:
        return _ENV_CACHE[1]
    text = raw
    if raw.startswith("@"):
        with open(raw[1:]) as fh:
            text = fh.read()
    plan = FaultPlan.from_json(text)
    _ENV_CACHE = (raw, plan)
    return plan


# ----------------------------------------------------------------------
# runtime hooks (each a no-op without an active plan)
# ----------------------------------------------------------------------
def maybe_crash(scenario: str, index: int | None, attempt: int) -> None:
    """Hard-exit the process if a ``crash`` fault fires here."""
    plan = active_plan()
    if plan is None:
        return
    f = plan.match("crash", scenario, index, attempt)
    if f is not None:
        os._exit(f.exit_code)


def maybe_slow(scenario: str, index: int | None, attempt: int) -> None:
    """Sleep if a ``slow`` fault fires here (a wedged-worker stand-in)."""
    plan = active_plan()
    if plan is None:
        return
    f = plan.match("slow", scenario, index, attempt)
    if f is not None:
        time.sleep(f.seconds)


def compile_failure() -> bool:
    """True when a ``compile_failure`` fault is active (the C kernel
    then reports itself unavailable, whatever its real state)."""
    plan = active_plan()
    return plan is not None and plan.match("compile_failure") is not None


def maybe_truncate_write(fh, line: str) -> None:
    """Checkpoint-append seam: cut the ``record``-th line short and die.

    Counts JSONL record appends per process (from plan installation);
    when a ``truncate_write`` fault names the current ordinal, only
    ``keep_bytes`` of ``line`` (default: half, never the newline) are
    written before a hard exit -- exactly the residue a power loss
    mid-append leaves behind, which :func:`repro.analysis.campaign.
    recover_checkpoint` must drop on resume.
    """
    plan = active_plan()
    if plan is None:
        return
    global _WRITE_COUNT
    ordinal = _WRITE_COUNT
    _WRITE_COUNT += 1
    for f in plan.faults:
        if f.kind == "truncate_write" and f.record == ordinal:
            body = line.rstrip("\n")
            keep = len(body) // 2 if f.keep_bytes is None else f.keep_bytes
            fh.write(body[: max(0, min(keep, len(body)))])
            fh.flush()
            try:
                os.fsync(fh.fileno())
            except OSError:  # pragma: no cover - fsync is best-effort here
                pass
            os._exit(f.exit_code)
