"""Deterministic test doubles for the fault-tolerant campaign runtime.

The only member today is :mod:`repro.testing.faults`: a declarative
fault-injection harness (:class:`~repro.testing.faults.FaultPlan`)
activated either programmatically (:func:`~repro.testing.faults.install`)
or via the ``REPRO_FAULT_PLAN`` environment variable, which the chaos
test suite and the CI chaos-smoke leg use to prove that campaigns
survive worker crashes, compile failures, hung scenarios and truncated
checkpoint writes with byte-identical successful records.
"""

from .faults import (
    ENV_VAR,
    Fault,
    FaultPlan,
    active_plan,
    install,
    scenario_key,
)

__all__ = [
    "ENV_VAR",
    "Fault",
    "FaultPlan",
    "active_plan",
    "install",
    "scenario_key",
]
