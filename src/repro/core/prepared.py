"""Per-tree preparation bundle shared across engine runs.

The paper's experimental story sweeps many schedulers over the *same*
tree while varying the processor count and the memory cap. Every one of
those runs derives the identical state from the :class:`TaskTree`:

* the CSR child counts the sweep kernels mutate (``pending``),
* the memory columns (``alloc = sizes + f`` acquired at start,
  ``completion_frees`` released at completion),
* the memory-optimal sequential postorder (ParInnerFirst's leaf order,
  ParDeepestFirst's tie-break, the capped modes' activation order, and
  the memory lower bound of every record),
* the per-algorithm priority rank permutations (one ``lex_rank`` sweep
  each -- identical for every ``p`` and every cap), and
* the pure-Python backend's list conversions of the per-node arrays.

:class:`PreparedTree` computes each of these **once** (lazily, on first
use) and hands the same typed, read-only buffers to every subsequent
engine run, so an (algorithm x p x cap) grid pays the per-tree
preparation a single time and the per-scenario cost collapses to the
event sweep itself. Everything cached here is a pure function of the
tree, so prepared-path schedules are **bit-identical** to the
unprepared path -- pinned by the golden tests in
``tests/core/test_prepared.py`` / ``tests/core/test_backends.py``.

Every engine entry point (:class:`~repro.core.engine.SchedulerEngine`,
``list_schedule``, the list heuristics, ``memory_bounded_schedule``,
``registry.Algorithm.run``) accepts either a :class:`TaskTree` or a
:class:`PreparedTree`; :func:`as_prepared` / :func:`tree_of` are the
two conversion helpers they share. Algorithms that do not understand
the prepared wrapper (the subtree-splitting family, the sequential
traversals) transparently receive the underlying tree.

A :class:`PreparedTree` is cheap to construct (everything is lazy); it
only pays off when reused, which is what the campaign runner
(:mod:`repro.analysis.campaign`) does: group scenarios by tree, prepare
once per worker, sweep many times.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Hashable

import numpy as np

from .tree import TaskTree

__all__ = ["PreparedTree", "as_prepared", "stack_unique", "tree_of"]


def _frozen(arr: np.ndarray) -> np.ndarray:
    """Mark an array read-only and return it (cache hygiene)."""
    arr.setflags(write=False)
    return arr


def stack_unique(rows: list) -> tuple[np.ndarray, np.ndarray]:
    """Stack per-scenario rows deduplicated by array identity.

    The megabatch kernel spec takes per-scenario *ids* into shared row
    stacks (rank permutations, activation orders) rather than one row
    per scenario: grids reuse a handful of arrays cached on the
    prepared bundle, so identity dedup keeps the stacks tiny.

    Returns ``(stack, ids)`` where ``ids[i]`` is the row index of
    ``rows[i]`` in ``stack``, or ``-1`` where ``rows[i]`` is None (an
    uncapped scenario has no activation order). When every row is None
    the stack is a ``(1, 0)`` int64 dummy, so kernels can still slice
    an empty row of it.
    """
    ids = np.empty(len(rows), dtype=np.int64)
    unique: list[np.ndarray] = []
    index: dict[int, int] = {}
    for i, row in enumerate(rows):
        if row is None:
            ids[i] = -1
            continue
        k = index.get(id(row))
        if k is None:
            k = len(unique)
            index[id(row)] = k
            unique.append(row)
        ids[i] = k
    if unique:
        stack = np.ascontiguousarray(np.stack(unique))
    else:
        stack = np.zeros((1, 0), dtype=np.int64)
    return stack, ids


class PreparedTree:
    """Frozen bundle of everything the engine derives from a tree.

    Parameters
    ----------
    tree:
        the task tree to prepare. Construction is O(1); every derived
        quantity is computed lazily on first use and cached for the
        lifetime of the bundle.

    Notes
    -----
    The cached arrays are read-only and shared by reference across
    runs; the one mutable piece of state -- the ``pending`` scratch
    the sweep kernels consume -- is a per-*slot* row refilled from the
    pristine ``pending0`` column at the start of every run, so runs
    never observe each other. Single-threaded callers use the default
    slot 0; a caller driving sweeps from multiple Python threads hands
    each thread its own slot (one mutation scratch per thread slot, not
    per tree). The batched kernels (:func:`repro.core.engine.sweep_batch`)
    never touch the scratch at all -- they copy ``pending0`` into
    per-worker arenas inside the kernel.
    """

    __slots__ = (
        "tree",
        "_pending0",
        "_pending_scratch",
        "_scratch_lock",
        "_scratch_free",
        "_scratch_next",
        "_alloc",
        "_optimal",
        "_sigma_rank",
        "_wdepths",
        "_exactness",
        "_ranks",
        "_byranks",
        "_lists",
        "_ready_leaf_ranks_cache",
    )

    def __init__(self, tree: TaskTree) -> None:
        if not isinstance(tree, TaskTree):
            raise TypeError(f"PreparedTree wraps a TaskTree, got {type(tree).__name__}")
        self.tree = tree
        self._pending0 = None
        self._pending_scratch = None
        self._scratch_lock = threading.Lock()
        self._scratch_free: list[int] = []
        self._scratch_next = 0
        self._alloc = None
        self._optimal = None
        self._sigma_rank = None
        self._wdepths = None
        self._exactness = None
        self._ranks: dict[Hashable, np.ndarray] = {}
        self._byranks: dict[int, np.ndarray] = {}
        self._lists: dict[str, list] = {}

    # ------------------------------------------------------------------
    # typed sweep columns (shared read-only across runs)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of tasks in the underlying tree."""
        return self.tree.n

    @property
    def pending0(self) -> np.ndarray:
        """Pristine per-node child counts (``np.diff(child_ptr)``),
        read-only; the sweep kernels mutate a scratch copy."""
        if self._pending0 is None:
            self._pending0 = _frozen(
                np.ascontiguousarray(np.diff(self.tree.child_ptr))
            )
        return self._pending0

    def pending_scratch(self, slot: int = 0) -> np.ndarray:
        """The reusable ``pending`` buffer of mutation slot ``slot``,
        refilled from :attr:`pending0` (one memcpy instead of a diff +
        allocation per run). Valid until the next call with the same
        slot; distinct slots are rows of one matrix and never alias, so
        each Python thread of a multi-threaded driver can own a slot.
        """
        if slot < 0:
            raise ValueError("slot must be non-negative")
        cache = self._pending_scratch
        if cache is None or len(cache) <= slot:
            with self._scratch_lock:
                cache = self._pending_scratch
                if cache is None or len(cache) <= slot:
                    matrix = np.empty((slot + 1, self.n), dtype=np.int64)
                    # cache the row views so each slot hands back the same
                    # buffer object run after run (grown matrices retire the
                    # old ones, but live views keep their memory valid)
                    cache = [matrix[i] for i in range(slot + 1)]
                    self._pending_scratch = cache
        row = cache[slot]
        np.copyto(row, self.pending0)
        return row

    def acquire_scratch_slot(self) -> int:
        """Claim exclusive ownership of a mutation-scratch slot.

        The slot stays owned until :meth:`release_scratch_slot`; while
        owned, no other caller is handed the same slot, so concurrent
        sweeps from multiple Python threads each mutate a private
        ``pending`` row. Prefer :meth:`lease_scratch`.
        """
        with self._scratch_lock:
            if self._scratch_free:
                return self._scratch_free.pop()
            slot = self._scratch_next
            self._scratch_next += 1
            return slot

    def release_scratch_slot(self, slot: int) -> None:
        """Return a slot claimed by :meth:`acquire_scratch_slot`."""
        with self._scratch_lock:
            self._scratch_free.append(slot)

    @contextmanager
    def lease_scratch(self):
        """Context manager yielding a refilled, exclusively-owned
        ``pending`` scratch row (one mutation scratch per in-flight
        sweep: the engine leases one around each kernel call, so a
        shared :class:`PreparedTree` -- e.g. the scheduling service's
        process-wide LRU -- is safe to sweep from concurrent threads)."""
        slot = self.acquire_scratch_slot()
        try:
            yield self.pending_scratch(slot)
        finally:
            self.release_scratch_slot(slot)

    @property
    def alloc(self) -> np.ndarray:
        """Memory acquired when each task starts (``sizes + f``),
        read-only, shared across runs."""
        if self._alloc is None:
            self._alloc = _frozen(self.tree.sizes + self.tree.f)
        return self._alloc

    @property
    def free_on_end(self) -> np.ndarray:
        """Memory released when each task completes (cached on the
        tree itself, already read-only)."""
        return self.tree.completion_frees()

    # ------------------------------------------------------------------
    # exactness flags (pure functions of the weight column)
    # ------------------------------------------------------------------
    def _exactness_flags(self) -> tuple[bool, bool]:
        if self._exactness is None:
            w = self.tree.w
            wsum = float(w.sum())
            int_keys = bool(
                np.all(np.isfinite(w))
                and np.all(np.floor(w) == w)
                and wsum * self.tree.n < 2**62
            )
            kernel_exact = (not int_keys) or wsum < 2**53
            self._exactness = (int_keys, kernel_exact)
        return self._exactness

    @property
    def int_keys(self) -> bool:
        """True when the reference backend can use exact integer event
        keys (integral weights, total * n below 2**62)."""
        return self._exactness_flags()[0]

    @property
    def kernel_exact(self) -> bool:
        """True when the kernel backends' float64 event keys are exactly
        equivalent to the reference backend's encoding."""
        return self._exactness_flags()[1]

    # ------------------------------------------------------------------
    # shared sequential preprocessing
    # ------------------------------------------------------------------
    def optimal(self):
        """Liu's memory-optimal postorder of the tree, computed once.

        This single cache carries most of the grid win: the optimal
        postorder is the reference order of ParInnerFirst and
        ParDeepestFirst, the default activation order and cap baseline
        of the memory-bounded modes, and the memory lower bound of
        every experiment record.
        """
        if self._optimal is None:
            from repro.sequential.postorder import optimal_postorder

            self._optimal = optimal_postorder(self.tree)
        return self._optimal

    @property
    def optimal_computed(self):
        """The cached optimal-postorder result, or None when it has not
        been computed yet (lets callers identity-check an explicit
        ``order`` argument without forcing the computation)."""
        return self._optimal

    def sigma_rank(self) -> np.ndarray:
        """Rank of every node in the optimal postorder (read-only).

        ``sigma_rank()[optimal().order] == arange(n)`` -- the priority
        permutation of the memory-bounded modes and the shared
        tie-break column of the list heuristics.
        """
        if self._sigma_rank is None:
            order = self.optimal().order
            rank = np.empty(self.tree.n, dtype=np.int64)
            rank[np.asarray(order, dtype=np.int64)] = np.arange(
                self.tree.n, dtype=np.int64
            )
            self._sigma_rank = self._adopt_rank(_frozen(rank))
        return self._sigma_rank

    def weighted_depths(self) -> np.ndarray:
        """w-weighted root-path length per node (cached, read-only);
        the key column of ParDeepestFirst and the critical path."""
        if self._wdepths is None:
            self._wdepths = _frozen(self.tree.weighted_depths())
        return self._wdepths

    def memory_lower_bound(self) -> float:
        """The paper's sequential memory lower bound (optimal postorder
        peak), from the shared cache."""
        return self.optimal().peak_memory

    def makespan_lower_bound(self, p: int) -> float:
        """``max(W / p, CP)`` with the total work and critical path read
        from the prepared caches (bit-identical to the unprepared
        computation)."""
        if p < 1:
            raise ValueError("p must be positive")
        return max(float(self.tree.w.sum()) / p, float(self.weighted_depths().max()))

    # ------------------------------------------------------------------
    # per-algorithm priority-rank cache
    # ------------------------------------------------------------------
    def rank_for(
        self, key: Hashable, builder: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """The priority rank permutation for priority spec ``key``.

        ``builder`` runs once per key; the resulting rank is frozen,
        its inverse permutation is precomputed (so the engine skips the
        per-run ``byrank`` scatter), and every later request returns
        the same array. Keys identify the *priority spec* -- e.g. the
        registry name of a heuristic with its default reference order.
        """
        rank = self._ranks.get(key)
        if rank is None:
            rank = np.ascontiguousarray(builder(), dtype=np.int64)
            self._ranks[key] = self._adopt_rank(_frozen(rank))
            rank = self._ranks[key]
        return rank

    def _adopt_rank(self, rank: np.ndarray) -> np.ndarray:
        """Register ``rank`` with the byrank cache (inverse permutation
        computed once, keyed by object identity)."""
        if id(rank) not in self._byranks:
            byrank = np.empty(self.tree.n, dtype=np.int64)
            byrank[rank] = np.arange(self.tree.n, dtype=np.int64)
            self._byranks[id(rank)] = _frozen(byrank)
        return rank

    def byrank_for(self, rank: np.ndarray) -> np.ndarray | None:
        """Cached inverse permutation of ``rank``, or None when ``rank``
        was not produced by this bundle (the engine then computes its
        own, exactly as before)."""
        return self._byranks.get(id(rank))

    # ------------------------------------------------------------------
    # pure-Python backend list caches
    # ------------------------------------------------------------------
    def _list(self, key: str, make: Callable[[], list]) -> list:
        lst = self._lists.get(key)
        if lst is None:
            lst = make()
            self._lists[key] = lst
        return lst

    def parent_list(self) -> list:
        """``tree.parent.tolist()``, converted once (the reference
        backend reads per-node arrays as Python lists)."""
        return self._list("parent", self.tree.parent.tolist)

    def w_list(self) -> list:
        """Durations as a list -- int when the engine uses integer event
        keys, float otherwise (same values either way)."""
        if self.int_keys:
            return self._list("w_int", lambda: self.tree.w.astype(np.int64).tolist())
        return self._list("w_float", self.tree.w.tolist)

    def alloc_list(self) -> list:
        """``(sizes + f).tolist()``, converted once."""
        return self._list("alloc", self.alloc.tolist)

    def free_list(self) -> list:
        """``completion_frees().tolist()``, converted once."""
        return self._list("free", self.free_on_end.tolist)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cached = [
            name
            for name, slot in (
                ("pending", self._pending0),
                ("optimal", self._optimal),
                ("wdepths", self._wdepths),
            )
            if slot is not None
        ]
        return (
            f"PreparedTree(n={self.tree.n}, ranks={sorted(map(str, self._ranks))}, "
            f"cached={cached})"
        )


def as_prepared(tree: TaskTree | PreparedTree) -> PreparedTree:
    """Wrap ``tree`` in a :class:`PreparedTree` (pass-through when it
    already is one). A fresh wrapper shares no caches, so wrapping a
    bare tree per call is exactly as much work as the historical
    unprepared path."""
    if isinstance(tree, PreparedTree):
        return tree
    return PreparedTree(tree)


def tree_of(tree: TaskTree | PreparedTree) -> TaskTree:
    """The underlying :class:`TaskTree` of either input form."""
    if isinstance(tree, PreparedTree):
        return tree.tree
    return tree
