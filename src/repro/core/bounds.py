"""Lower bounds used throughout the experimental evaluation (Section 6.3).

* **Memory lower bound** -- the peak memory of the best *sequential*
  traversal. Using more processors can only increase the peak
  (Section 5: "Employing more processors cannot reduce the amount of
  memory required"), so any sequential optimum bounds every parallel
  schedule from below. Like the paper, the default proxy is the optimal
  *postorder* (optimal in 95.8% of the paper's instances, average gap
  1%); the exact traversal of Liu is available for small trees.

* **Makespan lower bound** -- ``max(W / p, CP)`` where ``W`` is the total
  work and ``CP`` the w-weighted critical path: a processor-count bound
  and a dependence-chain bound.
"""

from __future__ import annotations

from .tree import TaskTree

__all__ = ["memory_lower_bound", "makespan_lower_bound"]


def memory_lower_bound(tree: TaskTree, method: str = "postorder") -> float:
    """Sequential-memory lower bound for any schedule of ``tree``.

    Parameters
    ----------
    tree:
        the task tree.
    method:
        ``"postorder"`` (default) uses Liu's optimal postorder, the
        paper's choice for the experiments; ``"exact"`` runs Liu's exact
        optimal-traversal algorithm (O(n^2) worst case, for modest trees).
    """
    # Imported lazily: repro.sequential depends on repro.core.
    from repro.sequential.postorder import optimal_postorder
    from repro.sequential.liu import liu_optimal_traversal

    if method == "postorder":
        return optimal_postorder(tree).peak_memory
    if method == "exact":
        return liu_optimal_traversal(tree).peak_memory
    raise ValueError(f"unknown memory bound method: {method!r}")


def makespan_lower_bound(tree: TaskTree, p: int) -> float:
    """``max(total work / p, critical path)`` (Section 6.3, Figure 6)."""
    if p < 1:
        raise ValueError("p must be positive")
    return max(tree.total_work() / p, tree.critical_path())
