"""Tree-shaped task graph model.

This module implements the application model of Section 3.1 of the paper:
a rooted *in-tree* of ``n`` tasks where task ``i`` carries

* ``w[i]``    -- processing time of the task,
* ``sizes[i]``-- size of the *execution file* (the task's program),
  written :math:`n_i` in the paper,
* ``f[i]``    -- size of the *output file*, i.e. of the edge from ``i`` to
  its parent (:math:`f_i` in the paper).

Processing task ``i`` requires memory
:math:`\\sum_{j \\in Children(i)} f_j + n_i + f_i`; once the task completes,
its input files and execution file are freed while its output file remains
resident until the parent completes.

The structure is array-based (``numpy`` integer/float vectors) so that all
per-node queries are O(1) and whole-tree sweeps are cache-friendly, which is
what makes the heuristics run at :math:`O(n \\log n)` overall as in the
paper's C implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["TaskTree", "NO_PARENT"]

#: Sentinel used in ``parent`` arrays for the root node.
NO_PARENT: int = -1


@dataclass(frozen=True)
class TaskTree:
    """An in-tree task graph with memory weights and task durations.

    Instances are immutable; all mutating-style operations return new trees.

    Parameters
    ----------
    parent:
        ``parent[i]`` is the parent of node ``i``; the root has
        ``parent[root] == NO_PARENT`` (-1). Exactly one root is required.
    w:
        processing times (non-negative).
    f:
        output file sizes, one per node (non-negative). The root's output
        may be zero (results sent to the outside world).
    sizes:
        execution file sizes (:math:`n_i` in the paper, non-negative).

    Notes
    -----
    Children lists, the postorder, and subtree aggregates are computed
    lazily and cached, so constructing a tree is O(n).
    """

    parent: np.ndarray
    w: np.ndarray
    f: np.ndarray
    sizes: np.ndarray
    _children: tuple[tuple[int, ...], ...] = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )
    _postorder: tuple[int, ...] = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        parent = np.ascontiguousarray(np.asarray(self.parent, dtype=np.int64))
        w = np.ascontiguousarray(np.asarray(self.w, dtype=np.float64))
        f = np.ascontiguousarray(np.asarray(self.f, dtype=np.float64))
        sizes = np.ascontiguousarray(np.asarray(self.sizes, dtype=np.float64))
        n = parent.shape[0]
        if not (w.shape[0] == f.shape[0] == sizes.shape[0] == n):
            raise ValueError("parent, w, f, sizes must have the same length")
        if n == 0:
            raise ValueError("a task tree must contain at least one task")
        roots = np.flatnonzero(parent == NO_PARENT)
        if roots.shape[0] != 1:
            raise ValueError(f"expected exactly one root, found {roots.shape[0]}")
        if np.any((parent < NO_PARENT) | (parent >= n)):
            raise ValueError("parent indices out of range")
        if np.any(parent == np.arange(n)):
            raise ValueError("a node cannot be its own parent")
        if np.any(w < 0) or np.any(f < 0) or np.any(sizes < 0):
            raise ValueError("weights must be non-negative")
        object.__setattr__(self, "parent", parent)
        object.__setattr__(self, "w", w)
        object.__setattr__(self, "f", f)
        object.__setattr__(self, "sizes", sizes)
        children: list[list[int]] = [[] for _ in range(n)]
        for i in range(n):
            p = parent[i]
            if p != NO_PARENT:
                children[p].append(i)
        object.__setattr__(
            self, "_children", tuple(tuple(c) for c in children)
        )
        # Reject cycles / forests disguised as trees: a connected structure
        # with n nodes, n-1 edges and one root is a tree iff every node
        # reaches the root, which the postorder computation verifies. The
        # order is cached -- the heuristics' priority sweeps all start
        # from it.
        root = int(np.flatnonzero(parent == NO_PARENT)[0])
        out: list[int] = []
        stack: list[int] = [root]
        kids = self._children
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(kids[node])
        if len(out) != n:
            raise ValueError("parent structure contains a cycle")
        out.reverse()
        object.__setattr__(self, "_postorder", tuple(out))

    @classmethod
    def from_parents(
        cls,
        parent: Sequence[int],
        w: Sequence[float] | float = 1.0,
        f: Sequence[float] | float = 1.0,
        sizes: Sequence[float] | float = 0.0,
    ) -> "TaskTree":
        """Build a tree from a parent vector, broadcasting scalar weights.

        ``w``, ``f`` and ``sizes`` may each be a scalar (applied to every
        node) or a per-node sequence.
        """
        n = len(parent)

        def expand(x: Sequence[float] | float) -> np.ndarray:
            if np.isscalar(x):
                return np.full(n, float(x))  # type: ignore[arg-type]
            return np.asarray(x, dtype=np.float64)

        return cls(np.asarray(parent, dtype=np.int64), expand(w), expand(f), expand(sizes))

    @classmethod
    def pebble_game(cls, parent: Sequence[int]) -> "TaskTree":
        """Build a Pebble Game model tree (Section 4): ``f=1, n=0, w=1``."""
        return cls.from_parents(parent, w=1.0, f=1.0, sizes=0.0)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]],
        n: int,
        w: Sequence[float] | float = 1.0,
        f: Sequence[float] | float = 1.0,
        sizes: Sequence[float] | float = 0.0,
    ) -> "TaskTree":
        """Build a tree from ``(child, parent)`` edges over nodes ``0..n-1``."""
        parent = np.full(n, NO_PARENT, dtype=np.int64)
        for c, p in edges:
            if parent[c] != NO_PARENT:
                raise ValueError(f"node {c} listed with two parents")
            parent[c] = p
        return cls.from_parents(parent, w, f, sizes)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of tasks in the tree."""
        return int(self.parent.shape[0])

    def __len__(self) -> int:
        return self.n

    @property
    def root(self) -> int:
        """Index of the root task."""
        return int(np.flatnonzero(self.parent == NO_PARENT)[0])

    def children(self, i: int) -> tuple[int, ...]:
        """Children of node ``i`` (empty tuple for leaves)."""
        return self._children[i]

    def is_leaf(self, i: int) -> bool:
        """True iff node ``i`` has no children."""
        return not self._children[i]

    def leaf_mask(self) -> np.ndarray:
        """Boolean mask over all nodes, True at leaves (vectorized)."""
        mask = np.ones(self.n, dtype=bool)
        mask[self.parent[self.parent != NO_PARENT]] = False
        return mask

    def leaves(self) -> np.ndarray:
        """Indices of all leaf nodes, ascending."""
        return np.flatnonzero(self.leaf_mask())

    def n_leaves(self) -> int:
        """Number of leaf nodes."""
        return int(self.leaf_mask().sum())

    def degree(self, i: int) -> int:
        """Number of children of node ``i``."""
        return len(self._children[i])

    def max_degree(self) -> int:
        """Maximum number of children over all nodes."""
        return max(len(c) for c in self._children)

    # ------------------------------------------------------------------
    # traversals and aggregates
    # ------------------------------------------------------------------
    def postorder(self) -> np.ndarray:
        """A postorder of the tree (children before parents), iterative.

        The order visits children in index order; it is *a* valid
        topological order, not the memory-optimal one (see
        :mod:`repro.sequential.postorder` for that). Computed once at
        construction (iteratively, so the paper's deep trees -- depth up
        to 70 000 -- never hit Python's recursion limit) and cached.
        """
        return np.asarray(self._postorder, dtype=np.int64)

    def topological_order(self) -> np.ndarray:
        """Alias for :meth:`postorder` (any child-before-parent order)."""
        return self.postorder()

    def depths(self) -> np.ndarray:
        """Edge-count depth of every node (root has depth 0).

        Pointer doubling: ``O(n log height)`` in fully vectorized
        sweeps (``depth[i]`` always counts the edges from ``i`` to
        ``anc[i]``, the clamped :math:`2^k`-th ancestor).
        """
        n = self.n
        parent = self.parent
        anc = np.where(parent == NO_PARENT, np.arange(n, dtype=np.int64), parent)
        depth = (parent != NO_PARENT).astype(np.int64)
        while True:
            anc2 = anc[anc]
            if np.array_equal(anc2, anc):
                return depth
            depth += depth[anc]
            anc = anc2

    def height(self) -> int:
        """Height of the tree in edges (0 for a single node)."""
        return int(self.depths().max())

    def weighted_depths(self) -> np.ndarray:
        """w-weighted path length from each node to the root, inclusive.

        This is the *depth* notion used by ParDeepestFirst (Section 5.3):
        the length includes ``w[i]`` itself, so the deepest node is the
        start of the critical path.
        """
        n = self.n
        depth = self.depths()
        height = int(depth.max()) if n else 0
        if height + 1 <= max(64, n // 16):
            # Level-synchronous: one vectorized gather-add per depth
            # level (each node receives exactly w[i] + wdepth[parent],
            # the same single addition as the sequential sweep).
            order = np.argsort(depth, kind="stable")
            counts = np.bincount(depth, minlength=height + 1)
            wdepth = self.w.copy()
            parent = self.parent
            pos = int(counts[0])  # the depth-0 level is the root alone
            for c in counts[1:]:
                nodes = order[pos : pos + c]
                wdepth[nodes] += wdepth[parent[nodes]]
                pos += c
            return wdepth
        # Deep (chain-like) trees: levels are too narrow for numpy
        # calls to pay off; fall back to the list-based sweep.
        parent_l = self.parent.tolist()
        w = self.w.tolist()
        out = [0.0] * n
        for node in reversed(self._postorder):
            p = parent_l[node]
            out[node] = w[node] + (out[p] if p != NO_PARENT else 0.0)
        return np.asarray(out, dtype=np.float64)

    def subtree_work(self) -> np.ndarray:
        """Total processing time of each subtree (``W_i`` in Section 5.1)."""
        parent = self.parent.tolist()
        work = self.w.tolist()
        for node in self._postorder:
            p = parent[node]
            if p != NO_PARENT:
                work[p] += work[node]
        return np.asarray(work, dtype=np.float64)

    def subtree_sizes(self) -> np.ndarray:
        """Number of nodes in each subtree (including the subtree root)."""
        parent = self.parent.tolist()
        size = [1] * self.n
        for node in self._postorder:
            p = parent[node]
            if p != NO_PARENT:
                size[p] += size[node]
        return np.asarray(size, dtype=np.int64)

    def subtree_nodes(self, i: int) -> np.ndarray:
        """All node indices in the subtree rooted at ``i`` (preorder)."""
        out: list[int] = []
        stack = [i]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(self._children[node])
        return np.asarray(out, dtype=np.int64)

    def critical_path(self) -> float:
        """Length of the w-weighted critical path (root to deepest leaf)."""
        return float(self.weighted_depths().max())

    def total_work(self) -> float:
        """Sum of all processing times (``W`` in the makespan lower bound)."""
        return float(self.w.sum())

    def input_size(self, i: int) -> float:
        """Total size of the input files of node ``i``."""
        return float(sum(self.f[j] for j in self._children[i]))

    def processing_memory(self, i: int) -> float:
        """Memory needed while node ``i`` executes:
        :math:`\\sum_{j\\in Children(i)} f_j + n_i + f_i`."""
        return self.input_size(i) + float(self.sizes[i]) + float(self.f[i])

    # ------------------------------------------------------------------
    # derived trees
    # ------------------------------------------------------------------
    def subtree(self, i: int) -> tuple["TaskTree", np.ndarray]:
        """Extract the subtree rooted at ``i`` as a standalone tree.

        Returns the new tree and the array mapping new indices to the
        original node indices.
        """
        nodes = self.subtree_nodes(i)
        remap = {int(old): new for new, old in enumerate(nodes)}
        parent = np.empty(nodes.shape[0], dtype=np.int64)
        for new, old in enumerate(nodes):
            p = self.parent[old]
            parent[new] = remap[int(p)] if int(old) != int(i) else NO_PARENT
        return (
            TaskTree(parent, self.w[nodes], self.f[nodes], self.sizes[nodes]),
            nodes,
        )

    def with_weights(
        self,
        w: Sequence[float] | None = None,
        f: Sequence[float] | None = None,
        sizes: Sequence[float] | None = None,
    ) -> "TaskTree":
        """Return a copy with some weight vectors replaced."""
        return TaskTree(
            self.parent,
            self.w if w is None else np.asarray(w, dtype=np.float64),
            self.f if f is None else np.asarray(f, dtype=np.float64),
            self.sizes if sizes is None else np.asarray(sizes, dtype=np.float64),
        )

    def iter_nodes(self) -> Iterator[int]:
        """Iterate over node indices ``0..n-1``."""
        return iter(range(self.n))

    # ------------------------------------------------------------------
    # interoperability
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` with edges child -> parent.

        Node attributes: ``w``, ``f``, ``size``; useful for plotting and
        cross-checking with graph algorithms.
        """
        import networkx as nx

        g = nx.DiGraph()
        for i in range(self.n):
            g.add_node(i, w=float(self.w[i]), f=float(self.f[i]), size=float(self.sizes[i]))
        for i in range(self.n):
            p = self.parent[i]
            if p != NO_PARENT:
                g.add_edge(i, int(p))
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskTree(n={self.n}, height={self.height()}, "
            f"leaves={self.n_leaves()}, W={self.total_work():g})"
        )
