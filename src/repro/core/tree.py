"""Tree-shaped task graph model.

This module implements the application model of Section 3.1 of the paper:
a rooted *in-tree* of ``n`` tasks where task ``i`` carries

* ``w[i]``    -- processing time of the task,
* ``sizes[i]``-- size of the *execution file* (the task's program),
  written :math:`n_i` in the paper,
* ``f[i]``    -- size of the *output file*, i.e. of the edge from ``i`` to
  its parent (:math:`f_i` in the paper).

Processing task ``i`` requires memory
:math:`\\sum_{j \\in Children(i)} f_j + n_i + f_i`; once the task completes,
its input files and execution file are freed while its output file remains
resident until the parent completes.

The structure is array-based (``numpy`` integer/float vectors) with a
**CSR children representation**: ``child_idx`` holds every non-root node
grouped by parent (in ascending node order within each group, via one
stable ``np.argsort`` of the parent vector) and ``child_ptr[p]`` /
``child_ptr[p+1]`` delimit the children of node ``p``. Construction,
the cached postorder, subtree extraction and all per-node aggregates are
fully vectorized sweeps over these arrays, which is what keeps the
heuristics at :math:`O(n \\log n)` overall as in the paper's C
implementation -- with numpy-kernel constants instead of Python-loop
constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "TaskTree",
    "NO_PARENT",
    "accumulate_to_root",
    "postorder_positions_from_sibling_order",
    "use_level_sweeps",
]

#: Sentinel used in ``parent`` arrays for the root node.
NO_PARENT: int = -1


def use_level_sweeps(height: int, n: int) -> bool:
    """Crossover heuristic: level-synchronous numpy sweeps vs. per-node
    loops.

    Wide, shallow trees amortise a handful of numpy calls per depth
    level; degenerate chain-like trees (one node per level) do not.
    Shared by ``TaskTree`` construction / ``weighted_depths`` and the
    sequential traversal kernels so both layers always pick the same
    regime for a given tree.
    """
    return height + 1 <= max(64, n // 16)


def accumulate_to_root(parent: np.ndarray, val: np.ndarray) -> np.ndarray:
    """Sum ``val`` along every node's root path (node inclusive).

    Pointer doubling: ``acc[i]`` always holds the sum of ``val`` over the
    path from ``i`` (inclusive) to ``anc[i]`` (exclusive), where ``anc``
    is the clamped :math:`2^k`-th ancestor. ``val[root]`` must be 0 so
    the exclusive endpoint does not matter. O(n log height), fully
    vectorized -- deep chains cost log-many numpy passes, not n Python
    iterations.
    """
    n = parent.shape[0]
    idx = np.arange(n, dtype=np.int64)
    anc = np.where(parent == NO_PARENT, idx, parent)
    acc = val.copy()
    while True:
        anc2 = anc[anc]
        if np.array_equal(anc2, anc):
            return acc
        acc += acc[anc]
        anc = anc2


def postorder_positions_from_sibling_order(
    parent: np.ndarray,
    child_ptr: np.ndarray,
    ordered_children: np.ndarray,
    size: np.ndarray,
    depth: np.ndarray,
) -> np.ndarray:
    """Postorder position of every node, given a per-parent sibling order.

    ``ordered_children`` is the CSR ``child_idx`` array with each
    parent's segment permuted into the desired visiting order. The
    preorder position of a node is the root-path sum of ``1 + (total
    subtree size of earlier siblings)`` -- sibling prefixes from one
    global cumsum over the segments (integer, exact), the path sum by
    pointer doubling -- and with children visited in that order the
    postorder position is ``preorder - depth + size - 1``. Used both at
    tree construction (index-ordered siblings) and by the memory-optimal
    postorder (siblings sorted by Liu's criterion).
    """
    sz = size[ordered_children]
    incl = np.cumsum(sz)
    excl = incl - sz
    seg_start = child_ptr[parent[ordered_children]]
    val = np.zeros(parent.shape[0], dtype=np.int64)
    val[ordered_children] = 1 + (excl - excl[seg_start])
    return accumulate_to_root(parent, val) - depth + size - 1


@dataclass(frozen=True)
class TaskTree:
    """An in-tree task graph with memory weights and task durations.

    Instances are immutable; all mutating-style operations return new trees.

    Parameters
    ----------
    parent:
        ``parent[i]`` is the parent of node ``i``; the root has
        ``parent[root] == NO_PARENT`` (-1). Exactly one root is required.
    w:
        processing times (non-negative).
    f:
        output file sizes, one per node (non-negative). The root's output
        may be zero (results sent to the outside world).
    sizes:
        execution file sizes (:math:`n_i` in the paper, non-negative).

    Notes
    -----
    The CSR children arrays, the root, node depths and the cached
    postorder are computed once at construction in vectorized sweeps;
    subtree sizes, postorder positions and input sizes are computed
    lazily on first use and cached. All cached arrays are marked
    read-only; accessors that historically returned fresh arrays return
    copies.
    """

    parent: np.ndarray
    w: np.ndarray
    f: np.ndarray
    sizes: np.ndarray
    _child_ptr: np.ndarray = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )
    _child_idx: np.ndarray = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )
    _root: int = field(init=False, repr=False, compare=False, default=-1)
    _depths: np.ndarray = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )
    _postorder: np.ndarray = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )
    _post_pos: np.ndarray = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )
    _subtree_sizes: np.ndarray = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )
    _input_sizes: np.ndarray = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )
    _completion_frees: np.ndarray = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        parent = np.ascontiguousarray(np.asarray(self.parent, dtype=np.int64))
        w = np.ascontiguousarray(np.asarray(self.w, dtype=np.float64))
        f = np.ascontiguousarray(np.asarray(self.f, dtype=np.float64))
        sizes = np.ascontiguousarray(np.asarray(self.sizes, dtype=np.float64))
        n = parent.shape[0]
        if not (w.shape[0] == f.shape[0] == sizes.shape[0] == n):
            raise ValueError("parent, w, f, sizes must have the same length")
        if n == 0:
            raise ValueError("a task tree must contain at least one task")
        roots = np.flatnonzero(parent == NO_PARENT)
        if roots.shape[0] != 1:
            raise ValueError(f"expected exactly one root, found {roots.shape[0]}")
        if np.any((parent < NO_PARENT) | (parent >= n)):
            raise ValueError("parent indices out of range")
        if np.any(parent == np.arange(n)):
            raise ValueError("a node cannot be its own parent")
        if np.any(w < 0) or np.any(f < 0) or np.any(sizes < 0):
            raise ValueError("weights must be non-negative")
        object.__setattr__(self, "parent", parent)
        object.__setattr__(self, "w", w)
        object.__setattr__(self, "f", f)
        object.__setattr__(self, "sizes", sizes)
        root = int(roots[0])
        object.__setattr__(self, "_root", root)

        # CSR children: one stable argsort groups every non-root node by
        # parent; the root (parent == -1) sorts first and is dropped.
        # Stability keeps children in ascending node order within each
        # group -- the same order the historical per-node lists used.
        by_parent = np.argsort(parent, kind="stable")
        child_idx = np.ascontiguousarray(by_parent[1:])
        counts = np.bincount(parent[child_idx], minlength=n)
        child_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=child_ptr[1:])

        # Depths by pointer doubling. A cycle (disguised as extra edges
        # to a forest) never converges, so cap the iteration count at the
        # bound any true tree satisfies (2^k ancestors reach the root
        # once 2^k >= height <= n-1).
        idx = np.arange(n, dtype=np.int64)
        anc = np.where(parent == NO_PARENT, idx, parent)
        depth = (parent != NO_PARENT).astype(np.int64)
        limit = max(1, int(n - 1).bit_length()) + 1
        iterations = 0
        while True:
            anc2 = anc[anc]
            if np.array_equal(anc2, anc):
                break
            iterations += 1
            if iterations > limit:
                raise ValueError("parent structure contains a cycle")
            depth += depth[anc]
            anc = anc2
        # Doubling also converges on a detached cycle whose length divides
        # 2^k (every member becomes its own ancestor); a true tree ends
        # with every chain clamped at the root.
        if not np.all(anc == root):
            raise ValueError("parent structure contains a cycle")
        height = int(depth.max()) if n > 1 else 0

        subtree_sizes = None
        post_pos = None
        if use_level_sweeps(height, n):
            # Vectorized postorder: subtree sizes bottom-up by level,
            # then every node's postorder position in closed form.
            size = np.ones(n, dtype=np.int64)
            if height > 0:
                by_depth = np.argsort(depth, kind="stable")
                level_counts = np.bincount(depth, minlength=height + 1)
                pos = n
                for c in level_counts[:0:-1]:  # deepest level ... level 1
                    c = int(c)
                    nodes = by_depth[pos - c : pos]
                    pos -= c
                    np.add.at(size, parent[nodes], size[nodes])
            post_pos = postorder_positions_from_sibling_order(
                parent, child_ptr, child_idx, size, depth
            )
            porder = np.empty(n, dtype=np.int64)
            porder[post_pos] = idx
            subtree_sizes = size
        else:
            # Deep, chain-like trees: levels are too narrow for the
            # per-level numpy sweeps to pay off; fall back to the
            # iterative DFS (children pushed in index order, output
            # reversed -- the historical order, bit for bit).
            ptr_l = child_ptr.tolist()
            ci_l = child_idx.tolist()
            out: list[int] = []
            stack: list[int] = [root]
            while stack:
                node = stack.pop()
                out.append(node)
                stack.extend(ci_l[ptr_l[node] : ptr_l[node + 1]])
            if len(out) != n:  # pragma: no cover - caught by the cycle cap
                raise ValueError("parent structure contains a cycle")
            out.reverse()
            porder = np.asarray(out, dtype=np.int64)

        for name, arr in (
            ("_child_ptr", child_ptr),
            ("_child_idx", child_idx),
            ("_depths", depth),
            ("_postorder", porder),
            ("_post_pos", post_pos),
            ("_subtree_sizes", subtree_sizes),
        ):
            if arr is not None:
                arr.setflags(write=False)
            object.__setattr__(self, name, arr)

    @classmethod
    def from_parents(
        cls,
        parent: Sequence[int],
        w: Sequence[float] | float = 1.0,
        f: Sequence[float] | float = 1.0,
        sizes: Sequence[float] | float = 0.0,
    ) -> "TaskTree":
        """Build a tree from a parent vector, broadcasting scalar weights.

        ``w``, ``f`` and ``sizes`` may each be a scalar (applied to every
        node) or a per-node sequence.
        """
        n = len(parent)

        def expand(x: Sequence[float] | float) -> np.ndarray:
            if np.isscalar(x):
                return np.full(n, float(x))  # type: ignore[arg-type]
            return np.asarray(x, dtype=np.float64)

        return cls(np.asarray(parent, dtype=np.int64), expand(w), expand(f), expand(sizes))

    @classmethod
    def pebble_game(cls, parent: Sequence[int]) -> "TaskTree":
        """Build a Pebble Game model tree (Section 4): ``f=1, n=0, w=1``."""
        return cls.from_parents(parent, w=1.0, f=1.0, sizes=0.0)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]],
        n: int,
        w: Sequence[float] | float = 1.0,
        f: Sequence[float] | float = 1.0,
        sizes: Sequence[float] | float = 0.0,
    ) -> "TaskTree":
        """Build a tree from ``(child, parent)`` edges over nodes ``0..n-1``."""
        parent = np.full(n, NO_PARENT, dtype=np.int64)
        for c, p in edges:
            if parent[c] != NO_PARENT:
                raise ValueError(f"node {c} listed with two parents")
            parent[c] = p
        return cls.from_parents(parent, w, f, sizes)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of tasks in the tree."""
        return int(self.parent.shape[0])

    def __len__(self) -> int:
        return self.n

    @property
    def root(self) -> int:
        """Index of the root task (cached at construction)."""
        return self._root

    @property
    def child_ptr(self) -> np.ndarray:
        """CSR row pointer: children of ``p`` live at
        ``child_idx[child_ptr[p] : child_ptr[p + 1]]`` (read-only)."""
        return self._child_ptr

    @property
    def child_idx(self) -> np.ndarray:
        """CSR children array: every non-root node grouped by parent,
        ascending node order within each group (read-only)."""
        return self._child_idx

    def children(self, i: int) -> np.ndarray:
        """Children of node ``i`` as a zero-copy CSR slice
        (empty array for leaves, ascending node order)."""
        return self._child_idx[self._child_ptr[i] : self._child_ptr[i + 1]]

    def is_leaf(self, i: int) -> bool:
        """True iff node ``i`` has no children."""
        return bool(self._child_ptr[i] == self._child_ptr[i + 1])

    def leaf_mask(self) -> np.ndarray:
        """Boolean mask over all nodes, True at leaves (vectorized)."""
        return self._child_ptr[1:] == self._child_ptr[:-1]

    def leaves(self) -> np.ndarray:
        """Indices of all leaf nodes, ascending."""
        return np.flatnonzero(self.leaf_mask())

    def n_leaves(self) -> int:
        """Number of leaf nodes."""
        return int(self.leaf_mask().sum())

    def degree(self, i: int) -> int:
        """Number of children of node ``i``."""
        return int(self._child_ptr[i + 1] - self._child_ptr[i])

    def max_degree(self) -> int:
        """Maximum number of children over all nodes."""
        return int(np.max(self._child_ptr[1:] - self._child_ptr[:-1]))

    # ------------------------------------------------------------------
    # traversals and aggregates
    # ------------------------------------------------------------------
    def postorder(self) -> np.ndarray:
        """A postorder of the tree (children before parents), cached.

        The order visits children in index order; it is *a* valid
        topological order, not the memory-optimal one (see
        :mod:`repro.sequential.postorder` for that). Computed once at
        construction -- vectorized (subtree-size prefix sums plus a
        pointer-doubling root-path sum) for shallow trees, iteratively
        for the paper's deep trees (depth up to 70 000), so Python's
        recursion limit is never hit. The returned array is the
        read-only cache; copy before mutating.
        """
        return self._postorder

    def topological_order(self) -> np.ndarray:
        """Alias for :meth:`postorder` (any child-before-parent order)."""
        return self.postorder()

    def postorder_positions(self) -> np.ndarray:
        """Position of every node in :meth:`postorder` (read-only).

        ``postorder_positions()[postorder()] == arange(n)``; with
        index-ordered children, every subtree occupies the contiguous
        position range ``[pos[i] - size[i] + 1, pos[i]]``.
        """
        if self._post_pos is None:
            pos = np.empty(self.n, dtype=np.int64)
            pos[self._postorder] = np.arange(self.n, dtype=np.int64)
            pos.setflags(write=False)
            object.__setattr__(self, "_post_pos", pos)
        return self._post_pos

    def depths(self) -> np.ndarray:
        """Edge-count depth of every node (root has depth 0).

        Pointer doubling: ``O(n log height)`` in fully vectorized
        sweeps; computed once at construction and cached (read-only).
        """
        return self._depths

    def height(self) -> int:
        """Height of the tree in edges (0 for a single node)."""
        return int(self._depths.max())

    def weighted_depths(self) -> np.ndarray:
        """w-weighted path length from each node to the root, inclusive.

        This is the *depth* notion used by ParDeepestFirst (Section 5.3):
        the length includes ``w[i]`` itself, so the deepest node is the
        start of the critical path.
        """
        n = self.n
        depth = self.depths()
        height = int(depth.max()) if n else 0
        if use_level_sweeps(height, n):
            # Level-synchronous: one vectorized gather-add per depth
            # level (each node receives exactly w[i] + wdepth[parent],
            # the same single addition as the sequential sweep).
            order = np.argsort(depth, kind="stable")
            counts = np.bincount(depth, minlength=height + 1)
            wdepth = self.w.copy()
            parent = self.parent
            pos = int(counts[0])  # the depth-0 level is the root alone
            for c in counts[1:]:
                nodes = order[pos : pos + c]
                wdepth[nodes] += wdepth[parent[nodes]]
                pos += c
            return wdepth
        # Deep (chain-like) trees: levels are too narrow for numpy
        # calls to pay off; fall back to the list-based sweep.
        parent_l = self.parent.tolist()
        w = self.w.tolist()
        out = [0.0] * n
        for node in reversed(self._postorder.tolist()):
            p = parent_l[node]
            out[node] = w[node] + (out[p] if p != NO_PARENT else 0.0)
        return np.asarray(out, dtype=np.float64)

    def subtree_work(self) -> np.ndarray:
        """Total processing time of each subtree (``W_i`` in Section 5.1)."""
        parent = self.parent.tolist()
        work = self.w.tolist()
        for node in self._postorder.tolist():
            p = parent[node]
            if p != NO_PARENT:
                work[p] += work[node]
        return np.asarray(work, dtype=np.float64)

    def _subtree_sizes_cached(self) -> np.ndarray:
        """Read-only cached subtree sizes (computed lazily for deep trees)."""
        if self._subtree_sizes is None:
            parent = self.parent.tolist()
            size = [1] * self.n
            for node in self._postorder.tolist():
                p = parent[node]
                if p != NO_PARENT:
                    size[p] += size[node]
            arr = np.asarray(size, dtype=np.int64)
            arr.setflags(write=False)
            object.__setattr__(self, "_subtree_sizes", arr)
        return self._subtree_sizes

    def subtree_sizes(self, copy: bool = True) -> np.ndarray:
        """Number of nodes in each subtree (including the subtree root).

        ``copy=False`` returns the read-only cache without the O(n)
        defensive copy (for internal-style hot paths).
        """
        cached = self._subtree_sizes_cached()
        return cached.copy() if copy else cached

    def subtree_nodes(self, i: int) -> np.ndarray:
        """All node indices in the subtree rooted at ``i`` (preorder).

        With index-ordered children the subtree is one contiguous slice
        of the cached postorder; reversing it yields exactly the
        historical DFS preorder (children visited in descending index
        order). O(subtree size), no Python loop.
        """
        pos = self.postorder_positions()
        size = self._subtree_sizes_cached()
        end = int(pos[i])
        start = end - int(size[i]) + 1
        return np.ascontiguousarray(self._postorder[start : end + 1][::-1])

    def critical_path(self) -> float:
        """Length of the w-weighted critical path (root to deepest leaf)."""
        return float(self.weighted_depths().max())

    def total_work(self) -> float:
        """Sum of all processing times (``W`` in the makespan lower bound)."""
        return float(self.w.sum())

    def input_sizes(self) -> np.ndarray:
        """Total input file size of every node (vectorized, cached).

        ``input_sizes()[i]`` equals :math:`\\sum_{j \\in Children(i)} f_j`
        with the children accumulated in ascending node order -- bit for
        bit the sum the historical per-node loop produced. Read-only.
        """
        if self._input_sizes is None:
            mask = self.parent != NO_PARENT
            arr = np.bincount(self.parent[mask], weights=self.f[mask], minlength=self.n)
            arr.setflags(write=False)
            object.__setattr__(self, "_input_sizes", arr)
        return self._input_sizes

    def completion_frees(self) -> np.ndarray:
        """Memory released when each node completes: its execution file
        plus its children's output files (vectorized, cached, read-only).

        Accumulated child-by-child *into* ``sizes`` in ascending node
        order -- ``((n_i + f_{c_1}) + f_{c_2}) \\dots`` -- which is the
        float association the historical per-child loops used, so the
        capped engine's and the simulator's memory trajectories stay
        bit-identical to the seed implementations even for non-integral
        file sizes. (``sizes + input_sizes()`` would associate as
        ``n_i + (f_{c_1} + f_{c_2})`` and drift by an ulp.)
        """
        if self._completion_frees is None:
            arr = self.sizes.copy()
            mask = self.parent != NO_PARENT
            np.add.at(arr, self.parent[mask], self.f[mask])
            arr.setflags(write=False)
            object.__setattr__(self, "_completion_frees", arr)
        return self._completion_frees

    def processing_memories(self) -> np.ndarray:
        """Memory needed while each node executes (vectorized):
        :math:`\\sum_{j\\in Children(i)} f_j + n_i + f_i`."""
        return (self.input_sizes() + self.sizes) + self.f

    def input_size(self, i: int) -> float:
        """Total size of the input files of node ``i``."""
        return float(self.input_sizes()[i])

    def processing_memory(self, i: int) -> float:
        """Memory needed while node ``i`` executes:
        :math:`\\sum_{j\\in Children(i)} f_j + n_i + f_i`."""
        return float((self.input_sizes()[i] + self.sizes[i]) + self.f[i])

    # ------------------------------------------------------------------
    # derived trees
    # ------------------------------------------------------------------
    def subtree(self, i: int) -> tuple["TaskTree", np.ndarray]:
        """Extract the subtree rooted at ``i`` as a standalone tree.

        Returns the new tree and the array mapping new indices to the
        original node indices. The relabelling is a vectorized scatter
        over :meth:`subtree_nodes` (same node numbering as the
        historical dict-based remap).
        """
        nodes = self.subtree_nodes(i)
        remap = np.empty(self.n, dtype=np.int64)
        remap[nodes] = np.arange(nodes.shape[0], dtype=np.int64)
        parent = remap[self.parent[nodes]]
        parent[0] = NO_PARENT  # nodes[0] == i, the subtree root
        return (
            TaskTree(parent, self.w[nodes], self.f[nodes], self.sizes[nodes]),
            nodes,
        )

    def with_weights(
        self,
        w: Sequence[float] | None = None,
        f: Sequence[float] | None = None,
        sizes: Sequence[float] | None = None,
    ) -> "TaskTree":
        """Return a copy with some weight vectors replaced."""
        return TaskTree(
            self.parent,
            self.w if w is None else np.asarray(w, dtype=np.float64),
            self.f if f is None else np.asarray(f, dtype=np.float64),
            self.sizes if sizes is None else np.asarray(sizes, dtype=np.float64),
        )

    def iter_nodes(self) -> Iterator[int]:
        """Iterate over node indices ``0..n-1``."""
        return iter(range(self.n))

    # ------------------------------------------------------------------
    # interoperability
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` with edges child -> parent.

        Node attributes: ``w``, ``f``, ``size``; useful for plotting and
        cross-checking with graph algorithms.
        """
        import networkx as nx

        g = nx.DiGraph()
        for i in range(self.n):
            g.add_node(i, w=float(self.w[i]), f=float(self.f[i]), size=float(self.sizes[i]))
        for i in range(self.n):
            p = self.parent[i]
            if p != NO_PARENT:
                g.add_edge(i, int(p))
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskTree(n={self.n}, height={self.height()}, "
            f"leaves={self.n_leaves()}, W={self.total_work():g})"
        )
