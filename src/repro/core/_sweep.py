"""Backend-neutral event-sweep kernel for :class:`repro.core.engine.SchedulerEngine`.

This module pins down the *kernel spec* shared by every engine backend:
one function over typed, C-contiguous numpy arrays that executes the
whole event-driven list-scheduling sweep with **no Python objects in the
hot loop** -- array-based binary heaps instead of ``heapq``, integer
node ids instead of tuples. The same source is executed three ways:

* ``backend="kernel"`` -- the function below interpreted by CPython
  (slow; exists so the kernel *logic* is unit-testable even where no
  compiler is available);
* ``backend="numba"``  -- the function below compiled by
  ``numba.njit`` (import-guarded: numba is an optional dependency,
  ``pip install repro-trees[fast]``);
* ``backend="c"``      -- a line-for-line C translation
  (:mod:`repro.core._ckernel`) built on demand with the system
  toolchain.

Kernel spec
-----------
Arrays in (all C-contiguous, ``int64``/``float64``):

``parent``
    in-tree parent vector (root = -1).
``pending``
    per-node count of incomplete children, i.e. ``np.diff(child_ptr)``
    of the CSR children structure; **mutated** by the sweep.
``w``
    task durations.
``rank`` / ``byrank``
    priority permutation and its inverse (``byrank[rank[i]] == i``).
``mode`` / ``cap_eps``
    0 = no memory cap; 1 = strict activation order; 2 = opportunistic.
    ``cap_eps`` is the cap plus the engine's feasibility epsilon.
``alloc`` / ``free_on_end`` / ``sigma``
    memory acquired at start / released at completion per node, and the
    activation order (``sigma`` may be empty when ``mode == 0``).

Arrays out:

``start`` / ``end_out`` / ``proc``
    start time, completion time and processor of every task
    (``start``/``proc`` must be initialised to -1).
``activation``
    the k-th entry is the k-th task to *start* (chronological, ties
    resolved exactly as the reference backend resolves them).
``mem_trace``
    resident memory immediately after each start, aligned with
    ``activation`` -- the peak-memory trace of the sweep
    (``mem_trace.max()`` is the schedule's peak for capped modes).
``status`` (``int64[2]``)
    ``status[0]``: 0 = ok, 1 = memory cap infeasible, 2 = strict-mode
    rank/activation mismatch, 3 = deadlock (defensive);
    ``status[1]``: the offending node for codes 1-2.
``finals`` (``float64[2]``)
    final simulation time (= makespan) and final resident memory.

Equivalence contract
--------------------
The kernel must produce **bit-identical** outputs to the pure-Python
reference backend in :mod:`repro.core.engine`. Floating point makes
this subtle in two places, both resolved by construction:

* *Event keys.* The reference backend encodes events of integral-weight
  trees as exact integers ``end * n + node``; the kernel always uses a
  ``(float64 end, int64 node)`` pair heap. The two orders coincide
  whenever every completion time is exactly representable as a float64,
  which the engine guarantees before selecting a kernel backend (it
  falls back to the reference loop for integral weights whose total
  exceeds 2**53 -- see ``SchedulerEngine.run``).
* *Memory accounting.* ``mem`` is accumulated with the same
  adds/subtracts in the same chronological order as the reference loop,
  so capped-mode feasibility decisions (and ``mem_trace``) match bit
  for bit.

Heap pop order is determined by the key order alone -- ready entries
are bare ranks (a permutation, hence unique) and running entries carry
the node id as tie-break -- so an array-based binary heap reproduces
``heapq`` exactly without mimicking its internals.

Batched spec
------------
:func:`_batch_sweep` extends the kernel spec to a whole scenario grid
over **one tree** in a single call: stacked per-scenario parameters in
(``ps``/``modes``/``cap_eps`` per scenario, priority ranks and
activation orders deduplicated into ``(R, n)`` / ``(K, n)`` stacks and
referenced by ``rank_id`` / ``sigma_id``; ``sigma_id < 0`` means
uncapped), stacked ``(S, n)`` result arrays out. Every scenario is an
independent sweep against the same read-only tree columns -- the only
mutable input, ``pending``, is copied per scenario from the pristine
``pending0`` -- so the outer loop parallelises trivially:
``numba.prange`` here, an OpenMP ``parallel for`` in the C translation
(:mod:`repro.core._ckernel`), and a plain serial loop when interpreted.
Per-scenario outputs are bit-identical to single calls of
:func:`_event_sweep` regardless of thread count because no data is
shared between scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "PY_KERNEL",
    "JIT_KERNEL",
    "PY_BATCH",
    "JIT_BATCH",
    "SweepResult",
    "sweep_arrays",
    "batch_arrays",
]

try:  # numba is an optional dependency (``pip install repro-trees[fast]``)
    from numba import njit, prange

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised on the without-numba CI leg
    HAVE_NUMBA = False
    prange = range

    def njit(*args, **kwargs):  # type: ignore[misc]
        """No-op decorator standing in for ``numba.njit``."""
        if args and callable(args[0]):
            return args[0]

        def decorate(fn):
            return fn

        return decorate


@dataclass(frozen=True)
class SweepResult:
    """The kernel spec's output arrays for one completed sweep."""

    start: np.ndarray
    end: np.ndarray
    proc: np.ndarray
    activation: np.ndarray
    mem_trace: np.ndarray
    now: float
    mem: float


def sweep_arrays(n: int) -> tuple[np.ndarray, ...]:
    """Freshly initialised output arrays for one kernel invocation:
    ``(start, end_out, proc, activation, mem_trace, status, finals)``."""
    return (
        np.full(n, -1.0, dtype=np.float64),
        np.empty(n, dtype=np.float64),
        np.full(n, -1, dtype=np.int64),
        np.empty(n, dtype=np.int64),
        np.empty(n, dtype=np.float64),
        np.zeros(2, dtype=np.int64),
        np.zeros(2, dtype=np.float64),
    )


def batch_arrays(nscen: int, n: int) -> tuple[np.ndarray, ...]:
    """Freshly initialised stacked output arrays for one batched kernel
    invocation over ``nscen`` scenarios: the ``(S, n)`` counterparts of
    :func:`sweep_arrays` (row ``s`` is scenario ``s``'s output)."""
    return (
        np.full((nscen, n), -1.0, dtype=np.float64),
        np.empty((nscen, n), dtype=np.float64),
        np.full((nscen, n), -1, dtype=np.int64),
        np.empty((nscen, n), dtype=np.int64),
        np.empty((nscen, n), dtype=np.float64),
        np.zeros((nscen, 2), dtype=np.int64),
        np.zeros((nscen, 2), dtype=np.float64),
    )


# ----------------------------------------------------------------------
# array-based binary heaps (min-heaps; pop order == heapq pop order
# because all keys are unique -- see module docstring)
# ----------------------------------------------------------------------
def _push_int(heap, size, val):
    """Insert ``val`` into the int64 min-heap of ``size`` elements."""
    i = size
    while i > 0:
        up = (i - 1) >> 1
        if heap[up] > val:
            heap[i] = heap[up]
            i = up
        else:
            break
    heap[i] = val


def _pop_int(heap, size):
    """Remove and return the minimum of the int64 heap of ``size``."""
    top = heap[0]
    m = size - 1
    last = heap[m]
    i = 0
    while True:
        child = 2 * i + 1
        if child >= m:
            break
        right = child + 1
        if right < m and heap[right] < heap[child]:
            child = right
        if heap[child] < last:
            heap[i] = heap[child]
            i = child
        else:
            break
    if m > 0:
        heap[i] = last
    return top


def _push_run(keys, nodes, size, k, v):
    """Insert event ``(k, v)`` into the (float64 key, int64 node) heap."""
    i = size
    while i > 0:
        up = (i - 1) >> 1
        uk = keys[up]
        uv = nodes[up]
        if k < uk or (k == uk and v < uv):
            keys[i] = uk
            nodes[i] = uv
            i = up
        else:
            break
    keys[i] = k
    nodes[i] = v


def _pop_run(keys, nodes, size):
    """Remove and return the minimum event ``(key, node)`` of the heap."""
    top_k = keys[0]
    top_v = nodes[0]
    m = size - 1
    lk = keys[m]
    lv = nodes[m]
    i = 0
    while True:
        child = 2 * i + 1
        if child >= m:
            break
        right = child + 1
        if right < m and (
            keys[right] < keys[child]
            or (keys[right] == keys[child] and nodes[right] < nodes[child])
        ):
            child = right
        ck = keys[child]
        cv = nodes[child]
        if ck < lk or (ck == lk and cv < lv):
            keys[i] = ck
            nodes[i] = cv
            i = child
        else:
            break
    if m > 0:
        keys[i] = lk
        nodes[i] = lv
    return top_k, top_v


# ----------------------------------------------------------------------
# the event sweep itself
# ----------------------------------------------------------------------
def _event_sweep(
    parent,
    pending,
    w,
    rank,
    byrank,
    p,
    mode,
    cap_eps,
    alloc,
    free_on_end,
    sigma,
    start,
    end_out,
    proc,
    activation,
    mem_trace,
    status,
    finals,
):
    """Execute one full event sweep (see module docstring for the spec).

    Mirrors ``SchedulerEngine._run_python`` statement for statement;
    any behavioural change must be made in both and is pinned by the
    cross-backend golden tests.
    """
    n = parent.shape[0]
    ready = np.empty(n, dtype=np.int64)
    run_key = np.empty(n, dtype=np.float64)
    run_node = np.empty(n, dtype=np.int64)
    skipped = np.empty(n, dtype=np.int64)
    free_stack = np.empty(p, dtype=np.int64)
    for q in range(p):
        free_stack[q] = p - 1 - q  # pop from the tail => processor 0 first
    free_count = p
    ready_size = 0
    for i in range(n):
        if pending[i] == 0:
            _push_int(ready, ready_size, rank[i])
            ready_size += 1
    run_size = 0
    now = 0.0
    mem = 0.0
    started = 0
    next_sigma = 0
    while True:
        # Start every task the policy allows on the idle processors.
        while free_count > 0 and ready_size > 0:
            if mode == 0:
                node = byrank[_pop_int(ready, ready_size)]
                ready_size -= 1
            elif mode == 1:
                node = sigma[next_sigma]
                if pending[node] > 0 or mem + alloc[node] > cap_eps:
                    break
                r = _pop_int(ready, ready_size)
                ready_size -= 1
                if r != rank[node]:
                    status[0] = 2
                    status[1] = node
                    return
            else:
                node = -1
                nskip = 0
                while ready_size > 0:
                    r = _pop_int(ready, ready_size)
                    ready_size -= 1
                    cand = byrank[r]
                    if mem + alloc[cand] <= cap_eps:
                        node = cand
                        break
                    skipped[nskip] = r
                    nskip += 1
                for k in range(nskip):
                    _push_int(ready, ready_size, skipped[k])
                    ready_size += 1
                if node < 0:
                    break
            free_count -= 1
            q = free_stack[free_count]
            start[node] = now
            proc[node] = q
            t_end = now + w[node]
            end_out[node] = t_end
            _push_run(run_key, run_node, run_size, t_end, node)
            run_size += 1
            mem += alloc[node]
            activation[started] = node
            mem_trace[started] = mem
            started += 1
            if mode != 0:
                while next_sigma < n and start[sigma[next_sigma]] >= 0.0:
                    next_sigma += 1
        if run_size == 0:
            if started >= n:
                break
            if mode != 0:
                status[0] = 1
                status[1] = sigma[next_sigma]
                finals[0] = now
                finals[1] = mem
                return
            status[0] = 3  # deadlock: tasks left but no event pending
            status[1] = -1
            return
        # Advance to the next completion event; apply every completion
        # at that instant before assigning again.
        now, node = _pop_run(run_key, run_node, run_size)
        run_size -= 1
        while True:
            free_stack[free_count] = proc[node]
            free_count += 1
            mem -= free_on_end[node]
            par = parent[node]
            if par >= 0:
                if pending[par] == 1:
                    pending[par] = 0
                    _push_int(ready, ready_size, rank[par])
                    ready_size += 1
                else:
                    pending[par] -= 1
            if run_size == 0:
                break
            if run_key[0] == now:
                node = _pop_run(run_key, run_node, run_size)[1]
                run_size -= 1
            else:
                break
    status[0] = 0
    status[1] = n
    finals[0] = now
    finals[1] = mem


# ----------------------------------------------------------------------
# the batched sweep: one call per scenario grid, parallel over scenarios
# ----------------------------------------------------------------------
def _batch_sweep(
    parent,
    pending0,
    w,
    ranks,
    byranks,
    rank_id,
    ps,
    modes,
    cap_eps,
    alloc,
    free_on_end,
    sigmas,
    sigma_id,
    start,
    end_out,
    proc,
    activation,
    mem_trace,
    status,
    finals,
):
    """Sweep every scenario of a grid against one tree (batched spec).

    Scenario ``s`` runs :func:`_event_sweep` with priority rank row
    ``ranks[rank_id[s]]`` (inverse ``byranks[rank_id[s]]``), processor
    count ``ps[s]``, memory mode ``modes[s]`` / ``cap_eps[s]`` and
    activation order ``sigmas[sigma_id[s]]`` (``sigma_id[s] < 0`` =
    uncapped; ``sigmas`` always holds at least one row so the dummy
    empty slice types consistently). ``pending0`` is the pristine child
    counts, copied privately per scenario, so scenarios are fully
    independent and the loop is safe under ``numba.prange``.
    """
    nscen = ps.shape[0]
    for s in prange(nscen):
        pending = pending0.copy()
        rid = rank_id[s]
        sid = sigma_id[s]
        if sid >= 0:
            sigma = sigmas[sid]
        else:
            sigma = sigmas[0][:0]
        _event_sweep(
            parent,
            pending,
            w,
            ranks[rid],
            byranks[rid],
            ps[s],
            modes[s],
            cap_eps[s],
            alloc,
            free_on_end,
            sigma,
            start[s],
            end_out[s],
            proc[s],
            activation[s],
            mem_trace[s],
            status[s],
            finals[s],
        )


if HAVE_NUMBA:
    _push_int = njit(cache=True)(_push_int)
    _pop_int = njit(cache=True)(_pop_int)
    _push_run = njit(cache=True)(_push_run)
    _pop_run = njit(cache=True)(_pop_run)
    _event_sweep = njit(cache=True)(_event_sweep)
    _batch_sweep = njit(cache=True, parallel=True)(_batch_sweep)
    #: the compiled kernels (None when numba is absent)
    JIT_KERNEL = _event_sweep
    JIT_BATCH = _batch_sweep
    # ``py_func`` keeps the interpreted spec callable for the "kernel"
    # backend even when numba is installed (it calls the jitted heap
    # helpers through their dispatchers, which is fine from CPython).
    PY_KERNEL = _event_sweep.py_func
    PY_BATCH = _batch_sweep.py_func
else:
    JIT_KERNEL = None
    JIT_BATCH = None
    PY_KERNEL = _event_sweep
    PY_BATCH = _batch_sweep
