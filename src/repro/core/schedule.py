"""Schedule representation for parallel tree processing.

A :class:`Schedule` maps every task of a :class:`~repro.core.tree.TaskTree`
to a start time and a processor. Peak memory and makespan of a schedule are
computed by the simulator (:mod:`repro.core.simulator`); this module only
holds the assignment and cheap derived quantities, plus a Gantt-style
text rendering used by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .tree import TaskTree

__all__ = ["Schedule", "ScheduledTask"]


@dataclass(frozen=True)
class ScheduledTask:
    """One row of a schedule: task ``node`` runs on ``proc`` during
    ``[start, start + w)``."""

    node: int
    proc: int
    start: float
    end: float


@dataclass(frozen=True)
class Schedule:
    """Assignment of every task to a (processor, start time) pair.

    Parameters
    ----------
    tree:
        the task tree being scheduled.
    start:
        ``start[i]`` is the start time of task ``i``.
    proc:
        ``proc[i]`` is the processor executing task ``i`` (0-based).
    p:
        number of processors of the platform (``max(proc)+1`` may be
        smaller when some processors stay idle).
    """

    tree: TaskTree
    start: np.ndarray
    proc: np.ndarray
    p: int

    def __post_init__(self) -> None:
        start = np.ascontiguousarray(np.asarray(self.start, dtype=np.float64))
        proc = np.ascontiguousarray(np.asarray(self.proc, dtype=np.int64))
        if start.shape[0] != self.tree.n or proc.shape[0] != self.tree.n:
            raise ValueError("start/proc must have one entry per task")
        if self.p < 1:
            raise ValueError("need at least one processor")
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "proc", proc)

    # ------------------------------------------------------------------
    @property
    def end(self) -> np.ndarray:
        """Completion time of every task."""
        return self.start + self.tree.w

    @property
    def makespan(self) -> float:
        """Total execution time: completion time of the last task.

        For a valid schedule the last task is the root (all other tasks
        precede it), so this equals the paper's makespan definition.
        """
        return float(self.end.max())

    def tasks(self) -> list[ScheduledTask]:
        """All tasks as :class:`ScheduledTask` rows sorted by start time."""
        end = self.end
        rows = [
            ScheduledTask(i, int(self.proc[i]), float(self.start[i]), float(end[i]))
            for i in range(self.tree.n)
        ]
        rows.sort(key=lambda t: (t.start, t.proc, t.node))
        return rows

    def processor_tasks(self, proc: int) -> list[ScheduledTask]:
        """Tasks assigned to one processor, sorted by start time."""
        return [t for t in self.tasks() if t.proc == proc]

    def order(self) -> np.ndarray:
        """Global task order by start time (ties broken by node index).

        For ``p = 1`` this is the sequential traversal the schedule
        realises.
        """
        keys = np.lexsort((np.arange(self.tree.n), self.start))
        return keys

    # ------------------------------------------------------------------
    @classmethod
    def sequential(cls, tree: TaskTree, order: Iterable[int], p: int = 1) -> "Schedule":
        """Build the schedule that executes ``order`` back-to-back on
        processor 0 of a ``p``-processor platform.

        ``order`` must be a topological order of ``tree`` (validated by
        :func:`repro.core.validation.validate_schedule` / the simulator).
        """
        order = np.asarray(list(order), dtype=np.int64)
        if order.shape[0] != tree.n:
            raise ValueError("order must contain every task exactly once")
        start = np.empty(tree.n, dtype=np.float64)
        t = 0.0
        for node in order:
            start[node] = t
            t += tree.w[node]
        return cls(tree, start, np.zeros(tree.n, dtype=np.int64), p)

    # ------------------------------------------------------------------
    def gantt(self, width: int = 78, max_procs: int = 16) -> str:
        """ASCII Gantt chart of the schedule (for examples and debugging).

        Each processor is one text row; task cells show the node index when
        they are wide enough. Time is scaled to ``width`` characters.
        """
        span = self.makespan
        if span <= 0:
            span = 1.0
        scale = width / span
        lines = []
        for q in range(min(self.p, max_procs)):
            row = [" "] * width
            for t in self.processor_tasks(q):
                a = int(t.start * scale)
                b = max(a + 1, int(t.end * scale))
                b = min(b, width)
                label = str(t.node)
                for k in range(a, b):
                    row[k] = "#"
                if b - a > len(label) + 1:
                    for k, ch in enumerate(label):
                        row[a + 1 + k] = ch
            lines.append(f"P{q:<3d}|" + "".join(row) + "|")
        if self.p > max_procs:
            lines.append(f"... ({self.p - max_procs} more processors)")
        lines.append(f"     0{'':{width - 12}}{self.makespan:>10.4g}")
        return "\n".join(lines)
