"""Schedule traces and utilization statistics.

Converts a schedule into an explicit event trace -- task starts and
completions with per-event memory levels -- exportable as JSON for
external tooling, plus the utilization statistics (busy fraction per
processor, idle time breakdown) the systems community expects from a
scheduler evaluation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

import numpy as np

from .schedule import Schedule
from .simulator import memory_profile

__all__ = ["TraceEvent", "UtilizationStats", "schedule_trace", "utilization", "trace_json"]


@dataclass(frozen=True)
class TraceEvent:
    """One event of the execution trace."""

    time: float
    kind: str  # "start" | "end"
    node: int
    proc: int
    memory: float  # resident memory right after the event group


@dataclass(frozen=True)
class UtilizationStats:
    """Processor-usage summary of a schedule.

    Attributes
    ----------
    busy:
        per-processor busy time.
    utilization:
        per-processor busy fraction of the makespan.
    mean_utilization:
        average busy fraction over the ``p`` processors; equals
        ``W / (p * Cmax)``, so 1.0 means a perfectly packed schedule.
    idle_time:
        total idle processor-time (``p * Cmax - W``).
    """

    busy: np.ndarray
    utilization: np.ndarray
    mean_utilization: float
    idle_time: float


def schedule_trace(schedule: Schedule) -> list[TraceEvent]:
    """The time-ordered event trace of a schedule.

    Events at equal timestamps order completions before starts,
    mirroring the simulator's memory accounting; each event reports the
    settled memory level of its instant.
    """
    tree = schedule.tree
    times, levels = memory_profile(schedule)

    def level_at(t: float) -> float:
        k = int(np.searchsorted(times, t, side="right") - 1)
        return float(levels[k]) if k >= 0 else 0.0

    events: list[tuple[float, int, str, int, int]] = []
    end = schedule.end
    for i in range(tree.n):
        events.append((float(schedule.start[i]), 1, "start", i, int(schedule.proc[i])))
        events.append((float(end[i]), 0, "end", i, int(schedule.proc[i])))
    events.sort(key=lambda e: (e[0], e[1]))
    return [
        TraceEvent(time=t, kind=kind, node=node, proc=proc, memory=level_at(t))
        for t, _, kind, node, proc in events
    ]


def utilization(schedule: Schedule) -> UtilizationStats:
    """Processor utilization statistics of a schedule."""
    tree = schedule.tree
    busy = np.zeros(schedule.p, dtype=np.float64)
    for i in range(tree.n):
        busy[int(schedule.proc[i])] += float(tree.w[i])
    span = schedule.makespan
    util = busy / span if span > 0 else np.ones_like(busy)
    return UtilizationStats(
        busy=busy,
        utilization=util,
        mean_utilization=float(util.mean()),
        idle_time=float(schedule.p * span - busy.sum()),
    )


def trace_json(schedule: Schedule) -> str:
    """JSON export of the trace (one event object per line entry)."""
    return json.dumps([asdict(e) for e in schedule_trace(schedule)], indent=1)
