"""Unified event-driven scheduling engine (the paper's Algorithm 3, once).

Every list-style scheduler of this repository -- ParInnerFirst,
ParDeepestFirst, their ablation variants, and the memory-capped
extension -- is an instance of the same event sweep: whenever a task
finishes, its parent may become ready; every idle processor is then
handed the most urgent ready task the start policy allows. Historically
that sweep was implemented twice (``parallel/list_scheduling.py`` and
``parallel/memory_bounded.py``); this module is now the single home of
the heapq-driven event loop, and both entry points are thin
configurations of :class:`SchedulerEngine`.

Two design points make the engine fast on large trees:

* **Vectorized priorities.** Heuristics no longer supply a per-node
  Python callable returning a sortable tuple; they supply numpy key
  columns (structure of arrays) that :func:`lex_rank` collapses into a
  single integer rank per node with one ``np.lexsort``. The ready heap
  then holds plain ``(int, int)`` pairs, so the event loop performs
  O(log n) integer heap operations only -- no closure calls, no float
  tuple comparisons, no numpy scalar indexing.
* **List-backed hot loop.** All per-node arrays consulted inside the
  sweep (``parent``, ``w``, rank, pending counters, allocation sizes)
  are converted to Python lists once; numpy scalar indexing inside a
  tight loop costs ~100ns per access and dominated the old
  implementation's runtime.

Complexity is :math:`O(n \\log n)` (binary heaps for both the running
set and the ready queue), matching the paper's analysis; the constant
factor is what changed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .schedule import Schedule
from .tree import TaskTree, NO_PARENT

__all__ = [
    "EngineState",
    "MemoryCapError",
    "SchedulerEngine",
    "lex_rank",
    "rank_from_callable",
]


class MemoryCapError(RuntimeError):
    """Raised when no task fits under the cap and none is running."""


def lex_rank(*keys: np.ndarray) -> np.ndarray:
    """Collapse lexicographic key columns into one integer rank per node.

    ``keys`` are given most-significant first; the node index is the
    implicit final tie-break. The result is a permutation of
    ``0..n-1``: ``lex_rank(k0, k1)[i] < lex_rank(k0, k1)[j]`` exactly
    when the tuple ``(k0[i], k1[i], i)`` sorts before
    ``(k0[j], k1[j], j)``. Smaller rank is scheduled first (heapq
    convention), so a rank array is a drop-in replacement for a
    per-node priority-tuple callable.
    """
    cols = [np.asarray(k) for k in keys]
    if not cols:
        raise ValueError("need at least one key column")
    n = cols[0].shape[0]
    # np.lexsort sorts by its *last* key first and is stable, so rows
    # with fully equal keys keep ascending index order -- exactly the
    # implicit final tie-break of a ``(keys..., i)`` tuple sort.
    order = np.lexsort(tuple(reversed(cols)))
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)
    return rank


def rank_from_callable(tree: TaskTree, priority: Callable[[int], tuple]) -> np.ndarray:
    """Rank array equivalent to a legacy per-node priority callable.

    The historical engines compared ``(priority(i), i)`` heap entries;
    sorting all nodes by that exact key yields a total order, so the
    resulting rank array reproduces the legacy schedule bit for bit
    while letting the event loop stay integer-only.
    """
    n = tree.n
    by_key = sorted(range(n), key=lambda i: (priority(i), i))
    rank = np.empty(n, dtype=np.int64)
    rank[by_key] = np.arange(n, dtype=np.int64)
    return rank


@dataclass
class EngineState:
    """Mutable state of one :class:`SchedulerEngine` run.

    Attributes
    ----------
    ready:
        heap of bare integer ranks (node = position of the rank in the
        engine's priority permutation): tasks whose children all
        completed but that have not started yet.
    running:
        heap of ``(completion time, node)`` pairs: the event set.
    pending:
        per-node count of children that have not completed yet; a node
        becomes ready when its counter reaches zero.
    free_procs:
        idle processor indices (popped from the tail, so processor 0 is
        assigned first).
    now / started:
        current simulation time and number of started tasks.
    mem / next_sigma:
        memory accounting (resident size and the first index of the
        activation order not yet started); only meaningful when the
        engine was configured with a cap.
    """

    ready: list = field(default_factory=list)
    running: list = field(default_factory=list)
    pending: list = field(default_factory=list)
    free_procs: list = field(default_factory=list)
    now: float = 0.0
    mem: float = 0.0
    started: int = 0
    next_sigma: int = 0


class SchedulerEngine:
    """Event-driven list scheduler with pluggable priorities and an
    optional peak-memory cap.

    Parameters
    ----------
    tree, p:
        the instance: task tree and number of identical processors.
    rank:
        integer priority rank per node (a permutation of ``0..n-1``,
        e.g. from :func:`lex_rank` or :func:`rank_from_callable`); the
        ready task with the smallest rank starts first.
    cap:
        optional memory budget. When set, the engine accounts resident
        file sizes exactly as the simulator does and never starts a
        task that would exceed the cap.
    order:
        activation order :math:`\\sigma` used by the memory modes
        (default: the memory-optimal sequential postorder). Ignored
        without a cap.
    mode:
        ``"strict"`` -- tasks start exactly in :math:`\\sigma` order
        (``rank`` must then equal the :math:`\\sigma` rank); any cap at
        least the sequential peak of :math:`\\sigma` is feasible.
        ``"opportunistic"`` -- any ready task that fits may start,
        preferring the smallest rank; a tight cap may become infeasible,
        raising :class:`MemoryCapError`.
    """

    def __init__(
        self,
        tree: TaskTree,
        p: int,
        rank: np.ndarray,
        *,
        cap: float | None = None,
        order: np.ndarray | None = None,
        mode: str = "strict",
    ) -> None:
        if p < 1:
            raise ValueError("p must be positive")
        if mode not in ("strict", "opportunistic"):
            raise ValueError(f"unknown mode {mode!r}")
        rank = np.asarray(rank, dtype=np.int64)
        if rank.shape[0] != tree.n:
            raise ValueError("rank must have one entry per task")
        if (
            int(rank.min()) < 0
            or int(rank.max()) >= tree.n
            or int(np.bincount(rank, minlength=tree.n).max()) > 1
        ):
            raise ValueError(
                "rank must be a permutation of 0..n-1 (build one with "
                "lex_rank over priority key columns)"
            )
        self.tree = tree
        self.p = int(p)
        self.rank = rank
        self.cap = None if cap is None else float(cap)
        self.mode = mode
        if self.cap is not None:
            if order is None:
                from repro.sequential.postorder import optimal_postorder

                order = optimal_postorder(tree).order
            order = np.asarray(order, dtype=np.int64)
            if order.shape[0] != tree.n:
                raise ValueError("order must contain every task exactly once")
            self.order = order
        else:
            self.order = None
        self.state: EngineState | None = None  # populated by run()

    # ------------------------------------------------------------------
    def run(self) -> Schedule:
        """Execute the event sweep and return the resulting schedule.

        This is the only heapq-driven scheduling loop in the codebase;
        both :func:`repro.parallel.list_schedule` and
        :func:`repro.parallel.memory_bounded_schedule` end up here.
        """
        tree = self.tree
        n = tree.n
        parent = tree.parent.tolist()
        # Integral weights (the paper's data sets and the Pebble-Game
        # regime) let event keys be exact integers ``end * n + node`` --
        # the same (completion time, node) order as the float tuples,
        # with ~2x faster heap operations and no allocation per event.
        int_keys = bool(
            np.all(np.isfinite(tree.w))
            and np.all(np.floor(tree.w) == tree.w)
            and float(tree.w.sum()) * n < 2**62
        )
        w = tree.w.astype(np.int64).tolist() if int_keys else tree.w.tolist()
        rank = self.rank.tolist()
        # byrank[r] is the node holding rank r, so the ready heap can
        # store bare integer ranks (fastest possible heap entries).
        byrank_arr = np.empty(n, dtype=np.int64)
        byrank_arr[self.rank] = np.arange(n, dtype=np.int64)
        byrank = byrank_arr.tolist()
        has_parent = tree.parent != NO_PARENT
        pending_arr = np.bincount(tree.parent[has_parent], minlength=n)
        ready_init = self.rank[pending_arr == 0].tolist()
        pending = pending_arr.tolist()

        capped = self.cap is not None
        strict = self.mode == "strict"
        if capped:
            cap_eps = self.cap + 1e-9
            alloc = (tree.sizes + tree.f).tolist()
            free_on_end = tree.completion_frees().tolist()
            sigma = self.order.tolist()

        start = [-1.0] * n
        proc = [-1] * n
        state = EngineState(
            ready=ready_init,
            running=[],
            pending=pending,
            free_procs=list(range(self.p - 1, -1, -1)),  # pop() yields proc 0 first
        )
        self.state = state
        heapq.heapify(state.ready)
        ready = state.ready
        running = state.running
        free_procs = state.free_procs
        free_pop = free_procs.pop
        free_push = free_procs.append
        push = heapq.heappush
        pop = heapq.heappop

        now = 0 if int_keys else 0.0
        mem = 0.0
        started = 0
        next_sigma = 0
        while True:
            # Start every task the policy allows on the idle processors.
            while free_procs and ready:
                if not capped:
                    node = byrank[pop(ready)]
                elif strict:
                    node = sigma[next_sigma]
                    if pending[node] > 0 or mem + alloc[node] > cap_eps:
                        break
                    # The next sigma task is necessarily the smallest
                    # rank present (ranks follow the activation order).
                    if pop(ready) != rank[node]:
                        raise ValueError(
                            "strict mode requires rank to follow the activation order"
                        )
                else:
                    skipped: list[int] = []
                    node = -1
                    while ready:
                        r = pop(ready)
                        cand = byrank[r]
                        if mem + alloc[cand] <= cap_eps:
                            node = cand
                            break
                        skipped.append(r)
                    for item in skipped:
                        push(ready, item)
                    if node < 0:
                        break
                q = free_pop()
                start[node] = now
                proc[node] = q
                end = now + w[node]
                push(running, end * n + node if int_keys else (end, node))
                started += 1
                if capped:
                    mem += alloc[node]
                    while next_sigma < n and start[sigma[next_sigma]] >= 0:
                        next_sigma += 1
            if not running:
                if started >= n:
                    break
                if capped:
                    node = sigma[next_sigma]
                    raise MemoryCapError(
                        f"cap {self.cap:g} infeasible: task {node} needs "
                        f"{mem + alloc[node]:g} with nothing running "
                        f"(mode={self.mode}; sequential peak of the activation "
                        f"order is a feasible cap in strict mode)"
                    )
                raise RuntimeError(  # pragma: no cover - defensive
                    "deadlock: tasks left but no event pending"
                )
            # Advance to the next completion event; apply every completion
            # at that instant (in event order, so processors are freed and
            # re-filled exactly as the historical engines did) before
            # assigning again.
            if int_keys:
                key = pop(running)
                now, node = divmod(key, n)
                base = key - node  # keys of this instant lie in [base, base+n)
                bound = base + n
            else:
                now, node = pop(running)
            while True:
                free_push(proc[node])
                if capped:
                    mem -= free_on_end[node]
                par = parent[node]
                if par != NO_PARENT:
                    if pending[par] == 1:
                        pending[par] = 0
                        push(ready, rank[par])
                    else:
                        pending[par] -= 1
                if not running:
                    break
                if int_keys:
                    if running[0] < bound:
                        node = pop(running) - base
                    else:
                        break
                elif running[0][0] == now:
                    node = pop(running)[1]
                else:
                    break
        state.now = now
        state.mem = mem
        state.started = started
        state.next_sigma = next_sigma
        return Schedule(
            tree,
            np.asarray(start, dtype=np.float64),
            np.asarray(proc, dtype=np.int64),
            self.p,
        )
