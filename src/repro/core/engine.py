"""Unified event-driven scheduling engine (the paper's Algorithm 3, once).

Every list-style scheduler of this repository -- ParInnerFirst,
ParDeepestFirst, their ablation variants, and the memory-capped
extension -- is an instance of the same event sweep: whenever a task
finishes, its parent may become ready; every idle processor is then
handed the most urgent ready task the start policy allows. Historically
that sweep was implemented twice (``parallel/list_scheduling.py`` and
``parallel/memory_bounded.py``); this module is the single home of the
event loop, and both entry points are thin configurations of
:class:`SchedulerEngine`.

Two design points make the engine fast on large trees:

* **Vectorized priorities.** Heuristics no longer supply a per-node
  Python callable returning a sortable tuple; they supply numpy key
  columns (structure of arrays) that :func:`lex_rank` collapses into a
  single integer rank per node with one ``np.lexsort``. The ready heap
  then holds plain integer ranks, so the event loop performs O(log n)
  integer heap operations only -- no closure calls, no float tuple
  comparisons, no numpy scalar indexing.
* **Pluggable sweep backends.** The sweep itself exists as a
  backend-neutral kernel spec (:mod:`repro.core._sweep`): typed numpy
  arrays in, typed numpy arrays out. ``backend="python"`` runs the
  reference heapq loop below (the CPython floor, ~1.5 us/task);
  ``backend="numba"`` runs the same kernel compiled by ``numba.njit``
  (optional dependency, ``pip install repro-trees[fast]``);
  ``backend="c"`` runs a C translation built on demand with the system
  toolchain (:mod:`repro.core._ckernel`); ``backend="kernel"`` runs
  the kernel source interpreted (slow; for testing the kernel logic
  without a compiler). ``backend="auto"`` (the default) picks the
  fastest available and falls back cleanly to pure Python. **Every
  backend produces bit-identical schedules** -- pinned by the
  cross-backend golden tests, so perf work can never silently change
  paper results.

Complexity is :math:`O(n \\log n)` (binary heaps for both the running
set and the ready queue), matching the paper's analysis; the constant
factor is what the backends change.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from . import _sweep
from ._sweep import SweepResult, batch_arrays, sweep_arrays
from .prepared import PreparedTree, as_prepared
from .schedule import Schedule
from .tree import TaskTree, NO_PARENT

__all__ = [
    "BACKENDS",
    "BackendUnavailableError",
    "BatchRun",
    "BatchScenario",
    "EngineState",
    "MemoryCapError",
    "SchedulerEngine",
    "available_backends",
    "default_threads",
    "lex_rank",
    "probe_backend",
    "rank_from_callable",
    "resolve_backend",
    "sweep_batch",
]

#: environment variable overriding the default backend selection
BACKEND_ENV_VAR = "REPRO_ENGINE_BACKEND"

#: environment variable overriding the default batch-sweep thread count
THREADS_ENV_VAR = "REPRO_NUM_THREADS"

#: accepted values for ``SchedulerEngine(backend=...)``
BACKENDS = ("auto", "python", "numba", "c", "kernel")


# Thread-pool runtimes (libgomp, numba's threading layer) are not
# fork-safe: a process that entered a parallel region and then forks
# (the campaign worker pool) must not re-enter one in the child. The
# pair of flags below tracks exactly that; children of a
# parallel-tainted parent batch through the bit-identical per-scenario
# kernel loop instead (see sweep_batch).
_PARALLEL_USED = False
_FORK_UNSAFE = False


def _note_parallel_used() -> None:
    global _PARALLEL_USED
    _PARALLEL_USED = True


def _after_fork_in_child() -> None:  # pragma: no cover - exercised via pools
    global _FORK_UNSAFE
    if _PARALLEL_USED:
        _FORK_UNSAFE = True


if hasattr(os, "register_at_fork"):  # POSIX
    os.register_at_fork(after_in_child=_after_fork_in_child)


def default_threads() -> int:
    """Worker-thread count for batched sweeps.

    Reads ``REPRO_NUM_THREADS`` when set, else the usable core count
    (CPU affinity aware). Thread count never affects results -- each
    scenario sweeps independently over private scratch -- so this is a
    pure throughput knob.
    """
    env = os.environ.get(THREADS_ENV_VAR, "")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class MemoryCapError(RuntimeError):
    """Raised when no task fits under the cap and none is running."""


class BackendUnavailableError(RuntimeError):
    """An explicitly requested sweep backend cannot run here."""


def available_backends() -> tuple[str, ...]:
    """The concrete backends usable in this environment, fastest first.

    ``python`` and ``kernel`` are always present; ``numba`` requires the
    optional dependency (``pip install repro-trees[fast]``); ``c``
    requires a working C toolchain (first call compiles the kernel).
    """
    names = []
    if _sweep.HAVE_NUMBA:
        names.append("numba")
    from . import _ckernel

    if _ckernel.available():
        names.append("c")
    names.append("python")
    names.append("kernel")
    return tuple(names)


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a backend request to a concrete backend name.

    ``None`` reads the ``REPRO_ENGINE_BACKEND`` environment variable and
    defaults to ``"auto"``. ``"auto"`` picks the fastest available
    backend (numba, then the C kernel, then pure Python) and never
    fails; explicitly requesting an unavailable backend raises
    :class:`BackendUnavailableError` with the reason and the fix.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "") or "auto"
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if backend == "auto":
        if _sweep.HAVE_NUMBA:
            return "numba"
        from . import _ckernel

        if _ckernel.available():
            return "c"
        return "python"
    if backend == "numba" and not _sweep.HAVE_NUMBA:
        raise BackendUnavailableError(
            "backend='numba' requested but numba is not installed; "
            "install the optional extra (pip install 'repro-trees[fast]' "
            "or pip install numba), or use backend='auto' to fall back "
            "to the fastest available backend"
        )
    if backend == "c":
        from . import _ckernel

        if not _ckernel.available():
            raise BackendUnavailableError(
                "backend='c' requested but the compiled kernel is "
                f"unavailable ({_ckernel.unavailable_reason()}); use "
                "backend='auto' to fall back to the fastest available backend"
            )
    return backend


#: memoised :func:`probe_backend` decisions, keyed by
#: ``(backend request, pid)``. The pid key makes the cache fork-safe
#: for free: a forked child (a fresh supervisor worker) sees a miss and
#: probes for itself, while repeated probes inside one process (the
#: scheduling service's ``/readyz``, a supervisor respawning in-process
#: state) hit the cache instead of re-paying the two-node sweep.
_PROBE_CACHE: dict[tuple[str, int], tuple[str, tuple[tuple[str, str], ...]]] = {}


def probe_backend(
    backend: str | None = None, *, refresh: bool = False
) -> tuple[str, list[tuple[str, str]]]:
    """Health-probe the sweep-backend chain; return what actually works.

    :func:`resolve_backend` answers "is the backend nominally present"
    (module importable, artifact compiled); this function answers "does
    it *run*": each candidate executes a real two-node sweep, and the
    first one to produce a schedule wins. Candidates are tried in
    degradation order -- the requested backend first, then the
    remaining concrete backends fastest-first (``numba``, ``c``,
    ``python``), so an explicit ``backend="c"`` whose compile fails
    (toolchain missing, or an injected ``compile_failure`` fault)
    degrades ``c -> numba -> python`` instead of raising.

    Returns ``(usable backend, skipped)`` where ``skipped`` lists the
    ``(backend, reason)`` pairs that failed the probe -- the supervised
    campaign runtime probes once per worker at pool startup, caches the
    decision for the worker's lifetime, and records ``skipped`` in the
    :class:`~repro.analysis.supervisor.RunReport`. Results never depend
    on the outcome: every backend is bit-identical.

    The decision is memoised per ``(backend request, pid)``, so
    repeated probes in one process (health endpoints, pool restarts)
    cost a dict lookup. The cache is bypassed -- never read, never
    written -- while a fault plan is active (injected compile failures
    must keep degrading the probe), and ``refresh=True`` forces a live
    probe.
    """
    from repro.testing import faults

    key = (
        backend or os.environ.get(BACKEND_ENV_VAR, "") or "auto",
        os.getpid(),
    )
    cacheable = faults.active_plan() is None
    if cacheable and not refresh:
        hit = _PROBE_CACHE.get(key)
        if hit is not None:
            return hit[0], [tuple(s) for s in hit[1]]
    skipped: list[tuple[str, str]] = []
    try:
        first: str | None = resolve_backend(backend)
    except BackendUnavailableError as exc:
        requested = backend or os.environ.get(BACKEND_ENV_VAR, "") or "auto"
        skipped.append((requested, str(exc)))
        first = None
    chain = ([first] if first is not None else []) + [
        b for b in ("numba", "c", "python") if b != first
    ]
    probe_tree = TaskTree.from_parents([-1, 0], w=1.0, f=1.0, sizes=0.0)
    rank = np.arange(2, dtype=np.int64)
    for candidate in chain:
        try:
            resolve_backend(candidate)
            SchedulerEngine(probe_tree, 1, rank, backend=candidate).run()
            if cacheable:
                _PROBE_CACHE[key] = (candidate, tuple(map(tuple, skipped)))
            return candidate, skipped
        except Exception as exc:
            skipped.append((candidate, f"{type(exc).__name__}: {exc}"))
    raise RuntimeError(
        "no usable sweep backend: "
        + "; ".join(f"{b}: {reason}" for b, reason in skipped)
    )


def lex_rank(*keys: np.ndarray) -> np.ndarray:
    """Collapse lexicographic key columns into one integer rank per node.

    ``keys`` are given most-significant first; the node index is the
    implicit final tie-break. The result is a permutation of
    ``0..n-1``: ``lex_rank(k0, k1)[i] < lex_rank(k0, k1)[j]`` exactly
    when the tuple ``(k0[i], k1[i], i)`` sorts before
    ``(k0[j], k1[j], j)``. Smaller rank is scheduled first (heapq
    convention), so a rank array is a drop-in replacement for a
    per-node priority-tuple callable.
    """
    cols = [np.asarray(k) for k in keys]
    if not cols:
        raise ValueError("need at least one key column")
    n = cols[0].shape[0]
    # np.lexsort sorts by its *last* key first and is stable, so rows
    # with fully equal keys keep ascending index order -- exactly the
    # implicit final tie-break of a ``(keys..., i)`` tuple sort.
    order = np.lexsort(tuple(reversed(cols)))
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)
    return rank


def rank_from_callable(tree: TaskTree, priority: Callable[[int], tuple]) -> np.ndarray:
    """Rank array equivalent to a legacy per-node priority callable.

    The historical engines compared ``(priority(i), i)`` heap entries;
    sorting all nodes by that exact key yields a total order, so the
    resulting rank array reproduces the legacy schedule bit for bit
    while letting the event loop stay integer-only.
    """
    n = tree.n
    by_key = sorted(range(n), key=lambda i: (priority(i), i))
    rank = np.empty(n, dtype=np.int64)
    rank[by_key] = np.arange(n, dtype=np.int64)
    return rank


@dataclass
class EngineState:
    """Mutable state of one :class:`SchedulerEngine` run.

    Attributes
    ----------
    ready:
        heap of bare integer ranks (node = position of the rank in the
        engine's priority permutation): tasks whose children all
        completed but that have not started yet.
    running:
        heap of ``(completion time, node)`` pairs: the event set.
    pending:
        per-node count of children that have not completed yet; a node
        becomes ready when its counter reaches zero. (Populated by the
        pure-Python backend only; kernel backends keep their state in
        typed arrays and report the summary fields below.)
    free_procs:
        idle processor indices (popped from the tail, so processor 0 is
        assigned first).
    now / started:
        current simulation time and number of started tasks.
    mem / next_sigma:
        memory accounting (resident size and the first index of the
        activation order not yet started); only meaningful when the
        engine was configured with a cap.
    """

    ready: list = field(default_factory=list)
    running: list = field(default_factory=list)
    pending: list = field(default_factory=list)
    free_procs: list = field(default_factory=list)
    now: float = 0.0
    mem: float = 0.0
    started: int = 0
    next_sigma: int = 0


class SchedulerEngine:
    """Event-driven list scheduler with pluggable priorities, sweep
    backends, and an optional peak-memory cap.

    Parameters
    ----------
    tree, p:
        the instance: task tree and number of identical processors.
        ``tree`` may be a bare :class:`~repro.core.tree.TaskTree` or a
        :class:`~repro.core.prepared.PreparedTree`; the prepared form
        shares every run-invariant derivation (pending counts, memory
        columns, exactness flags, rank inverses, list conversions)
        across engine runs, which is what makes (algorithm x p x cap)
        sweeps cheap. Schedules are bit-identical either way.
    rank:
        integer priority rank per node (a permutation of ``0..n-1``,
        e.g. from :func:`lex_rank` or :func:`rank_from_callable`); the
        ready task with the smallest rank starts first.
    cap:
        optional memory budget. When set, the engine accounts resident
        file sizes exactly as the simulator does and never starts a
        task that would exceed the cap.
    order:
        activation order :math:`\\sigma` used by the memory modes
        (default: the memory-optimal sequential postorder). Ignored
        without a cap.
    mode:
        ``"strict"`` -- tasks start exactly in :math:`\\sigma` order
        (``rank`` must then equal the :math:`\\sigma` rank); any cap at
        least the sequential peak of :math:`\\sigma` is feasible.
        ``"opportunistic"`` -- any ready task that fits may start,
        preferring the smallest rank; a tight cap may become infeasible,
        raising :class:`MemoryCapError`.
    backend:
        ``"auto"`` (default; also via the ``REPRO_ENGINE_BACKEND``
        environment variable), ``"python"``, ``"numba"``, ``"c"`` or
        ``"kernel"`` -- see the module docstring. All backends are
        bit-identical; explicitly requesting an unavailable one raises
        :class:`BackendUnavailableError` at construction time.
    """

    def __init__(
        self,
        tree: TaskTree | PreparedTree,
        p: int,
        rank: np.ndarray,
        *,
        cap: float | None = None,
        order: np.ndarray | None = None,
        mode: str = "strict",
        backend: str | None = None,
    ) -> None:
        if p < 1:
            raise ValueError("p must be positive")
        if mode not in ("strict", "opportunistic"):
            raise ValueError(f"unknown mode {mode!r}")
        prepared = as_prepared(tree)
        tree = prepared.tree
        rank = np.ascontiguousarray(rank, dtype=np.int64)
        if rank.shape[0] != tree.n:
            raise ValueError("rank must have one entry per task")
        # Ranks minted by the prepared bundle are permutations by
        # construction (their inverse is already cached); externally
        # supplied ranks are validated as before.
        byrank = prepared.byrank_for(rank)
        if byrank is None:
            if (
                int(rank.min()) < 0
                or int(rank.max()) >= tree.n
                or int(np.bincount(rank, minlength=tree.n).max()) > 1
            ):
                raise ValueError(
                    "rank must be a permutation of 0..n-1 (build one with "
                    "lex_rank over priority key columns)"
                )
            # byrank[r] is the node holding rank r, so the ready heap can
            # store bare integer ranks (fastest possible heap entries).
            byrank = np.empty(tree.n, dtype=np.int64)
            byrank[rank] = np.arange(tree.n, dtype=np.int64)
        self.prepared = prepared
        self.tree = tree
        self.p = int(p)
        self.rank = rank
        self.cap = None if cap is None else float(cap)
        self.mode = mode
        self.backend = resolve_backend(backend)
        if self.cap is not None:
            if order is None:
                order = prepared.optimal().order
            order = np.ascontiguousarray(order, dtype=np.int64)
            if order.shape[0] != tree.n:
                raise ValueError("order must contain every task exactly once")
            self.order = order
        else:
            self.order = None
        self._byrank = byrank
        # Integral weights (the paper's data sets and the Pebble-Game
        # regime) let the reference backend use exact integer event keys
        # ``end * n + node``; the kernel backends always use a
        # (float64 end, node) pair heap, whose order coincides as long
        # as every completion time is exactly representable in a
        # float64 (total weight below 2**53). Both flags are pure
        # functions of the weight column, cached on the prepared bundle.
        self._int_keys = prepared.int_keys
        self._kernel_exact = prepared.kernel_exact
        self.backend_used: str | None = None  # populated by run()
        self.state: EngineState | None = None  # populated by run()
        self.sweep: SweepResult | None = None  # populated by run()

    # ------------------------------------------------------------------
    def run(self) -> Schedule:
        """Execute the event sweep and return the resulting schedule.

        Both :func:`repro.parallel.list_schedule` and
        :func:`repro.parallel.memory_bounded_schedule` end up here. The
        kernel backends are only engaged when their float64 event keys
        are exactly equivalent to the reference backend's integer
        encoding (always true except for integral weights totalling
        >= 2**53, where the sweep silently falls back to the reference
        loop so the bit-identity contract holds unconditionally).
        """
        if self.backend != "python" and self._kernel_exact:
            self.backend_used = self.backend
            return self._run_kernel()
        self.backend_used = "python"
        return self._run_python()

    # ------------------------------------------------------------------
    def _mode_args(self) -> tuple[bool, int, float]:
        """``(capped, mode code, cap_eps)`` for the kernel spec."""
        capped = self.cap is not None
        mode = 0 if not capped else (1 if self.mode == "strict" else 2)
        cap_eps = (self.cap + 1e-9) if capped else 0.0
        return capped, mode, cap_eps

    def _finish_kernel(
        self, start, end, proc, activation, mem_trace, status, finals
    ) -> Schedule:
        """Interpret one kernel-spec result row: raise the exact error
        the reference loop would, or record the sweep and return the
        schedule. Shared by the single-scenario and batched paths, so
        both produce byte-identical outcomes *and* messages."""
        tree = self.tree
        n = tree.n
        capped = self.cap is not None
        alloc = self.prepared.alloc
        code = int(status[0])
        if code == 1:
            node = int(status[1])
            mem = float(finals[1])
            raise MemoryCapError(
                f"cap {self.cap:g} infeasible: task {node} needs "
                f"{mem + alloc[node]:g} with nothing running "
                f"(mode={self.mode}; sequential peak of the activation "
                f"order is a feasible cap in strict mode)"
            )
        if code == 2:
            raise ValueError(
                "strict mode requires rank to follow the activation order"
            )
        if code == 4:  # pragma: no cover - C kernel scratch malloc failed
            raise MemoryError(
                f"C sweep kernel could not allocate scratch heaps for n={n}"
            )
        if code != 0:  # pragma: no cover - defensive
            raise RuntimeError("deadlock: tasks left but no event pending")
        self.sweep = SweepResult(
            start=start,
            end=end,
            proc=proc,
            activation=activation,
            mem_trace=mem_trace,
            now=float(finals[0]),
            mem=float(finals[1]),
        )
        self.state = EngineState(
            now=float(finals[0]),
            mem=float(finals[1]),
            started=n,
            next_sigma=n if capped else 0,
        )
        return Schedule(tree, start, proc, self.p)

    def _run_kernel(self) -> Schedule:
        """Dispatch the sweep to the selected kernel-spec backend."""
        tree = self.tree
        n = tree.n
        parent = tree.parent
        # Run-invariant typed columns come from the prepared bundle; the
        # kernels mutate ``pending``, so they lease a scratch slot for
        # the duration of the sweep (refilled from the pristine counts,
        # no allocation; exclusive per in-flight sweep, so one shared
        # PreparedTree is safe under concurrent Python threads).
        w = tree.w
        capped, mode, cap_eps = self._mode_args()
        alloc = self.prepared.alloc
        free_on_end = self.prepared.free_on_end
        sigma = self.order if capped else np.empty(0, dtype=np.int64)
        start, end, proc, activation, mem_trace, status, finals = sweep_arrays(n)
        with self.prepared.lease_scratch() as pending:
            args = (
                parent,
                pending,
                w,
                self.rank,
                self._byrank,
                self.p,
                mode,
                cap_eps,
                alloc,
                free_on_end,
                sigma,
                start,
                end,
                proc,
                activation,
                mem_trace,
                status,
                finals,
            )
            if self.backend == "numba":
                _sweep.JIT_KERNEL(*args)
            elif self.backend == "c":
                from . import _ckernel

                _ckernel.kernel(*args)
            else:  # "kernel": the interpreted spec
                _sweep.PY_KERNEL(*args)
        return self._finish_kernel(
            start, end, proc, activation, mem_trace, status, finals
        )

    # ------------------------------------------------------------------
    def _run_python(self) -> Schedule:
        """The pure-Python reference backend: a heapq event loop over
        Python lists (numpy scalar indexing inside a tight loop costs
        ~100ns per access, so all per-node arrays are converted to
        lists once). This loop *defines* the schedule semantics; the
        kernel backends mirror it statement for statement."""
        tree = self.tree
        n = tree.n
        prepared = self.prepared
        # The per-node array -> list conversions are run-invariant, so
        # the prepared bundle performs them once and every later run
        # reads the same lists (``pending`` is mutated below, hence the
        # fresh tolist per run).
        parent = prepared.parent_list()
        int_keys = self._int_keys
        w = prepared.w_list()
        rank = self.rank.tolist()
        byrank = self._byrank.tolist()
        pending0 = prepared.pending0
        ready_init = self.rank[pending0 == 0].tolist()
        pending = pending0.tolist()

        capped = self.cap is not None
        strict = self.mode == "strict"
        alloc = prepared.alloc_list()
        free_on_end = prepared.free_list()
        if capped:
            cap_eps = self.cap + 1e-9
            sigma = self.order.tolist()

        start = [-1.0] * n
        proc = [-1] * n
        activation = [-1] * n
        mem_trace = [0.0] * n
        state = EngineState(
            ready=ready_init,
            running=[],
            pending=pending,
            free_procs=list(range(self.p - 1, -1, -1)),  # pop() yields proc 0 first
        )
        self.state = state
        heapq.heapify(state.ready)
        ready = state.ready
        running = state.running
        free_procs = state.free_procs
        free_pop = free_procs.pop
        free_push = free_procs.append
        push = heapq.heappush
        pop = heapq.heappop

        now = 0 if int_keys else 0.0
        mem = 0.0
        started = 0
        next_sigma = 0
        while True:
            # Start every task the policy allows on the idle processors.
            while free_procs and ready:
                if not capped:
                    node = byrank[pop(ready)]
                elif strict:
                    node = sigma[next_sigma]
                    if pending[node] > 0 or mem + alloc[node] > cap_eps:
                        break
                    # The next sigma task is necessarily the smallest
                    # rank present (ranks follow the activation order).
                    if pop(ready) != rank[node]:
                        raise ValueError(
                            "strict mode requires rank to follow the activation order"
                        )
                else:
                    skipped: list[int] = []
                    node = -1
                    while ready:
                        r = pop(ready)
                        cand = byrank[r]
                        if mem + alloc[cand] <= cap_eps:
                            node = cand
                            break
                        skipped.append(r)
                    for item in skipped:
                        push(ready, item)
                    if node < 0:
                        break
                q = free_pop()
                start[node] = now
                proc[node] = q
                end = now + w[node]
                push(running, end * n + node if int_keys else (end, node))
                mem += alloc[node]
                activation[started] = node
                mem_trace[started] = mem
                started += 1
                if capped:
                    while next_sigma < n and start[sigma[next_sigma]] >= 0:
                        next_sigma += 1
            if not running:
                if started >= n:
                    break
                if capped:
                    node = sigma[next_sigma]
                    raise MemoryCapError(
                        f"cap {self.cap:g} infeasible: task {node} needs "
                        f"{mem + alloc[node]:g} with nothing running "
                        f"(mode={self.mode}; sequential peak of the activation "
                        f"order is a feasible cap in strict mode)"
                    )
                raise RuntimeError(  # pragma: no cover - defensive
                    "deadlock: tasks left but no event pending"
                )
            # Advance to the next completion event; apply every completion
            # at that instant (in event order, so processors are freed and
            # re-filled exactly as the historical engines did) before
            # assigning again.
            if int_keys:
                key = pop(running)
                now, node = divmod(key, n)
                base = key - node  # keys of this instant lie in [base, base+n)
                bound = base + n
            else:
                now, node = pop(running)
            while True:
                free_push(proc[node])
                mem -= free_on_end[node]
                par = parent[node]
                if par != NO_PARENT:
                    if pending[par] == 1:
                        pending[par] = 0
                        push(ready, rank[par])
                    else:
                        pending[par] -= 1
                if not running:
                    break
                if int_keys:
                    if running[0] < bound:
                        node = pop(running) - base
                    else:
                        break
                elif running[0][0] == now:
                    node = pop(running)[1]
                else:
                    break
        state.now = now
        state.mem = mem
        state.started = started
        state.next_sigma = next_sigma
        start_arr = np.asarray(start, dtype=np.float64)
        self.sweep = SweepResult(
            start=start_arr,
            end=start_arr + tree.w,
            proc=np.asarray(proc, dtype=np.int64),
            activation=np.asarray(activation, dtype=np.int64),
            mem_trace=np.asarray(mem_trace, dtype=np.float64),
            now=float(now),
            mem=float(mem),
        )
        return Schedule(tree, self.sweep.start, self.sweep.proc, self.p)


# ----------------------------------------------------------------------
# Megabatch sweeps: one kernel call per (algorithm x p x cap) grid.


@dataclass(frozen=True)
class BatchScenario:
    """One scenario of a megabatch grid against a shared tree.

    The fields mirror the :class:`SchedulerEngine` constructor minus the
    tree: a priority ``rank`` permutation, the processor count ``p``,
    and the optional memory configuration (``cap``, activation
    ``order``, ``mode``). Registered heuristics expose a
    ``batch_spec`` builder (see :mod:`repro.registry`) so campaign grids
    never have to assemble these by hand.
    """

    rank: np.ndarray
    p: int
    cap: float | None = None
    order: np.ndarray | None = None
    mode: str = "strict"


@dataclass
class BatchRun:
    """Result of :func:`sweep_batch`.

    ``outcomes[i]`` is scenario *i*'s :class:`~repro.core.schedule.Schedule`
    or the exception its unbatched run would have raised (stored, not
    raised, so one infeasible cap cannot discard a whole grid);
    ``engines[i]`` is the fully-run engine (``.sweep``, ``.state``,
    ``.backend_used`` populated exactly as after ``run()``).
    """

    engines: list[SchedulerEngine]
    outcomes: list[Schedule | Exception]
    backend: str
    threads: int

    def schedules(self) -> list[Schedule]:
        """All schedules; re-raises the first stored scenario error."""
        for out in self.outcomes:
            if isinstance(out, Exception):
                raise out
        return list(self.outcomes)


def _batch_via_single(
    resolved: str, kernel_idx: list[int], engines, prepared, args
) -> None:
    """Sweep the stacked batch through the single-scenario kernel.

    The fork-safe fallback of :func:`sweep_batch`: same stacked inputs,
    same output rows, one kernel call per scenario -- no thread runtime
    touched, results bit-identical to the batched call.
    """
    (
        parent,
        pending0,
        w,
        ranks,
        byranks,
        rank_id,
        ps,
        modes,
        cap_eps,
        alloc,
        free_on_end,
        sigmas,
        sigma_id,
        start,
        end,
        proc,
        activation,
        mem_trace,
        status,
        finals,
    ) = args
    if resolved == "c":
        from . import _ckernel

        fn = _ckernel.kernel
    else:
        fn = _sweep.JIT_KERNEL
    empty = sigmas[0][:0]
    for j in range(ps.shape[0]):
        sid = int(sigma_id[j])
        rid = int(rank_id[j])
        with prepared.lease_scratch() as pending:
            fn(
                parent,
                pending,
                w,
                ranks[rid],
                byranks[rid],
                int(ps[j]),
                int(modes[j]),
                float(cap_eps[j]),
                alloc,
                free_on_end,
                sigmas[sid] if sid >= 0 else empty,
                start[j],
                end[j],
                proc[j],
                activation[j],
                mem_trace[j],
                status[j],
                finals[j],
            )


def sweep_batch(
    tree: TaskTree | PreparedTree,
    scenarios: list[BatchScenario],
    *,
    backend: str | None = None,
    threads: int | None = None,
) -> BatchRun:
    """Sweep a whole scenario grid against one tree in one kernel call.

    Stacks the per-scenario parameters (p, memory mode, rank ids, sigma
    ids) and dispatches a single batched kernel call -- OpenMP-threaded
    across scenarios in the C backend, ``numba.prange`` in the numba
    backend, a plain loop over the single-scenario sweep in the
    python/interpreted backends. Per-scenario results are
    **bit-identical** to running each scenario through
    :class:`SchedulerEngine` individually, for every backend and any
    thread count: scenarios share only read-only columns and each sweeps
    over private scratch.

    Scenarios the kernel contract excludes -- ``backend="python"``, or
    integral weights >= 2**53 where float64 event keys lose exactness --
    fall back to the reference loop *per scenario*; the rest of the grid
    still goes through the compiled megabatch.

    ``threads`` defaults to :func:`default_threads` (``REPRO_NUM_THREADS``
    or the usable core count).
    """
    prepared = as_prepared(tree)
    nthreads = default_threads() if threads is None else max(1, int(threads))
    engines = [
        SchedulerEngine(
            prepared,
            sc.p,
            sc.rank,
            cap=sc.cap,
            order=sc.order,
            mode=sc.mode,
            backend=backend,
        )
        for sc in scenarios
    ]
    resolved = engines[0].backend if engines else resolve_backend(backend)
    outcomes: list[Schedule | Exception] = [None] * len(engines)  # type: ignore[list-item]
    kernel_idx: list[int] = []
    for i, e in enumerate(engines):
        if e.backend != "python" and e._kernel_exact:
            kernel_idx.append(i)
        else:
            # per-scenario exactness/backend fallback: run() takes the
            # reference loop for exactly these scenarios, as unbatched.
            try:
                outcomes[i] = e.run()
            except (MemoryCapError, ValueError, MemoryError) as exc:
                outcomes[i] = exc
    if kernel_idx:
        n = prepared.tree.n
        nscen = len(kernel_idx)
        # Deduplicate rank stacks by array identity: scenarios of one
        # grid typically share a handful of rank permutations (cached on
        # the prepared bundle), so the stacks stay small. ``byrank`` is
        # paired through the same id-keyed cache, keeping rows aligned.
        from .prepared import stack_unique

        rank_rows: list[np.ndarray] = []
        byrank_rows: list[np.ndarray] = []
        rank_map: dict[int, int] = {}
        rank_id = np.empty(nscen, dtype=np.int64)
        ps = np.empty(nscen, dtype=np.int64)
        modes = np.empty(nscen, dtype=np.int64)
        cap_eps = np.empty(nscen, dtype=np.float64)
        for j, i in enumerate(kernel_idx):
            e = engines[i]
            rid = rank_map.get(id(e.rank))
            if rid is None:
                rid = len(rank_rows)
                rank_map[id(e.rank)] = rid
                rank_rows.append(e.rank)
                byrank_rows.append(e._byrank)
            rank_id[j] = rid
            _, mode, eps = e._mode_args()
            ps[j] = e.p
            modes[j] = mode
            cap_eps[j] = eps
        ranks = np.ascontiguousarray(np.stack(rank_rows))
        byranks = np.ascontiguousarray(np.stack(byrank_rows))
        # e.order is None exactly for uncapped scenarios, so stack_unique
        # assigns them the -1 sentinel (the kernels never read their
        # sigma) and deduplicates the shared activation orders.
        sigmas, sigma_id = stack_unique([engines[i].order for i in kernel_idx])
        start, end, proc, activation, mem_trace, status, finals = batch_arrays(
            nscen, n
        )
        args = (
            prepared.tree.parent,
            prepared.pending0,
            prepared.tree.w,
            ranks,
            byranks,
            rank_id,
            ps,
            modes,
            cap_eps,
            prepared.alloc,
            prepared.free_on_end,
            sigmas,
            sigma_id,
            start,
            end,
            proc,
            activation,
            mem_trace,
            status,
            finals,
        )
        if _FORK_UNSAFE and resolved in ("numba", "c"):
            # forked child of a parallel-tainted parent: re-entering the
            # thread runtime could deadlock, so sweep the stacks through
            # the single-scenario kernel instead -- same kernel, same
            # rows, bit-identical results.
            _batch_via_single(resolved, kernel_idx, engines, prepared, args)
        elif resolved == "numba":
            import numba

            # numba threads are a process-global; clamp to the launch
            # cap, restore afterwards so nested callers are unaffected.
            old = numba.get_num_threads()
            numba.set_num_threads(
                max(1, min(nthreads, numba.config.NUMBA_NUM_THREADS))
            )
            try:
                _sweep.JIT_BATCH(*args)
            finally:
                numba.set_num_threads(old)
            # parallel=True engages the threading layer regardless of
            # the thread count, so any fork from here on is tainted.
            _note_parallel_used()
        elif resolved == "c":
            from . import _ckernel

            _ckernel.batch_kernel(*args, threads=nthreads)
            if nthreads > 1 and _ckernel.openmp_enabled():
                _note_parallel_used()
        else:  # "kernel": the interpreted spec, serial loop
            _sweep.PY_BATCH(*args)
        for j, i in enumerate(kernel_idx):
            e = engines[i]
            e.backend_used = e.backend
            try:
                outcomes[i] = e._finish_kernel(
                    start[j],
                    end[j],
                    proc[j],
                    activation[j],
                    mem_trace[j],
                    status[j],
                    finals[j],
                )
            except (MemoryCapError, ValueError, MemoryError) as exc:
                outcomes[i] = exc
    return BatchRun(
        engines=engines, outcomes=outcomes, backend=resolved, threads=nthreads
    )
