"""Event-sweep simulator: exact peak memory and makespan of a schedule.

The memory accounting follows Section 3.1 of the paper exactly:

* when task ``i`` **starts**, its execution file ``n_i`` and its output
  file ``f_i`` are allocated (its input files -- the outputs of its
  children -- are already resident);
* when task ``i`` **completes**, its execution file ``n_i`` and all of its
  input files :math:`\\{f_j : j \\in Children(i)\\}` are freed; the output
  ``f_i`` stays resident until the *parent* of ``i`` completes;
* the root's output remains allocated through the end of the schedule.

At identical timestamps, completions are applied before starts. This is
the convention of the paper's step-based schedules (e.g. the
NP-completeness gadget of Section 4.1, where step ``2n+1`` reuses the
memory freed at the end of step ``2n``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .schedule import Schedule
from .tree import TaskTree
from .validation import validate_schedule

__all__ = ["SimulationResult", "simulate", "peak_memory", "memory_profile"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating a schedule.

    Attributes
    ----------
    makespan:
        completion time of the last task (the root, for valid schedules).
    peak_memory:
        maximum total resident file size over the whole execution.
    times / memory:
        the piecewise-constant memory profile: ``memory[k]`` is the
        resident size in ``[times[k], times[k+1])``.
    """

    makespan: float
    peak_memory: float
    times: np.ndarray
    memory: np.ndarray

    def memory_at(self, t: float) -> float:
        """Resident memory at time ``t`` (right-continuous profile)."""
        k = int(np.searchsorted(self.times, t, side="right") - 1)
        if k < 0:
            return 0.0
        return float(self.memory[k])


def _memory_events(schedule: Schedule) -> tuple[np.ndarray, np.ndarray]:
    """Return (times, deltas) of all allocation/free events.

    Free events carry phase 0 and allocation events phase 1 so that a
    stable sort applies frees first at equal timestamps.
    """
    tree = schedule.tree
    n = tree.n
    start = schedule.start
    end = schedule.end
    # Each task contributes one allocation event (n_i + f_i at start) and
    # one free event (n_i + sum of children f at end).
    alloc = tree.sizes + tree.f
    freed = tree.completion_frees()
    times = np.concatenate([end, start])
    phases = np.concatenate([np.zeros(n, dtype=np.int8), np.ones(n, dtype=np.int8)])
    deltas = np.concatenate([-freed, alloc])
    order = np.lexsort((phases, times))
    return times[order], deltas[order]


def memory_profile(schedule: Schedule) -> tuple[np.ndarray, np.ndarray]:
    """Piecewise-constant memory profile of a schedule.

    Returns ``(times, memory)`` where ``memory[k]`` holds on
    ``[times[k], times[k+1])``. Events at the same timestamp are merged,
    with frees applied before allocations.
    """
    times, deltas = _memory_events(schedule)
    levels = np.cumsum(deltas)
    # Merge runs of equal timestamps keeping the *last* level (frees were
    # sorted first, so intermediate levels at the same instant are
    # transient bookkeeping, not real states).
    keep = np.ones(times.shape[0], dtype=bool)
    keep[:-1] = times[1:] != times[:-1]
    return times[keep], levels[keep]


def peak_memory(schedule: Schedule) -> float:
    """Peak resident memory of a schedule.

    The peak is the maximum level reached *between* event groups; the
    within-instant transient of a simultaneous free+allocation does not
    count, matching the step semantics of the paper.
    """
    _, levels = memory_profile(schedule)
    if levels.shape[0] == 0:
        return 0.0
    return float(levels.max())


def simulate(schedule: Schedule, validate: bool = True) -> SimulationResult:
    """Simulate a schedule: validate it and measure makespan and memory.

    Parameters
    ----------
    schedule:
        the schedule to evaluate.
    validate:
        when True (default), raise
        :class:`~repro.core.validation.InvalidScheduleError` if the
        schedule violates precedence or processor constraints.
    """
    if validate:
        validate_schedule(schedule)
    times, levels = memory_profile(schedule)
    peak = float(levels.max()) if levels.shape[0] else 0.0
    return SimulationResult(
        makespan=schedule.makespan,
        peak_memory=peak,
        times=times,
        memory=levels,
    )


def sequential_peak_memory(tree: TaskTree, order) -> float:
    """Peak memory of executing ``order`` sequentially.

    Convenience wrapper: builds the back-to-back one-processor schedule
    and measures it. Equivalent to, and cross-checked in tests against,
    the direct traversal evaluation in
    :func:`repro.sequential.traversal.traversal_peak_memory`.
    """
    return peak_memory(Schedule.sequential(tree, order))
