"""Core model: trees, schedules, simulation, validation, and bounds."""

from .tree import TaskTree, NO_PARENT
from .prepared import PreparedTree, as_prepared, tree_of
from .schedule import Schedule, ScheduledTask
from .engine import (
    BackendUnavailableError,
    EngineState,
    MemoryCapError,
    SchedulerEngine,
    available_backends,
    lex_rank,
    rank_from_callable,
    resolve_backend,
)
from .simulator import (
    SimulationResult,
    simulate,
    peak_memory,
    memory_profile,
    sequential_peak_memory,
)
from .validation import InvalidScheduleError, validate_schedule, is_valid
from .bounds import memory_lower_bound, makespan_lower_bound
from .outofcore import OutOfCoreResult, simulate_out_of_core
from .trace import TraceEvent, UtilizationStats, schedule_trace, utilization, trace_json

__all__ = [
    "TaskTree",
    "NO_PARENT",
    "PreparedTree",
    "as_prepared",
    "tree_of",
    "Schedule",
    "ScheduledTask",
    "BackendUnavailableError",
    "EngineState",
    "MemoryCapError",
    "SchedulerEngine",
    "available_backends",
    "lex_rank",
    "rank_from_callable",
    "resolve_backend",
    "SimulationResult",
    "simulate",
    "peak_memory",
    "memory_profile",
    "sequential_peak_memory",
    "InvalidScheduleError",
    "validate_schedule",
    "is_valid",
    "memory_lower_bound",
    "makespan_lower_bound",
    "OutOfCoreResult",
    "simulate_out_of_core",
    "TraceEvent",
    "UtilizationStats",
    "schedule_trace",
    "utilization",
    "trace_json",
]
