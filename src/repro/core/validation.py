"""Validation of schedules against the model of Section 3.

A schedule is *valid* when

1. every task starts only after all of its children completed
   (the tree is an in-tree: inputs are the children's output files),
2. no processor executes two tasks at once,
3. every task is assigned to an existing processor ``0 <= proc < p``.

Validation failures raise :class:`InvalidScheduleError` with a message
naming the offending tasks, which makes property-test shrinking output
readable.
"""

from __future__ import annotations

import numpy as np

from .schedule import Schedule

__all__ = ["InvalidScheduleError", "validate_schedule"]


class InvalidScheduleError(ValueError):
    """Raised when a schedule violates precedence or resource constraints."""


def validate_schedule(schedule: Schedule, tol: float = 1e-9) -> None:
    """Check the three validity conditions, raising on the first violation.

    Parameters
    ----------
    schedule:
        the schedule to check.
    tol:
        numerical slack for comparing floating-point times; a child may
        complete up to ``tol`` after its parent starts without raising.
    """
    tree = schedule.tree
    start = schedule.start
    end = schedule.end

    if np.any(schedule.proc < 0) or np.any(schedule.proc >= schedule.p):
        bad = int(np.flatnonzero((schedule.proc < 0) | (schedule.proc >= schedule.p))[0])
        raise InvalidScheduleError(
            f"task {bad} assigned to processor {int(schedule.proc[bad])} "
            f"outside 0..{schedule.p - 1}"
        )
    if np.any(start < -tol):
        bad = int(np.flatnonzero(start < -tol)[0])
        raise InvalidScheduleError(f"task {bad} starts at negative time {start[bad]}")

    # Precedence: child must finish before parent starts.
    for i in range(tree.n):
        for j in tree.children(i):
            if end[j] > start[i] + tol:
                raise InvalidScheduleError(
                    f"precedence violated: child {j} ends at {end[j]} "
                    f"after parent {i} starts at {start[i]}"
                )

    # Resource: no overlap per processor. Sort once, check neighbours.
    order = np.lexsort((start, schedule.proc))
    for a, b in zip(order[:-1], order[1:]):
        if schedule.proc[a] == schedule.proc[b] and end[a] > start[b] + tol:
            raise InvalidScheduleError(
                f"processor {int(schedule.proc[a])} overlap: task {int(a)} "
                f"[{start[a]}, {end[a]}) and task {int(b)} [{start[b]}, {end[b]})"
            )


def is_valid(schedule: Schedule, tol: float = 1e-9) -> bool:
    """Boolean wrapper around :func:`validate_schedule`."""
    try:
        validate_schedule(schedule, tol=tol)
    except InvalidScheduleError:
        return False
    return True
