"""C implementation of the event-sweep kernel spec (``backend="c"``).

A line-for-line translation of :func:`repro.core._sweep._event_sweep`
into C, compiled on demand with the system toolchain (``cc``/``gcc``/
``clang``) into a shared library cached under the user cache directory
(override with ``REPRO_KERNEL_CACHE``) and loaded via :mod:`ctypes`.
Like the numba backend it is strictly optional: when no toolchain is
available (or the compile attempts fail) :func:`available` returns
False and the engine falls back cleanly.

The build is keyed by a hash of the C source **and the compiler
flags**, so editing the kernel invalidates the cache automatically,
an OpenMP build can never collide with a previously cached serial
``.so`` (the two differ only in flags), and concurrent processes
converge on the same artifact: the source is written to a unique
temporary name and atomically renamed, the compile output likewise,
and a stale-lock-tolerant ``.lock`` guard elects one builder while the
others wait for the artifact to appear (a crashed builder's lock is
broken once it goes stale, and a lock wait that times out simply
compiles redundantly -- ``os.replace`` keeps that correct).

Besides the single-scenario ``event_sweep`` the library exports
``batch_event_sweep``: the batched kernel spec
(:func:`repro.core._sweep._batch_sweep`) with an OpenMP-parallel outer
loop over scenarios. Each worker thread owns one scratch arena (heaps
plus a private ``pending`` copy refilled per scenario), so any thread
count produces bit-identical per-scenario results. The library is
first built with ``-fopenmp``; when the toolchain lacks OpenMP support
the build falls back to a serial translation of the same loop
(``REPRO_NO_OPENMP=1`` forces the serial build, which is what the
no-OpenMP CI leg exercises). :func:`openmp_enabled` reports which
variant loaded; ctypes releases the GIL for the duration of the call
either way.

The C side follows the exact kernel spec of :mod:`repro.core._sweep`
(same argument order, same status codes, same bit-for-bit equivalence
contract with the pure-Python reference backend).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import time

import numpy as np
from numpy.ctypeslib import ndpointer

__all__ = [
    "available",
    "unavailable_reason",
    "openmp_enabled",
    "kernel",
    "batch_kernel",
    "cache_dir",
]

#: environment variable forcing the serial (no ``-fopenmp``) build
NO_OPENMP_ENV_VAR = "REPRO_NO_OPENMP"

_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#ifdef _OPENMP
#include <omp.h>
#endif

/* array-based binary min-heaps; pop order == heapq pop order because
 * all keys are unique (ready entries are a rank permutation, running
 * entries carry the node id as tie-break) */

static void push_int(int64_t *heap, int64_t size, int64_t val)
{
    int64_t i = size;
    while (i > 0) {
        int64_t up = (i - 1) >> 1;
        if (heap[up] > val) {
            heap[i] = heap[up];
            i = up;
        } else {
            break;
        }
    }
    heap[i] = val;
}

static int64_t pop_int(int64_t *heap, int64_t size)
{
    int64_t top = heap[0];
    int64_t m = size - 1;
    int64_t last = heap[m];
    int64_t i = 0;
    for (;;) {
        int64_t child = 2 * i + 1;
        int64_t right;
        if (child >= m)
            break;
        right = child + 1;
        if (right < m && heap[right] < heap[child])
            child = right;
        if (heap[child] < last) {
            heap[i] = heap[child];
            i = child;
        } else {
            break;
        }
    }
    if (m > 0)
        heap[i] = last;
    return top;
}

static void push_run(double *keys, int64_t *nodes, int64_t size,
                     double k, int64_t v)
{
    int64_t i = size;
    while (i > 0) {
        int64_t up = (i - 1) >> 1;
        double uk = keys[up];
        int64_t uv = nodes[up];
        if (k < uk || (k == uk && v < uv)) {
            keys[i] = uk;
            nodes[i] = uv;
            i = up;
        } else {
            break;
        }
    }
    keys[i] = k;
    nodes[i] = v;
}

static void pop_run(double *keys, int64_t *nodes, int64_t size,
                    double *out_k, int64_t *out_v)
{
    double top_k = keys[0];
    int64_t top_v = nodes[0];
    int64_t m = size - 1;
    double lk = keys[m];
    int64_t lv = nodes[m];
    int64_t i = 0;
    for (;;) {
        int64_t child = 2 * i + 1;
        int64_t right;
        double ck;
        int64_t cv;
        if (child >= m)
            break;
        right = child + 1;
        if (right < m && (keys[right] < keys[child] ||
                          (keys[right] == keys[child] &&
                           nodes[right] < nodes[child])))
            child = right;
        ck = keys[child];
        cv = nodes[child];
        if (ck < lk || (ck == lk && cv < lv)) {
            keys[i] = ck;
            nodes[i] = cv;
            i = child;
        } else {
            break;
        }
    }
    if (m > 0) {
        keys[i] = lk;
        nodes[i] = lv;
    }
    *out_k = top_k;
    *out_v = top_v;
}

/* The event sweep over caller-provided scratch arenas (sized n, n, n,
 * n and >= p respectively): the batched entry point hands every worker
 * thread one arena reused across its scenarios, the single-scenario
 * wrapper below mallocs a fresh one. */
static int64_t event_sweep_core(int64_t n, int64_t p,
                    const int64_t *parent, int64_t *pending,
                    const double *w,
                    const int64_t *rank, const int64_t *byrank,
                    int64_t mode, double cap_eps,
                    const double *alloc, const double *free_on_end,
                    const int64_t *sigma,
                    double *start, double *end_out, int64_t *proc,
                    int64_t *activation, double *mem_trace,
                    int64_t *status, double *finals,
                    int64_t *ready, double *run_key, int64_t *run_node,
                    int64_t *skipped, int64_t *free_stack)
{
    int64_t free_count, ready_size, run_size, started, next_sigma, i, q;
    double now, mem;

    for (q = 0; q < p; q++)
        free_stack[q] = p - 1 - q; /* pop from the tail => proc 0 first */
    free_count = p;
    ready_size = 0;
    for (i = 0; i < n; i++) {
        if (pending[i] == 0)
            push_int(ready, ready_size++, rank[i]);
    }
    run_size = 0;
    now = 0.0;
    mem = 0.0;
    started = 0;
    next_sigma = 0;
    for (;;) {
        /* start every task the policy allows on the idle processors */
        while (free_count > 0 && ready_size > 0) {
            int64_t node;
            double t_end;
            if (mode == 0) {
                node = byrank[pop_int(ready, ready_size--)];
            } else if (mode == 1) {
                int64_t r;
                node = sigma[next_sigma];
                if (pending[node] > 0 || mem + alloc[node] > cap_eps)
                    break;
                r = pop_int(ready, ready_size--);
                if (r != rank[node]) {
                    status[0] = 2;
                    status[1] = node;
                    return status[0];
                }
            } else {
                int64_t nskip = 0, k;
                node = -1;
                while (ready_size > 0) {
                    int64_t r = pop_int(ready, ready_size--);
                    int64_t cand = byrank[r];
                    if (mem + alloc[cand] <= cap_eps) {
                        node = cand;
                        break;
                    }
                    skipped[nskip++] = r;
                }
                for (k = 0; k < nskip; k++)
                    push_int(ready, ready_size++, skipped[k]);
                if (node < 0)
                    break;
            }
            q = free_stack[--free_count];
            start[node] = now;
            proc[node] = q;
            t_end = now + w[node];
            end_out[node] = t_end;
            push_run(run_key, run_node, run_size++, t_end, node);
            mem += alloc[node];
            activation[started] = node;
            mem_trace[started] = mem;
            started++;
            if (mode != 0) {
                while (next_sigma < n && start[sigma[next_sigma]] >= 0.0)
                    next_sigma++;
            }
        }
        if (run_size == 0) {
            if (started >= n)
                break;
            if (mode != 0) {
                status[0] = 1;
                status[1] = sigma[next_sigma];
                finals[0] = now;
                finals[1] = mem;
                return status[0];
            }
            status[0] = 3; /* deadlock (defensive) */
            status[1] = -1;
            return status[0];
        }
        /* advance to the next completion event; apply every completion
         * at that instant before assigning again */
        {
            int64_t node;
            pop_run(run_key, run_node, run_size--, &now, &node);
            for (;;) {
                int64_t par;
                free_stack[free_count++] = proc[node];
                mem -= free_on_end[node];
                par = parent[node];
                if (par >= 0) {
                    if (pending[par] == 1) {
                        pending[par] = 0;
                        push_int(ready, ready_size++, rank[par]);
                    } else {
                        pending[par]--;
                    }
                }
                if (run_size == 0)
                    break;
                if (run_key[0] == now) {
                    double ignored;
                    pop_run(run_key, run_node, run_size--, &ignored, &node);
                } else {
                    break;
                }
            }
        }
    }
    status[0] = 0;
    status[1] = n;
    finals[0] = now;
    finals[1] = mem;
    return status[0];
}

int64_t event_sweep(int64_t n, int64_t p,
                    const int64_t *parent, int64_t *pending,
                    const double *w,
                    const int64_t *rank, const int64_t *byrank,
                    int64_t mode, double cap_eps,
                    const double *alloc, const double *free_on_end,
                    const int64_t *sigma,
                    double *start, double *end_out, int64_t *proc,
                    int64_t *activation, double *mem_trace,
                    int64_t *status, double *finals)
{
    int64_t *ready = malloc((size_t)n * sizeof(int64_t));
    double *run_key = malloc((size_t)n * sizeof(double));
    int64_t *run_node = malloc((size_t)n * sizeof(int64_t));
    int64_t *skipped = malloc((size_t)n * sizeof(int64_t));
    int64_t *free_stack = malloc((size_t)p * sizeof(int64_t));

    if (!ready || !run_key || !run_node || !skipped || !free_stack) {
        status[0] = 4; /* allocation failure */
        status[1] = -1;
    } else {
        event_sweep_core(n, p, parent, pending, w, rank, byrank,
                         mode, cap_eps, alloc, free_on_end, sigma,
                         start, end_out, proc, activation, mem_trace,
                         status, finals,
                         ready, run_key, run_node, skipped, free_stack);
    }
    free(ready);
    free(run_key);
    free(run_node);
    free(skipped);
    free(free_stack);
    return status[0];
}

int64_t openmp_compiled(void)
{
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}

/* One worker's share of a batched sweep: scenarios [lo, hi) with
 * stride, over one private scratch arena (heaps sized n, a
 * free-processor stack sized max_p, and a pending copy refilled from
 * the read-only pending0 per scenario). Scenarios never share mutable
 * state, so results are bit-identical for any thread count. */
static int64_t batch_chunk(int64_t n, int64_t max_p,
                    int64_t lo, int64_t hi, int64_t stride,
                    const int64_t *parent, const int64_t *pending0,
                    const double *w,
                    const int64_t *ranks, const int64_t *byranks,
                    const int64_t *rank_id,
                    const int64_t *ps, const int64_t *modes,
                    const double *cap_eps,
                    const double *alloc, const double *free_on_end,
                    const int64_t *sigmas, const int64_t *sigma_id,
                    double *start, double *end_out, int64_t *proc,
                    int64_t *activation, double *mem_trace,
                    int64_t *status, double *finals)
{
    int64_t *pending = malloc((size_t)n * sizeof(int64_t));
    int64_t *ready = malloc((size_t)n * sizeof(int64_t));
    double *run_key = malloc((size_t)n * sizeof(double));
    int64_t *run_node = malloc((size_t)n * sizeof(int64_t));
    int64_t *skipped = malloc((size_t)n * sizeof(int64_t));
    int64_t *free_stack = malloc((size_t)max_p * sizeof(int64_t));
    int64_t ok = pending && ready && run_key && run_node &&
                 skipped && free_stack;
    int64_t failed = 0;
    int64_t s;
    for (s = lo; s < hi; s += stride) {
        if (!ok) {
            status[2 * s] = 4; /* allocation failure */
            status[2 * s + 1] = -1;
            failed = 1;
            continue;
        }
        memcpy(pending, pending0, (size_t)n * sizeof(int64_t));
        event_sweep_core(n, ps[s], parent, pending, w,
                         ranks + rank_id[s] * n,
                         byranks + rank_id[s] * n,
                         modes[s], cap_eps[s], alloc, free_on_end,
                         sigma_id[s] >= 0 ? sigmas + sigma_id[s] * n
                                          : sigmas,
                         start + s * n, end_out + s * n, proc + s * n,
                         activation + s * n, mem_trace + s * n,
                         status + 2 * s, finals + 2 * s,
                         ready, run_key, run_node, skipped, free_stack);
    }
    free(pending);
    free(ready);
    free(run_key);
    free(run_node);
    free(skipped);
    free(free_stack);
    return failed;
}

/* The batched kernel spec (see repro.core._sweep._batch_sweep): one
 * call sweeps every scenario of a grid against the same tree, the
 * outer loop threaded with OpenMP when compiled in.  Scenario s reads
 * rank row rank_id[s] of the (R x n) ranks/byranks stacks and (when
 * capped, sigma_id[s] >= 0) sigma row sigma_id[s] of the (K x n)
 * sigmas stack, and writes row s of the (S x n) output stacks.
 *
 * threads <= 1 never touches the OpenMP runtime at all -- libgomp is
 * not fork-safe, so a forked worker process (the campaign pool) must
 * be able to batch serially without entering a parallel region. */
int64_t batch_event_sweep(int64_t n, int64_t nscen, int64_t max_p,
                    int64_t threads,
                    const int64_t *parent, const int64_t *pending0,
                    const double *w,
                    const int64_t *ranks, const int64_t *byranks,
                    const int64_t *rank_id,
                    const int64_t *ps, const int64_t *modes,
                    const double *cap_eps,
                    const double *alloc, const double *free_on_end,
                    const int64_t *sigmas, const int64_t *sigma_id,
                    double *start, double *end_out, int64_t *proc,
                    int64_t *activation, double *mem_trace,
                    int64_t *status, double *finals)
{
    int64_t failed = 0;
#ifdef _OPENMP
    if (threads > 1) {
#pragma omp parallel num_threads((int)threads) reduction(|:failed)
        {
            /* round-robin chunking: one arena per worker thread */
            failed |= batch_chunk(n, max_p,
                                  (int64_t)omp_get_thread_num(), nscen,
                                  (int64_t)omp_get_num_threads(),
                                  parent, pending0, w, ranks, byranks,
                                  rank_id, ps, modes, cap_eps, alloc,
                                  free_on_end, sigmas, sigma_id,
                                  start, end_out, proc, activation,
                                  mem_trace, status, finals);
        }
        return failed;
    }
#endif
    (void)threads;
    return batch_chunk(n, max_p, 0, nscen, 1,
                       parent, pending0, w, ranks, byranks, rank_id,
                       ps, modes, cap_eps, alloc, free_on_end,
                       sigmas, sigma_id, start, end_out, proc,
                       activation, mem_trace, status, finals);
}
"""

_F64 = ndpointer(dtype=np.float64, flags=("C_CONTIGUOUS",))
_I64 = ndpointer(dtype=np.int64, flags=("C_CONTIGUOUS",))

#: build cache: None = not attempted, else a tuple whose first two
#: entries are (single-scenario fn or None, reason); successful builds
#: append (batch fn, openmp flag). Tests may monkeypatch a 2-tuple.
_BUILD: tuple | None = None


def cache_dir() -> str:
    """Directory holding the compiled kernel shared libraries."""
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(xdg, "repro-trees")


def _build_flags() -> list[list[str]]:
    """Compiler flag sets to attempt, in order of preference.

    The OpenMP build comes first (the batched kernel threads across
    scenarios); a toolchain without OpenMP support falls back to the
    serial flag set. ``REPRO_NO_OPENMP=1`` skips the OpenMP attempt
    entirely (the no-OpenMP CI leg, proving the serial C path).
    """
    base = ["-O3", "-shared", "-fPIC"]
    if os.environ.get(NO_OPENMP_ENV_VAR):
        return [base]
    return [base + ["-fopenmp"], base]


def _cache_key(flags: list[str]) -> str:
    """Cache key of one build: kernel source *and* compiler flags, so a
    serial build can never shadow (or be shadowed by) an OpenMP build
    of the same source."""
    payload = _SOURCE + "\n// flags: " + " ".join(flags)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


#: a build lock untouched for this long is considered the residue of a
#: crashed builder and is broken (compiles are bounded to 120 s)
_LOCK_STALE_SECONDS = 150.0

#: how long a loser waits for the winner's artifact before giving up
#: and compiling redundantly (still correct: artifacts land atomically)
_LOCK_WAIT_SECONDS = 150.0


def _acquire_build_lock(lock_path: str) -> bool:
    """Try to become the builder; True when this process holds the lock.

    The lock is an ``O_EXCL``-created file stamped with the builder's
    pid. A stale lock (older than :data:`_LOCK_STALE_SECONDS` -- a
    builder that crashed or was SIGKILLed mid-compile) is unlinked and
    the acquisition retried once, so one dead process can never wedge
    every future compile.
    """
    for _ in range(2):
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                if time.time() - os.stat(lock_path).st_mtime > _LOCK_STALE_SECONDS:
                    os.unlink(lock_path)  # stale: break it and retry
                    continue
            except OSError:
                pass  # raced: someone else broke or released it
            return False
        except OSError:  # pragma: no cover - unwritable cache dir
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(f"{os.getpid()}\n")
        return True
    return False


def _compile_one(cc: str, flags: list[str], lib_path: str) -> str:
    """Build ``lib_path`` with one flag set; returns an error string
    (empty on success).

    Concurrent-safe: the source and the compiled library are both
    written to unique temporary names and atomically renamed into
    place, and a lock file elects one builder per artifact -- losers
    wait for the winner's artifact instead of clobbering the shared
    source mid-compile (the first-compile race of two pool workers
    starting on a cold cache). A waiting process whose winner never
    delivers (crash; stale lock) falls back to compiling itself.
    """
    directory = os.path.dirname(lib_path)
    tmp_lib = tmp_src = None
    locked = False
    lock_path = lib_path + ".lock"
    try:
        os.makedirs(directory, exist_ok=True)
        locked = _acquire_build_lock(lock_path)
        if not locked:
            # Another process is building this exact artifact: wait for
            # it to land (or for the lock to vanish/go stale), then fall
            # through to a redundant-but-safe compile if it never does.
            deadline = time.time() + _LOCK_WAIT_SECONDS
            while time.time() < deadline:
                if os.path.exists(lib_path):
                    return ""
                locked = _acquire_build_lock(lock_path)
                if locked:
                    break  # winner vanished (or went stale): we build
                time.sleep(0.05)
        if os.path.exists(lib_path):
            return ""  # raced: the artifact landed while we acquired
        src_path = os.path.join(
            directory, os.path.basename(lib_path).replace(".so", ".c")
        )
        fd, tmp_src = tempfile.mkstemp(suffix=".c", dir=directory)
        with os.fdopen(fd, "w") as fh:
            fh.write(_SOURCE)
        fd, tmp_lib = tempfile.mkstemp(suffix=".so", dir=directory)
        os.close(fd)
        cmd = [cc, *flags, "-o", tmp_lib, tmp_src]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout).strip().splitlines()
            return f"{cc} failed: {detail[-1] if detail else 'unknown error'}"
        os.replace(tmp_src, src_path)  # canonical source, for debugging
        tmp_src = None
        os.replace(tmp_lib, lib_path)  # atomic: racers converge
        tmp_lib = None
        return ""
    except (OSError, subprocess.SubprocessError) as exc:
        # a hung or broken toolchain must degrade to "unavailable",
        # never crash engine construction out of backend="auto"
        return f"kernel build failed: {exc}"
    finally:
        for leftover in (tmp_lib, tmp_src):
            if leftover is not None:
                try:
                    os.unlink(leftover)
                except OSError:
                    pass
        if locked:
            try:
                os.unlink(lock_path)
            except OSError:
                pass


def _compile() -> tuple:
    """Build (or reuse) the shared library.

    Returns ``(fn, reason, batch_fn, openmp)`` on success and
    ``(None, reason)`` on failure.
    """
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None:
        return None, "no C compiler (cc/gcc/clang) on PATH"
    error = ""
    lib_path = None
    for flags in _build_flags():
        candidate = os.path.join(
            cache_dir(), f"event_sweep_{_cache_key(flags)}.so"
        )
        if os.path.exists(candidate):
            lib_path = candidate
            break
        error = _compile_one(cc, flags, candidate)
        if not error:
            lib_path = candidate
            break
    if lib_path is None:
        return None, error or "kernel build failed"
    try:
        lib = ctypes.CDLL(lib_path)
    except OSError as exc:  # pragma: no cover - corrupt cache entry
        return None, f"could not load {lib_path}: {exc}"
    fn = lib.event_sweep
    fn.restype = ctypes.c_int64
    fn.argtypes = [
        ctypes.c_int64,  # n
        ctypes.c_int64,  # p
        _I64,  # parent
        _I64,  # pending (mutated)
        _F64,  # w
        _I64,  # rank
        _I64,  # byrank
        ctypes.c_int64,  # mode
        ctypes.c_double,  # cap_eps
        _F64,  # alloc
        _F64,  # free_on_end
        _I64,  # sigma
        _F64,  # start
        _F64,  # end_out
        _I64,  # proc
        _I64,  # activation
        _F64,  # mem_trace
        _I64,  # status
        _F64,  # finals
    ]
    batch = lib.batch_event_sweep
    batch.restype = ctypes.c_int64
    batch.argtypes = [
        ctypes.c_int64,  # n
        ctypes.c_int64,  # nscen
        ctypes.c_int64,  # max_p
        ctypes.c_int64,  # threads
        _I64,  # parent
        _I64,  # pending0 (read-only; copied per scenario in C)
        _F64,  # w
        _I64,  # ranks (R x n)
        _I64,  # byranks (R x n)
        _I64,  # rank_id (S)
        _I64,  # ps (S)
        _I64,  # modes (S)
        _F64,  # cap_eps (S)
        _F64,  # alloc
        _F64,  # free_on_end
        _I64,  # sigmas (K x n)
        _I64,  # sigma_id (S)
        _F64,  # start (S x n)
        _F64,  # end_out (S x n)
        _I64,  # proc (S x n)
        _I64,  # activation (S x n)
        _F64,  # mem_trace (S x n)
        _I64,  # status (S x 2)
        _F64,  # finals (S x 2)
    ]
    probe = lib.openmp_compiled
    probe.restype = ctypes.c_int64
    probe.argtypes = []
    return fn, "", batch, bool(probe())


def _ensure_built() -> tuple:
    global _BUILD
    if _BUILD is None:
        _BUILD = _compile()
    return _BUILD


def _injected_failure() -> bool:
    """True when a fault plan forces a compile failure (chaos testing).

    The hook sits here -- not in the engine -- so every consumer of the
    C backend (``resolve_backend``, ``available_backends``, the worker
    health probe) sees the same degraded world. A no-op without an
    active :mod:`repro.testing.faults` plan.
    """
    try:
        from repro.testing import faults
    except ImportError:  # pragma: no cover - broken partial install
        return False
    return faults.compile_failure()


def available() -> bool:
    """True when the C kernel compiled (or was already cached) and loaded."""
    if _injected_failure():
        return False
    return _ensure_built()[0] is not None


def unavailable_reason() -> str:
    """Why :func:`available` is False (empty string when available)."""
    if _injected_failure():
        return "injected compile failure (REPRO_FAULT_PLAN)"
    return _ensure_built()[1]


def openmp_enabled() -> bool:
    """True when the loaded library was compiled with OpenMP (the
    batched kernel then threads across scenarios; results are
    bit-identical either way)."""
    build = _ensure_built()
    return len(build) > 3 and bool(build[3])


def kernel(
    parent,
    pending,
    w,
    rank,
    byrank,
    p,
    mode,
    cap_eps,
    alloc,
    free_on_end,
    sigma,
    start,
    end_out,
    proc,
    activation,
    mem_trace,
    status,
    finals,
):
    """Invoke the C kernel with the spec's argument order (see _sweep)."""
    build = _ensure_built()
    fn = build[0]
    if fn is None:  # pragma: no cover - callers check available() first
        raise RuntimeError(f"C kernel unavailable: {build[1]}")
    fn(
        parent.shape[0],
        p,
        parent,
        pending,
        w,
        rank,
        byrank,
        mode,
        cap_eps,
        alloc,
        free_on_end,
        sigma,
        start,
        end_out,
        proc,
        activation,
        mem_trace,
        status,
        finals,
    )


def batch_kernel(
    parent,
    pending0,
    w,
    ranks,
    byranks,
    rank_id,
    ps,
    modes,
    cap_eps,
    alloc,
    free_on_end,
    sigmas,
    sigma_id,
    start,
    end_out,
    proc,
    activation,
    mem_trace,
    status,
    finals,
    threads=1,
):
    """Invoke the batched C kernel (argument order of
    :func:`repro.core._sweep._batch_sweep`, plus ``threads``).

    ``threads`` is the OpenMP team size (ignored by a serial build).
    ctypes releases the GIL for the duration, so the whole grid sweeps
    without re-entering Python.
    """
    build = _ensure_built()
    batch = build[2] if len(build) > 2 else None
    if batch is None:  # pragma: no cover - callers check available() first
        raise RuntimeError(f"C kernel unavailable: {build[1]}")
    batch(
        parent.shape[0],
        ps.shape[0],
        int(ps.max()) if ps.shape[0] else 1,
        max(1, int(threads)),
        parent,
        pending0,
        w,
        ranks,
        byranks,
        rank_id,
        ps,
        modes,
        cap_eps,
        alloc,
        free_on_end,
        sigmas,
        sigma_id,
        start,
        end_out,
        proc,
        activation,
        mem_trace,
        status,
        finals,
    )
