"""C implementation of the event-sweep kernel spec (``backend="c"``).

A line-for-line translation of :func:`repro.core._sweep._event_sweep`
into C, compiled on demand with the system toolchain (``cc``/``gcc``/
``clang``) into a shared library cached under the user cache directory
(override with ``REPRO_KERNEL_CACHE``) and loaded via :mod:`ctypes`.
Like the numba backend it is strictly optional: when no toolchain is
available (or the one compile attempt fails) :func:`available` returns
False and the engine falls back cleanly.

The build is keyed by a hash of the C source, so editing the kernel
invalidates the cache automatically and concurrent processes converge
on the same artifact (the compile writes to a unique temporary name and
``os.replace``-s it into place, which is atomic on POSIX).

The C side follows the exact kernel spec of :mod:`repro.core._sweep`
(same argument order, same status codes, same bit-for-bit equivalence
contract with the pure-Python reference backend).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np
from numpy.ctypeslib import ndpointer

__all__ = ["available", "unavailable_reason", "kernel", "cache_dir"]

_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

/* array-based binary min-heaps; pop order == heapq pop order because
 * all keys are unique (ready entries are a rank permutation, running
 * entries carry the node id as tie-break) */

static void push_int(int64_t *heap, int64_t size, int64_t val)
{
    int64_t i = size;
    while (i > 0) {
        int64_t up = (i - 1) >> 1;
        if (heap[up] > val) {
            heap[i] = heap[up];
            i = up;
        } else {
            break;
        }
    }
    heap[i] = val;
}

static int64_t pop_int(int64_t *heap, int64_t size)
{
    int64_t top = heap[0];
    int64_t m = size - 1;
    int64_t last = heap[m];
    int64_t i = 0;
    for (;;) {
        int64_t child = 2 * i + 1;
        int64_t right;
        if (child >= m)
            break;
        right = child + 1;
        if (right < m && heap[right] < heap[child])
            child = right;
        if (heap[child] < last) {
            heap[i] = heap[child];
            i = child;
        } else {
            break;
        }
    }
    if (m > 0)
        heap[i] = last;
    return top;
}

static void push_run(double *keys, int64_t *nodes, int64_t size,
                     double k, int64_t v)
{
    int64_t i = size;
    while (i > 0) {
        int64_t up = (i - 1) >> 1;
        double uk = keys[up];
        int64_t uv = nodes[up];
        if (k < uk || (k == uk && v < uv)) {
            keys[i] = uk;
            nodes[i] = uv;
            i = up;
        } else {
            break;
        }
    }
    keys[i] = k;
    nodes[i] = v;
}

static void pop_run(double *keys, int64_t *nodes, int64_t size,
                    double *out_k, int64_t *out_v)
{
    double top_k = keys[0];
    int64_t top_v = nodes[0];
    int64_t m = size - 1;
    double lk = keys[m];
    int64_t lv = nodes[m];
    int64_t i = 0;
    for (;;) {
        int64_t child = 2 * i + 1;
        int64_t right;
        double ck;
        int64_t cv;
        if (child >= m)
            break;
        right = child + 1;
        if (right < m && (keys[right] < keys[child] ||
                          (keys[right] == keys[child] &&
                           nodes[right] < nodes[child])))
            child = right;
        ck = keys[child];
        cv = nodes[child];
        if (ck < lk || (ck == lk && cv < lv)) {
            keys[i] = ck;
            nodes[i] = cv;
            i = child;
        } else {
            break;
        }
    }
    if (m > 0) {
        keys[i] = lk;
        nodes[i] = lv;
    }
    *out_k = top_k;
    *out_v = top_v;
}

int64_t event_sweep(int64_t n, int64_t p,
                    const int64_t *parent, int64_t *pending,
                    const double *w,
                    const int64_t *rank, const int64_t *byrank,
                    int64_t mode, double cap_eps,
                    const double *alloc, const double *free_on_end,
                    const int64_t *sigma,
                    double *start, double *end_out, int64_t *proc,
                    int64_t *activation, double *mem_trace,
                    int64_t *status, double *finals)
{
    int64_t *ready = malloc((size_t)n * sizeof(int64_t));
    double *run_key = malloc((size_t)n * sizeof(double));
    int64_t *run_node = malloc((size_t)n * sizeof(int64_t));
    int64_t *skipped = malloc((size_t)n * sizeof(int64_t));
    int64_t *free_stack = malloc((size_t)p * sizeof(int64_t));
    int64_t free_count, ready_size, run_size, started, next_sigma, i, q;
    double now, mem;

    if (!ready || !run_key || !run_node || !skipped || !free_stack) {
        status[0] = 4; /* allocation failure */
        status[1] = -1;
        goto done;
    }
    for (q = 0; q < p; q++)
        free_stack[q] = p - 1 - q; /* pop from the tail => proc 0 first */
    free_count = p;
    ready_size = 0;
    for (i = 0; i < n; i++) {
        if (pending[i] == 0)
            push_int(ready, ready_size++, rank[i]);
    }
    run_size = 0;
    now = 0.0;
    mem = 0.0;
    started = 0;
    next_sigma = 0;
    for (;;) {
        /* start every task the policy allows on the idle processors */
        while (free_count > 0 && ready_size > 0) {
            int64_t node;
            double t_end;
            if (mode == 0) {
                node = byrank[pop_int(ready, ready_size--)];
            } else if (mode == 1) {
                int64_t r;
                node = sigma[next_sigma];
                if (pending[node] > 0 || mem + alloc[node] > cap_eps)
                    break;
                r = pop_int(ready, ready_size--);
                if (r != rank[node]) {
                    status[0] = 2;
                    status[1] = node;
                    goto done;
                }
            } else {
                int64_t nskip = 0, k;
                node = -1;
                while (ready_size > 0) {
                    int64_t r = pop_int(ready, ready_size--);
                    int64_t cand = byrank[r];
                    if (mem + alloc[cand] <= cap_eps) {
                        node = cand;
                        break;
                    }
                    skipped[nskip++] = r;
                }
                for (k = 0; k < nskip; k++)
                    push_int(ready, ready_size++, skipped[k]);
                if (node < 0)
                    break;
            }
            q = free_stack[--free_count];
            start[node] = now;
            proc[node] = q;
            t_end = now + w[node];
            end_out[node] = t_end;
            push_run(run_key, run_node, run_size++, t_end, node);
            mem += alloc[node];
            activation[started] = node;
            mem_trace[started] = mem;
            started++;
            if (mode != 0) {
                while (next_sigma < n && start[sigma[next_sigma]] >= 0.0)
                    next_sigma++;
            }
        }
        if (run_size == 0) {
            if (started >= n)
                break;
            if (mode != 0) {
                status[0] = 1;
                status[1] = sigma[next_sigma];
                finals[0] = now;
                finals[1] = mem;
                goto done;
            }
            status[0] = 3; /* deadlock (defensive) */
            status[1] = -1;
            goto done;
        }
        /* advance to the next completion event; apply every completion
         * at that instant before assigning again */
        {
            int64_t node;
            pop_run(run_key, run_node, run_size--, &now, &node);
            for (;;) {
                int64_t par;
                free_stack[free_count++] = proc[node];
                mem -= free_on_end[node];
                par = parent[node];
                if (par >= 0) {
                    if (pending[par] == 1) {
                        pending[par] = 0;
                        push_int(ready, ready_size++, rank[par]);
                    } else {
                        pending[par]--;
                    }
                }
                if (run_size == 0)
                    break;
                if (run_key[0] == now) {
                    double ignored;
                    pop_run(run_key, run_node, run_size--, &ignored, &node);
                } else {
                    break;
                }
            }
        }
    }
    status[0] = 0;
    status[1] = n;
    finals[0] = now;
    finals[1] = mem;
done:
    free(ready);
    free(run_key);
    free(run_node);
    free(skipped);
    free(free_stack);
    return status[0];
}
"""

_F64 = ndpointer(dtype=np.float64, flags=("C_CONTIGUOUS",))
_I64 = ndpointer(dtype=np.int64, flags=("C_CONTIGUOUS",))

#: tri-state build cache: None = not attempted, else (fn-or-None, reason)
_BUILD: tuple | None = None


def cache_dir() -> str:
    """Directory holding the compiled kernel shared libraries."""
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(xdg, "repro-trees")


def _compile() -> tuple:
    """Build (or reuse) the shared library; returns ``(fn, reason)``."""
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None:
        return None, "no C compiler (cc/gcc/clang) on PATH"
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    directory = cache_dir()
    lib_path = os.path.join(directory, f"event_sweep_{digest}.so")
    if not os.path.exists(lib_path):
        tmp_lib = None
        try:
            os.makedirs(directory, exist_ok=True)
            src_path = os.path.join(directory, f"event_sweep_{digest}.c")
            with open(src_path, "w") as fh:
                fh.write(_SOURCE)
            fd, tmp_lib = tempfile.mkstemp(suffix=".so", dir=directory)
            os.close(fd)
            cmd = [cc, "-O3", "-shared", "-fPIC", "-o", tmp_lib, src_path]
            proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
            if proc.returncode != 0:
                detail = (proc.stderr or proc.stdout).strip().splitlines()
                return None, f"{cc} failed: {detail[-1] if detail else 'unknown error'}"
            os.replace(tmp_lib, lib_path)  # atomic: racers converge
            tmp_lib = None
        except (OSError, subprocess.SubprocessError) as exc:
            # a hung or broken toolchain must degrade to "unavailable",
            # never crash engine construction out of backend="auto"
            return None, f"kernel build failed: {exc}"
        finally:
            if tmp_lib is not None:
                try:
                    os.unlink(tmp_lib)
                except OSError:
                    pass
    try:
        lib = ctypes.CDLL(lib_path)
    except OSError as exc:  # pragma: no cover - corrupt cache entry
        return None, f"could not load {lib_path}: {exc}"
    fn = lib.event_sweep
    fn.restype = ctypes.c_int64
    fn.argtypes = [
        ctypes.c_int64,  # n
        ctypes.c_int64,  # p
        _I64,  # parent
        _I64,  # pending (mutated)
        _F64,  # w
        _I64,  # rank
        _I64,  # byrank
        ctypes.c_int64,  # mode
        ctypes.c_double,  # cap_eps
        _F64,  # alloc
        _F64,  # free_on_end
        _I64,  # sigma
        _F64,  # start
        _F64,  # end_out
        _I64,  # proc
        _I64,  # activation
        _F64,  # mem_trace
        _I64,  # status
        _F64,  # finals
    ]
    return fn, ""


def _ensure_built() -> tuple:
    global _BUILD
    if _BUILD is None:
        _BUILD = _compile()
    return _BUILD


def available() -> bool:
    """True when the C kernel compiled (or was already cached) and loaded."""
    return _ensure_built()[0] is not None


def unavailable_reason() -> str:
    """Why :func:`available` is False (empty string when available)."""
    return _ensure_built()[1]


def kernel(
    parent,
    pending,
    w,
    rank,
    byrank,
    p,
    mode,
    cap_eps,
    alloc,
    free_on_end,
    sigma,
    start,
    end_out,
    proc,
    activation,
    mem_trace,
    status,
    finals,
):
    """Invoke the C kernel with the spec's argument order (see _sweep)."""
    fn, reason = _ensure_built()
    if fn is None:  # pragma: no cover - callers check available() first
        raise RuntimeError(f"C kernel unavailable: {reason}")
    fn(
        parent.shape[0],
        p,
        parent,
        pending,
        w,
        rank,
        byrank,
        mode,
        cap_eps,
        alloc,
        free_on_end,
        sigma,
        start,
        end_out,
        proc,
        activation,
        mem_trace,
        status,
        finals,
    )
