"""Out-of-core execution model: what happens when memory is too small.

The paper's introduction motivates memory minimisation by what happens
otherwise: "an application which, depending on the way it is scheduled,
will either fit in the memory, or will require the use of swap
mechanisms or out-of-core techniques". This module quantifies that
penalty: given a schedule and a physical memory size, it simulates the
file traffic of an out-of-core execution and reports the I/O volume and
the induced slowdown.

Model
-----
Resident files are spilled to disk when an allocation would exceed the
physical memory, in *largest-first* order among files not used by
currently-running tasks (evicting the biggest files minimises eviction
count; inputs of running tasks are pinned). A spilled file must be read
back before the task consuming it starts. Every byte written or read
costs ``1 / bandwidth`` time units, added to the makespan as a serial
I/O phase (single shared disk, the pessimistic model of multifrontal
out-of-core studies).

The point of the model is comparative, not absolute: scheduling with a
memory-oblivious heuristic under a small memory turns into massive
spill traffic, while a memory-aware schedule stays in core -- the
quantitative version of the paper's opening argument, exercised in
``examples/`` and the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .schedule import Schedule
from .tree import NO_PARENT

__all__ = ["OutOfCoreResult", "simulate_out_of_core"]


@dataclass(frozen=True)
class OutOfCoreResult:
    """Outcome of an out-of-core simulation.

    Attributes
    ----------
    io_volume:
        total bytes written to and read back from disk, including
        thrashing traffic.
    spill_events:
        number of file evictions.
    thrash_volume:
        bytes of *unavoidable* oversubscription: when the pinned working
        sets of concurrently running tasks exceed the memory, the excess
        is charged as swap traffic (written and read back, i.e. twice in
        ``io_volume``) -- the "swap mechanisms" of the paper's
        introduction.
    effective_makespan:
        the schedule's makespan plus the serial I/O time
        ``io_volume / bandwidth``.
    fits_in_core:
        True iff no spill or thrash was needed (peak <= memory).
    """

    io_volume: float
    spill_events: int
    thrash_volume: float
    effective_makespan: float
    fits_in_core: bool


def simulate_out_of_core(
    schedule: Schedule, memory: float, bandwidth: float = 1.0
) -> OutOfCoreResult:
    """Simulate the schedule under a physical memory of size ``memory``.

    Raises ``ValueError`` if a single task's working set
    (inputs + program + output) exceeds the memory: no eviction policy
    can execute it, mirroring the model's hard requirement that a task's
    files fit in memory simultaneously.
    """
    tree = schedule.tree
    n = tree.n
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    working_sets = tree.processing_memories()
    if np.any(working_sets > memory + 1e-9):
        i = int(np.flatnonzero(working_sets > memory + 1e-9)[0])
        raise ValueError(
            f"task {i} needs {working_sets[i]:g} > memory {memory:g}; "
            "no out-of-core policy can run it"
        )

    start = schedule.start
    end = schedule.end
    # Events: (time, kind, node); kind 0 = completion, 1 = start.
    events: list[tuple[float, int, int]] = []
    for i in range(n):
        events.append((float(start[i]), 1, i))
        events.append((float(end[i]), 0, i))
    events.sort()

    resident: dict[int, float] = {}  # file owner -> size, in memory
    spilled: set[int] = set()  # file owners currently on disk
    running: set[int] = set()
    mem_used = 0.0
    io_volume = 0.0
    spills = 0
    thrash_volume = 0.0

    def pinned() -> set[int]:
        """Files that running tasks are actively reading (not evictable)."""
        pins: set[int] = set()
        for t in running:
            pins.update(tree.children(t))
        return pins

    def make_room(amount: float) -> None:
        nonlocal mem_used, io_volume, spills, thrash_volume
        if mem_used + amount <= memory + 1e-9:
            return
        pins = pinned()
        evictable = sorted(
            (f for f in resident if f not in pins),
            key=lambda f: resident[f],
            reverse=True,
        )
        for f in evictable:
            if mem_used + amount <= memory + 1e-9:
                break
            size = resident.pop(f)
            mem_used -= size
            spilled.add(f)
            io_volume += size  # write-out
            spills += 1
        overflow = mem_used + amount - memory
        if overflow > 1e-9:
            # The pinned working sets of concurrently running tasks
            # exceed the memory: no eviction policy helps, the OS swaps.
            # Charge the excess as write+read traffic and proceed.
            thrash_volume += overflow
            io_volume += 2.0 * overflow

    for _, kind, node in events:
        if kind == 1:  # task start
            # Fault in spilled inputs first.
            for c in tree.children(node):
                if c in spilled:
                    spilled.discard(c)
                    size = float(tree.f[c])
                    io_volume += size  # read-back
                    make_room(size)
                    resident[c] = size
                    mem_used += size
            alloc = float(tree.sizes[node] + tree.f[node])
            make_room(alloc)
            mem_used += alloc
            running.add(node)
        else:  # task completion
            running.discard(node)
            mem_used -= float(tree.sizes[node])
            for c in tree.children(node):
                if c in resident:
                    mem_used -= resident.pop(c)
                spilled.discard(c)
            # own output becomes a resident file (already counted in
            # mem_used via the allocation at start)
            resident[node] = float(tree.f[node])
            mem_used -= float(tree.f[node])
            mem_used += resident[node]
            if tree.parent[node] == NO_PARENT:
                pass  # root output stays
    return OutOfCoreResult(
        io_volume=float(io_volume),
        spill_events=spills,
        thrash_volume=float(thrash_volume),
        effective_makespan=float(schedule.makespan + io_volume / bandwidth),
        fits_in_core=spills == 0 and thrash_volume == 0.0,
    )
