"""repro: reproduction of Marchal, Sinnen, Vivien (IPDPS 2013),
"Scheduling tree-shaped task graphs to minimize memory and makespan".

Public API tour
---------------
* :mod:`repro.core` -- task trees, schedules, the unified event-driven
  scheduling engine, the execution simulator, lower bounds;
* :mod:`repro.registry` -- the central algorithm registry
  (``registry.run("ParDeepestFirst", tree, p)``);
* :mod:`repro.sequential` -- memory-optimal sequential traversals
  (optimal postorder, Liu's exact algorithm);
* :mod:`repro.parallel` -- the paper's heuristics (ParSubtrees,
  ParSubtreesOptim, ParInnerFirst, ParDeepestFirst) and the
  memory-capped extension;
* :mod:`repro.pebble` -- Pebble-Game complexity gadgets (Theorems 1-2,
  Figures 1-5);
* :mod:`repro.matrices` -- sparse-matrix substrate: orderings, symbolic
  Cholesky, assembly trees with the paper's weight model;
* :mod:`repro.workloads` -- the experimental data set and random trees;
* :mod:`repro.analysis` -- the Section 6 experiment harness (Table 1,
  Figures 6-8).

Quickstart
----------
>>> from repro.core import TaskTree, simulate
>>> from repro.parallel import par_subtrees
>>> tree = TaskTree.from_parents([-1, 0, 0, 1, 1], w=1.0, f=1.0)
>>> result = simulate(par_subtrees(tree, p=2))
>>> result.makespan > 0
True
"""

__version__ = "1.0.0"

from repro.core import (
    TaskTree,
    Schedule,
    simulate,
    memory_lower_bound,
    makespan_lower_bound,
)
from repro import registry
from repro.sequential import optimal_postorder, liu_optimal_traversal
from repro.parallel import (
    par_subtrees,
    par_subtrees_optim,
    par_inner_first,
    par_deepest_first,
    memory_bounded_schedule,
    HEURISTICS,
)

__all__ = [
    "__version__",
    "registry",
    "TaskTree",
    "Schedule",
    "simulate",
    "memory_lower_bound",
    "makespan_lower_bound",
    "optimal_postorder",
    "liu_optimal_traversal",
    "par_subtrees",
    "par_subtrees_optim",
    "par_inner_first",
    "par_deepest_first",
    "memory_bounded_schedule",
    "HEURISTICS",
]
