"""Bi-objective (makespan, memory) Pareto analysis.

Theorem 2 rules out a single schedule approximating both objectives; in
practice one therefore navigates a *front* of trade-offs -- the four
heuristics plus the capped scheduler swept over budgets. This module
provides the standard multi-objective tooling over
:class:`~repro.analysis.experiments.ScenarioRecord`-like points:
dominance tests, Pareto-front extraction, and the 2-D hypervolume
indicator used to compare fronts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["ParetoPoint", "dominates", "pareto_front", "hypervolume"]


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate schedule in the (makespan, memory) plane."""

    makespan: float
    memory: float
    label: str = ""


def dominates(a: ParetoPoint, b: ParetoPoint, tol: float = 0.0) -> bool:
    """True iff ``a`` weakly dominates ``b`` and is strictly better in at
    least one objective (both objectives are minimised)."""
    no_worse = a.makespan <= b.makespan + tol and a.memory <= b.memory + tol
    better = a.makespan < b.makespan - tol or a.memory < b.memory - tol
    return no_worse and better


def pareto_front(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """Non-dominated subset, sorted by increasing makespan.

    Duplicate coordinates are collapsed to one representative. O(n log n)
    via the sweep over makespan-sorted points.
    """
    pts = sorted(set((p.makespan, p.memory, p.label) for p in points))
    front: list[ParetoPoint] = []
    best_memory = float("inf")
    for makespan, memory, label in pts:
        if memory < best_memory:
            front.append(ParetoPoint(makespan, memory, label))
            best_memory = memory
    return front


def hypervolume(
    points: Sequence[ParetoPoint], reference: ParetoPoint
) -> float:
    """2-D hypervolume dominated by ``points`` w.r.t. ``reference``.

    The reference must be weakly worse than every point in both
    objectives; points beyond it contribute nothing. Larger is better.
    """
    front = [
        p
        for p in pareto_front(points)
        if p.makespan <= reference.makespan and p.memory <= reference.memory
    ]
    # front is sorted by increasing makespan with strictly decreasing
    # memory; point i dominates the rectangle
    # [makespan_i, makespan_{i+1}) x [memory_i, reference.memory),
    # where the last right boundary is the reference itself.
    volume = 0.0
    for i, p in enumerate(front):
        right = front[i + 1].makespan if i + 1 < len(front) else reference.makespan
        volume += (right - p.makespan) * (reference.memory - p.memory)
    return volume
