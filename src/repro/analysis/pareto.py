"""Bi-objective (makespan, memory) Pareto analysis.

Theorem 2 rules out a single schedule approximating both objectives; in
practice one therefore navigates a *front* of trade-offs -- the four
heuristics plus the capped scheduler swept over budgets. This module
provides the standard multi-objective tooling over
:class:`~repro.analysis.experiments.ScenarioRecord`-like points:
dominance tests, Pareto-front extraction, and the 2-D hypervolume
indicator used to compare fronts.

Two APIs, one semantics: the :class:`ParetoPoint` functions for small
hand-built fronts, and the ``*_columns`` fast paths
(:func:`pareto_front_columns`, :func:`hypervolume_columns`) operating
directly on (makespan, memory) column arrays from a record store --
one ``np.lexsort`` plus a running-minimum scan instead of a Python
sweep, which is what makes million-record fronts interactive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ParetoPoint",
    "dominates",
    "pareto_front",
    "pareto_front_columns",
    "hypervolume",
    "hypervolume_columns",
]


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate schedule in the (makespan, memory) plane."""

    makespan: float
    memory: float
    label: str = ""


def dominates(a: ParetoPoint, b: ParetoPoint, tol: float = 0.0) -> bool:
    """True iff ``a`` weakly dominates ``b`` and is strictly better in at
    least one objective (both objectives are minimised)."""
    no_worse = a.makespan <= b.makespan + tol and a.memory <= b.memory + tol
    better = a.makespan < b.makespan - tol or a.memory < b.memory - tol
    return no_worse and better


def pareto_front(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """Non-dominated subset, sorted by increasing makespan.

    Duplicate coordinates are collapsed to one representative. O(n log n)
    via the sweep over makespan-sorted points.
    """
    pts = sorted(set((p.makespan, p.memory, p.label) for p in points))
    front: list[ParetoPoint] = []
    best_memory = float("inf")
    for makespan, memory, label in pts:
        if memory < best_memory:
            front.append(ParetoPoint(makespan, memory, label))
            best_memory = memory
    return front


def pareto_front_columns(makespan, memory) -> np.ndarray:
    """Indices of the non-dominated rows of two parallel columns.

    The vectorised twin of :func:`pareto_front`: the returned indices
    select the front in increasing-makespan order, one representative
    per coordinate pair (ties resolved to the lowest index). Feed it
    :class:`~repro.analysis.store.RecordColumns` columns directly::

        idx = pareto_front_columns(cols.makespan, cols.memory)
        front_labels = cols.heuristic[idx]
    """
    mk = np.asarray(makespan, np.float64)
    mem = np.asarray(memory, np.float64)
    if mk.shape != mem.shape or mk.ndim != 1:
        raise ValueError("makespan and memory must be 1-D arrays of equal length")
    if len(mk) == 0:
        return np.empty(0, np.int64)
    order = np.lexsort((mem, mk))
    m = mem[order]
    running = np.minimum.accumulate(m)
    keep = np.empty(len(m), bool)
    keep[0] = True
    # strictly below the best memory of every earlier (<= makespan) point
    keep[1:] = m[1:] < running[:-1]
    return order[keep]


def _check_reference(mk, mem, ref_mk: float, ref_mem: float, n_bad: int) -> None:
    if n_bad:
        raise ValueError(
            f"hypervolume reference ({ref_mk:g}, {ref_mem:g}) must be weakly "
            f"worse than every point in both objectives; {n_bad} point(s) "
            "exceed it (their dominated volume would be negative garbage). "
            "Filter the points or move the reference."
        )


def hypervolume(points: Sequence[ParetoPoint], reference: ParetoPoint) -> float:
    """2-D hypervolume dominated by ``points`` w.r.t. ``reference``.

    The reference must be weakly worse than every point in both
    objectives -- a point beyond it would contribute a *negative*
    rectangle, silently corrupting comparisons, so it raises
    ``ValueError`` instead. Larger is better.
    """
    n_bad = sum(
        1
        for p in points
        if p.makespan > reference.makespan or p.memory > reference.memory
    )
    _check_reference(None, None, reference.makespan, reference.memory, n_bad)
    front = pareto_front(points)
    # front is sorted by increasing makespan with strictly decreasing
    # memory; point i dominates the rectangle
    # [makespan_i, makespan_{i+1}) x [memory_i, reference.memory),
    # where the last right boundary is the reference itself.
    volume = 0.0
    for i, p in enumerate(front):
        right = front[i + 1].makespan if i + 1 < len(front) else reference.makespan
        volume += (right - p.makespan) * (reference.memory - p.memory)
    return volume


def hypervolume_columns(makespan, memory, reference: "ParetoPoint | tuple") -> float:
    """Vectorised :func:`hypervolume` over column arrays.

    Same precondition (``ValueError`` when the reference is not weakly
    worse than every point) and the same rectangles; the summation runs
    as one numpy dot instead of a Python loop, so the value can differ
    from the scalar loop by float summation order (documented tolerance:
    the golden test compares at ``rtol=1e-12``).
    """
    ref_mk, ref_mem = (
        (reference.makespan, reference.memory)
        if isinstance(reference, ParetoPoint)
        else (float(reference[0]), float(reference[1]))
    )
    mk = np.asarray(makespan, np.float64)
    mem = np.asarray(memory, np.float64)
    n_bad = int(np.count_nonzero((mk > ref_mk) | (mem > ref_mem)))
    _check_reference(mk, mem, ref_mk, ref_mem, n_bad)
    idx = pareto_front_columns(mk, mem)
    if len(idx) == 0:
        return 0.0
    fmk = mk[idx]
    fmem = mem[idx]
    rights = np.empty_like(fmk)
    rights[:-1] = fmk[1:]
    rights[-1] = ref_mk
    return float(np.sum((rights - fmk) * (ref_mem - fmem)))
