"""Statistics over scenario records: the quantities of Table 1.

For every scenario (tree, p) the per-heuristic results are compared:

* **best memory / best makespan** -- fraction of scenarios where the
  heuristic attains the scenario minimum (ties count for all tied);
* **within 5% of best** -- fraction where it is within a factor 1.05 of
  the scenario best;
* **average deviation from optimal (seq.) memory** -- mean of
  ``memory / memory_lb - 1`` in percent (133% in the paper means 2.33x
  the sequential memory);
* **average deviation from best makespan** -- mean of
  ``makespan / best_makespan - 1`` in percent.

The computation is **vectorised over record columns**
(:class:`~repro.analysis.store.RecordColumns`): scenarios and
heuristics become integer group ids (ranked by first appearance, the
historical dict order), per-scenario minima come from
``np.minimum.at``, hit counts from ``np.bincount``, and the per-
heuristic deviation means from one ``np.lexsort`` that reproduces the
reference loop's accumulation order exactly -- so the results are
**bit-identical** to the per-record loop (kept as
:func:`compute_table1_stats_reference` and pinned by a golden test),
while running ~2 orders of magnitude faster at 1e6 records. Plain
record lists are converted on entry; columns loaded straight from a
columnar store skip the conversion entirely.

:func:`group_stats` is the campaign-scale groupby: per
(algorithm, n, p, cap) cell -- the cap parsed from ``name@capF``
labels -- it reports scenario counts and mean/max normalised ratios,
feeding the regime tables of ``tables.py`` / ``report.py``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from .experiments import ScenarioRecord
from .store import RecordColumns

__all__ = [
    "HeuristicStats",
    "GroupStats",
    "compute_table1_stats",
    "compute_table1_stats_reference",
    "group_by_scenario",
    "group_stats",
]

_REL_TOL = 1e-9

Records = Union[Sequence[ScenarioRecord], RecordColumns]


@dataclass(frozen=True)
class HeuristicStats:
    """One row of Table 1."""

    heuristic: str
    best_memory: float
    within5_memory: float
    avg_dev_seq_memory: float
    best_makespan: float
    within5_makespan: float
    avg_dev_best_makespan: float
    scenarios: int


@dataclass(frozen=True)
class GroupStats:
    """One (algorithm, n, p, cap) cell of the campaign groupby."""

    algorithm: str
    n: int
    p: int
    cap: float | None
    count: int
    mean_makespan_ratio: float
    mean_memory_ratio: float
    max_makespan_ratio: float
    max_memory_ratio: float


def group_by_scenario(
    records: Sequence[ScenarioRecord],
) -> dict[tuple[str, int], list[ScenarioRecord]]:
    """Group records by (tree, p) scenario."""
    groups: dict[tuple[str, int], list[ScenarioRecord]] = defaultdict(list)
    for r in records:
        groups[(r.tree, r.p)].append(r)
    return dict(groups)


def _as_columns(records: Records) -> RecordColumns:
    if isinstance(records, RecordColumns):
        cols = records
    else:
        cols = RecordColumns.from_records(records)
    if cols.failed.any():
        raise ValueError(
            "failed records cannot enter the statistics; "
            "filter them out (columns.measured()) first"
        )
    return cols


def _first_appearance_ids(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Group ids ranked by **first appearance** along ``keys`` (the
    insertion order a per-record dict would have), plus the unique key
    values in that order: ``(ids, uniques)`` with
    ``uniques[ids] == keys``."""
    uniq, first, inverse = np.unique(keys, return_index=True, return_inverse=True)
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(uniq), np.int64)
    rank[order] = np.arange(len(uniq))
    return rank[inverse], uniq[order]


def _scenario_ids(cols: RecordColumns) -> tuple[np.ndarray, int]:
    """First-appearance group ids of the (tree, p) scenario key.

    The only string sort is the tree-name factorisation; the (tree, p)
    pair then reduces to one integer per record (a bijection, so the
    grouping -- and the first-appearance ranking -- is identical to
    uniquifying the pairs directly, at a fraction of the cost)."""
    _, t_inv = np.unique(cols.tree, return_inverse=True)
    pu, p_inv = np.unique(cols.p, return_inverse=True)
    ids, uniq = _first_appearance_ids(t_inv * len(pu) + p_inv)
    return ids, len(uniq)


def compute_table1_stats(records: Records) -> list[HeuristicStats]:
    """Compute the Table 1 rows from a record set (list or columns).

    Heuristics are reported in the paper's order when present.
    Bit-identical to :func:`compute_table1_stats_reference` for any
    input (golden-tested), at array speed.
    """
    cols = _as_columns(records)
    m = len(cols)
    if m == 0:
        return []
    heur_id, names = _first_appearance_ids(cols.heuristic)
    n_heur = len(names)
    scen_id, n_scen = _scenario_ids(cols)
    sizes = np.bincount(scen_id, minlength=n_scen)
    if not np.all(sizes == n_heur):
        raise ValueError("incomplete scenario: every heuristic must be present")

    best_mem = np.full(n_scen, np.inf)
    np.minimum.at(best_mem, scen_id, cols.memory)
    best_mk = np.full(n_scen, np.inf)
    np.minimum.at(best_mk, scen_id, cols.makespan)

    # identical scalar expressions to the reference loop, elementwise
    hit_best_mem = cols.memory <= best_mem[scen_id] * (1 + _REL_TOL)
    hit_w5_mem = cols.memory <= best_mem[scen_id] * 1.05
    hit_best_mk = cols.makespan <= best_mk[scen_id] * (1 + _REL_TOL)
    hit_w5_mk = cols.makespan <= best_mk[scen_id] * 1.05
    dev_mem = cols.memory / cols.memory_lb - 1.0
    dev_mk = cols.makespan / best_mk[scen_id] - 1.0

    def hits(mask: np.ndarray) -> np.ndarray:
        return np.bincount(heur_id[mask], minlength=n_heur)

    counts = (hits(hit_best_mem), hits(hit_w5_mem), hits(hit_best_mk), hits(hit_w5_mk))

    # The reference loop appends each heuristic's deviations group by
    # group (groups in first-appearance order, records in stream order
    # within a group) and takes np.mean of that list. Sorting by
    # (heuristic, scenario rank, stream position) makes each
    # heuristic's slice exactly that list, so np.mean over the
    # contiguous slice performs the identical pairwise summation.
    order = np.lexsort((np.arange(m), scen_id, heur_id))
    dev_mem_sorted = dev_mem[order]
    dev_mk_sorted = dev_mk[order]
    starts = np.concatenate(([0], np.cumsum(np.bincount(heur_id, minlength=n_heur))))

    stats = []
    for h, name in enumerate(names):
        a, b = starts[h], starts[h + 1]
        stats.append(
            HeuristicStats(
                heuristic=str(name),
                best_memory=100.0 * int(counts[0][h]) / n_scen,
                within5_memory=100.0 * int(counts[1][h]) / n_scen,
                avg_dev_seq_memory=100.0 * float(np.mean(dev_mem_sorted[a:b])),
                best_makespan=100.0 * int(counts[2][h]) / n_scen,
                within5_makespan=100.0 * int(counts[3][h]) / n_scen,
                avg_dev_best_makespan=100.0 * float(np.mean(dev_mk_sorted[a:b])),
                scenarios=n_scen,
            )
        )
    return stats


def compute_table1_stats_reference(
    records: Sequence[ScenarioRecord],
) -> list[HeuristicStats]:
    """The historical per-record loop (the exactness oracle of
    :func:`compute_table1_stats`; quadratic-ish and list-bound, kept
    for the golden equality test and as executable documentation)."""
    groups = group_by_scenario(records)
    names: list[str] = []
    for r in records:
        if r.heuristic not in names:
            names.append(r.heuristic)
    best_mem_hits = defaultdict(int)
    within5_mem_hits = defaultdict(int)
    best_mk_hits = defaultdict(int)
    within5_mk_hits = defaultdict(int)
    dev_mem = defaultdict(list)
    dev_mk = defaultdict(list)
    n_scen = 0
    for recs in groups.values():
        if len(recs) != len(names):
            raise ValueError("incomplete scenario: every heuristic must be present")
        n_scen += 1
        best_mem = min(r.memory for r in recs)
        best_mk = min(r.makespan for r in recs)
        for r in recs:
            if r.memory <= best_mem * (1 + _REL_TOL):
                best_mem_hits[r.heuristic] += 1
            if r.memory <= best_mem * 1.05:
                within5_mem_hits[r.heuristic] += 1
            if r.makespan <= best_mk * (1 + _REL_TOL):
                best_mk_hits[r.heuristic] += 1
            if r.makespan <= best_mk * 1.05:
                within5_mk_hits[r.heuristic] += 1
            dev_mem[r.heuristic].append(r.memory / r.memory_lb - 1.0)
            dev_mk[r.heuristic].append(r.makespan / best_mk - 1.0)
    stats = []
    for name in names:
        stats.append(
            HeuristicStats(
                heuristic=name,
                best_memory=100.0 * best_mem_hits[name] / n_scen,
                within5_memory=100.0 * within5_mem_hits[name] / n_scen,
                avg_dev_seq_memory=100.0 * float(np.mean(dev_mem[name])),
                best_makespan=100.0 * best_mk_hits[name] / n_scen,
                within5_makespan=100.0 * within5_mk_hits[name] / n_scen,
                avg_dev_best_makespan=100.0 * float(np.mean(dev_mk[name])),
                scenarios=n_scen,
            )
        )
    return stats


def split_label(label: str) -> tuple[str, float | None]:
    """``"MemoryBounded@cap1.5" -> ("MemoryBounded", 1.5)``; plain
    algorithm labels carry no cap."""
    if "@cap" in label:
        name, _, cap = label.rpartition("@cap")
        try:
            return name, float(cap)
        except ValueError:
            pass
    return label, None


def group_stats(records: Records) -> list[GroupStats]:
    """Campaign groupby: one row per (algorithm, n, p, cap) cell.

    Fully vectorised over columns: the normalised ratios
    (``memory / memory_lb``, ``makespan / makespan_lb``) are computed
    once for the whole stream, cells become integer group ids, and the
    per-cell count/mean/max reduce with ``np.bincount`` /
    ``np.maximum.at``. Rows are ordered by (algorithm, cap, n, p).
    """
    cols = _as_columns(records)
    if len(cols) == 0:
        return []
    labels, label_names = _first_appearance_ids(cols.heuristic)
    # distinct labels can parse to the same (algorithm, cap) cell
    # ("A@cap1.5" / "A@cap1.50"); dedupe at the label level, so the
    # per-record work below stays purely integer
    parsed = [split_label(str(name)) for name in label_names]
    cells: dict[tuple[str, float], int] = {}
    cell_of_label = np.empty(len(parsed), np.int64)
    for k, (algo, cap) in enumerate(parsed):
        cell = (algo, -np.inf if cap is None else cap)
        cell_of_label[k] = cells.setdefault(cell, len(cells))
    cell_names = list(cells)

    # factorise (cell, n, p) into one integer per record: only the
    # label column was a string, and it is already integer ids
    nu, n_inv = np.unique(cols.n, return_inverse=True)
    pu, p_inv = np.unique(cols.p, return_inverse=True)
    combined = (cell_of_label[labels] * len(nu) + n_inv) * len(pu) + p_inv
    uniq, gid = np.unique(combined, return_inverse=True)
    n_groups = len(uniq)

    mk_ratio = cols.makespan_ratio()
    mem_ratio = cols.memory_ratio()
    count = np.bincount(gid, minlength=n_groups)
    sum_mk = np.bincount(gid, weights=mk_ratio, minlength=n_groups)
    sum_mem = np.bincount(gid, weights=mem_ratio, minlength=n_groups)
    max_mk = np.full(n_groups, -np.inf)
    np.maximum.at(max_mk, gid, mk_ratio)
    max_mem = np.full(n_groups, -np.inf)
    np.maximum.at(max_mem, gid, mem_ratio)

    out = []
    for g in range(n_groups):
        code = int(uniq[g])
        code, p_id = divmod(code, len(pu))
        cell_id, n_id = divmod(code, len(nu))
        algo, cap = cell_names[cell_id]
        out.append(
            GroupStats(
                algorithm=algo,
                n=int(nu[n_id]),
                p=int(pu[p_id]),
                cap=None if cap == -np.inf else float(cap),
                count=int(count[g]),
                mean_makespan_ratio=float(sum_mk[g] / count[g]),
                mean_memory_ratio=float(sum_mem[g] / count[g]),
                max_makespan_ratio=float(max_mk[g]),
                max_memory_ratio=float(max_mem[g]),
            )
        )
    # rows ordered by (algorithm, cap, n, p), capless cells first
    out.sort(
        key=lambda s: (s.algorithm, -np.inf if s.cap is None else s.cap, s.n, s.p)
    )
    return out
