"""Statistics over scenario records: the quantities of Table 1.

For every scenario (tree, p) the per-heuristic results are compared:

* **best memory / best makespan** -- fraction of scenarios where the
  heuristic attains the scenario minimum (ties count for all tied);
* **within 5% of best** -- fraction where it is within a factor 1.05 of
  the scenario best;
* **average deviation from optimal (seq.) memory** -- mean of
  ``memory / memory_lb - 1`` in percent (133% in the paper means 2.33x
  the sequential memory);
* **average deviation from best makespan** -- mean of
  ``makespan / best_makespan - 1`` in percent.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .experiments import ScenarioRecord

__all__ = ["HeuristicStats", "compute_table1_stats", "group_by_scenario"]

_REL_TOL = 1e-9


@dataclass(frozen=True)
class HeuristicStats:
    """One row of Table 1."""

    heuristic: str
    best_memory: float
    within5_memory: float
    avg_dev_seq_memory: float
    best_makespan: float
    within5_makespan: float
    avg_dev_best_makespan: float
    scenarios: int


def group_by_scenario(
    records: Sequence[ScenarioRecord],
) -> dict[tuple[str, int], list[ScenarioRecord]]:
    """Group records by (tree, p) scenario."""
    groups: dict[tuple[str, int], list[ScenarioRecord]] = defaultdict(list)
    for r in records:
        groups[(r.tree, r.p)].append(r)
    return dict(groups)


def compute_table1_stats(records: Sequence[ScenarioRecord]) -> list[HeuristicStats]:
    """Compute the Table 1 rows from a record set.

    Heuristics are reported in the paper's order when present.
    """
    groups = group_by_scenario(records)
    names: list[str] = []
    for r in records:
        if r.heuristic not in names:
            names.append(r.heuristic)
    best_mem_hits = defaultdict(int)
    within5_mem_hits = defaultdict(int)
    best_mk_hits = defaultdict(int)
    within5_mk_hits = defaultdict(int)
    dev_mem = defaultdict(list)
    dev_mk = defaultdict(list)
    n_scen = 0
    for recs in groups.values():
        if len(recs) != len(names):
            raise ValueError("incomplete scenario: every heuristic must be present")
        n_scen += 1
        best_mem = min(r.memory for r in recs)
        best_mk = min(r.makespan for r in recs)
        for r in recs:
            if r.memory <= best_mem * (1 + _REL_TOL):
                best_mem_hits[r.heuristic] += 1
            if r.memory <= best_mem * 1.05:
                within5_mem_hits[r.heuristic] += 1
            if r.makespan <= best_mk * (1 + _REL_TOL):
                best_mk_hits[r.heuristic] += 1
            if r.makespan <= best_mk * 1.05:
                within5_mk_hits[r.heuristic] += 1
            dev_mem[r.heuristic].append(r.memory / r.memory_lb - 1.0)
            dev_mk[r.heuristic].append(r.makespan / best_mk - 1.0)
    stats = []
    for name in names:
        stats.append(
            HeuristicStats(
                heuristic=name,
                best_memory=100.0 * best_mem_hits[name] / n_scen,
                within5_memory=100.0 * within5_mem_hits[name] / n_scen,
                avg_dev_seq_memory=100.0 * float(np.mean(dev_mem[name])),
                best_makespan=100.0 * best_mk_hits[name] / n_scen,
                within5_makespan=100.0 * within5_mk_hits[name] / n_scen,
                avg_dev_best_makespan=100.0 * float(np.mean(dev_mk[name])),
                scenarios=n_scen,
            )
        )
    return stats
