"""Record stores: pluggable persistence behind ``save_records``/``load_records``.

Campaign output has always been flat JSONL -- perfect for crash-safe
streaming (append one line per record, flush, fsync), terrible for
million-record analysis (every consumer re-parses and loops per
record). This module puts a small :class:`RecordStore` abstraction
behind the existing contract with three backends:

* :class:`JsonlStore` -- the historical format, byte-for-byte unchanged
  (appends delegate to :func:`~repro.analysis.experiments.save_records`,
  so fault injection, flush/fsync ordering and torn-tail recovery are
  literally the same code path);
* :class:`ColumnarStore` -- a directory of immutable npz **segment**
  files (one numpy array per column) plus a small JSON ``manifest.json``
  and an open JSONL **tail**. Appends stream to the tail exactly like
  the JSONL backend (same per-record flush, same fault seam); once the
  tail reaches ``seal_rows`` records it is *sealed*: parsed once,
  written as one columnar segment, and the manifest is atomically
  flipped. Analysis then loads columns with ``np.load`` instead of a
  million ``json.loads`` calls;
* :class:`ParquetStore` -- the same layout with parquet segments, for
  interop with dataframe tooling. Import-guarded: ``pyarrow`` is an
  optional extra (``pip install '.[columnar]'``) and every other
  backend works without it, mirroring the numba story.

Crash-safety of the columnar backend (the resume contract of
:func:`repro.analysis.campaign.run_campaign` must hold verbatim):

* tail appends write ``record + "\\n"`` in one buffer and flush per
  record, so crash residue is exactly one unterminated final line --
  recovery drops it, identical to the JSONL rules;
* sealing first publishes the segment file (temp + atomic rename),
  then atomically rewrites the manifest referencing it **and** bumping
  the tail generation (``tail-<gen>.jsonl``), then creates the new
  empty tail and unlinks the old one. The manifest write is the single
  commit point: a crash on either side leaves a consistent store, and
  unreferenced segment/tail files are garbage-collected on the next
  ``reset``/``seal``/``truncate``;
* ``truncate(k)`` (what resume and ``--retry-failed`` use) keeps the
  first ``k`` records exactly, slicing a sealed segment when the cut
  lands inside one.

Shard files from distributed runs merge with :func:`merge_stores`
(CLI: ``repro merge``); any store converts to any other with
:func:`pack_store` (CLI: ``repro pack``), which is also how the tests
prove a columnar campaign record-for-record equal to a JSONL one.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.testing import faults

from .experiments import (
    FailedRecord,
    ScenarioRecord,
    _fsync_dir,
    save_records,
)

__all__ = [
    "RecordColumns",
    "RecordStore",
    "JsonlStore",
    "ColumnarStore",
    "ParquetStore",
    "open_store",
    "pack_store",
    "merge_stores",
    "STORE_BACKENDS",
    "DEFAULT_SEAL_ROWS",
]

#: selectable backend names (``auto`` resolves by path / manifest)
STORE_BACKENDS = ("auto", "jsonl", "columnar", "parquet")

#: tail records per columnar segment (override: ``REPRO_STORE_SEAL_ROWS``)
DEFAULT_SEAL_ROWS = 65536

_MANIFEST = "manifest.json"
_FORMAT = "repro-store"

#: single-writer lock file of directory stores (pid-stamped, O_EXCL)
_WRITER_LOCK = ".writer.lock"

#: writer-lock refcounts of this process, keyed by store realpath.
#: Several store objects of one process may write the same directory
#: (their calls are serialized by the caller -- the historical
#: contract); they share the process's on-disk lock, which is unlinked
#: when the last of them releases. The dict also distinguishes "this
#: process holds the lock" from "a dead process with our recycled pid
#: number left it behind" (stale: break it).
_LIVE_LOCKS: dict[str, int] = {}
_LIVE_LOCKS_GUARD = threading.Lock()

#: the record schema, column-major. ``error``/``attempts``/``failed``
#: carry :class:`FailedRecord` rows; metric columns are NaN there (the
#: NaN never reaches a caller -- failed rows materialise as
#: ``FailedRecord``, which has no metric fields).
_STR_COLS = ("tree", "heuristic", "error")
_INT_COLS = ("n", "p", "attempts")
_FLOAT_COLS = ("makespan", "memory", "memory_lb", "makespan_lb")
_ALL_COLS = _STR_COLS + _INT_COLS + _FLOAT_COLS + ("failed",)


def _str_array(values: Sequence[str]) -> np.ndarray:
    arr = np.asarray(list(values), dtype=str)
    if arr.dtype.itemsize == 0:  # np.asarray([], str) -> '<U0', unsavable
        arr = arr.astype("<U1")
    return arr


@dataclass(frozen=True)
class RecordColumns:
    """A record stream as parallel numpy columns (the analysis currency).

    Row order is the stream order -- :class:`FailedRecord` rows keep
    their positions (``failed`` mask), so ``to_records(include_failed=
    True)`` reproduces the interleaving of ``load_records`` exactly.
    """

    tree: np.ndarray
    heuristic: np.ndarray
    error: np.ndarray
    n: np.ndarray
    p: np.ndarray
    attempts: np.ndarray
    makespan: np.ndarray
    memory: np.ndarray
    memory_lb: np.ndarray
    makespan_lb: np.ndarray
    failed: np.ndarray

    def __len__(self) -> int:
        return int(self.tree.shape[0])

    @staticmethod
    def empty() -> "RecordColumns":
        return RecordColumns(
            tree=np.empty(0, "<U1"),
            heuristic=np.empty(0, "<U1"),
            error=np.empty(0, "<U1"),
            n=np.empty(0, np.int64),
            p=np.empty(0, np.int64),
            attempts=np.empty(0, np.int64),
            makespan=np.empty(0, np.float64),
            memory=np.empty(0, np.float64),
            memory_lb=np.empty(0, np.float64),
            makespan_lb=np.empty(0, np.float64),
            failed=np.empty(0, bool),
        )

    @staticmethod
    def from_records(
        records: Iterable[ScenarioRecord | FailedRecord],
    ) -> "RecordColumns":
        return RecordColumns.from_rows(asdict(r) for r in records)

    @staticmethod
    def from_rows(rows: Iterable[dict]) -> "RecordColumns":
        """Build columns from parsed JSON rows (the load fast path)."""
        cols: dict[str, list] = {name: [] for name in _ALL_COLS}
        for row in rows:
            failed = bool(row.get("failed"))
            cols["failed"].append(failed)
            cols["tree"].append(row["tree"])
            cols["heuristic"].append(row["heuristic"])
            cols["n"].append(row["n"])
            cols["p"].append(row["p"])
            cols["error"].append(row.get("error", "") if failed else "")
            cols["attempts"].append(row.get("attempts", 0) if failed else 0)
            for name in _FLOAT_COLS:
                cols[name].append(np.nan if failed else row[name])
        return RecordColumns(
            tree=_str_array(cols["tree"]),
            heuristic=_str_array(cols["heuristic"]),
            error=_str_array(cols["error"]),
            n=np.asarray(cols["n"], np.int64),
            p=np.asarray(cols["p"], np.int64),
            attempts=np.asarray(cols["attempts"], np.int64),
            makespan=np.asarray(cols["makespan"], np.float64),
            memory=np.asarray(cols["memory"], np.float64),
            memory_lb=np.asarray(cols["memory_lb"], np.float64),
            makespan_lb=np.asarray(cols["makespan_lb"], np.float64),
            failed=np.asarray(cols["failed"], bool),
        )

    @staticmethod
    def concat(parts: Sequence["RecordColumns"]) -> "RecordColumns":
        parts = [c for c in parts if len(c)]
        if not parts:
            return RecordColumns.empty()
        if len(parts) == 1:
            return parts[0]
        return RecordColumns(
            **{
                name: np.concatenate([getattr(c, name) for c in parts])
                for name in _ALL_COLS
            }
        )

    def take(self, index) -> "RecordColumns":
        """Rows selected by a boolean mask or integer index array."""
        return RecordColumns(
            **{name: getattr(self, name)[index] for name in _ALL_COLS}
        )

    def measured(self) -> "RecordColumns":
        """The :class:`ScenarioRecord` rows only (failed rows dropped)."""
        if not self.failed.any():
            return self
        return self.take(~self.failed)

    def memory_ratio(self) -> np.ndarray:
        """Vectorised :attr:`ScenarioRecord.memory_ratio` (``inf`` on a
        degenerate zero baseline, like the scalar property)."""
        out = np.full(len(self), np.inf)
        ok = self.memory_lb > 0
        np.divide(self.memory, self.memory_lb, out=out, where=ok)
        return out

    def makespan_ratio(self) -> np.ndarray:
        """Vectorised :attr:`ScenarioRecord.makespan_ratio`."""
        out = np.full(len(self), np.inf)
        ok = self.makespan_lb > 0
        np.divide(self.makespan, self.makespan_lb, out=out, where=ok)
        return out

    def to_records(
        self, include_failed: bool = False
    ) -> list[ScenarioRecord | FailedRecord]:
        out: list[ScenarioRecord | FailedRecord] = []
        for i in range(len(self)):
            if self.failed[i]:
                if include_failed:
                    out.append(
                        FailedRecord(
                            tree=str(self.tree[i]),
                            n=int(self.n[i]),
                            p=int(self.p[i]),
                            heuristic=str(self.heuristic[i]),
                            error=str(self.error[i]),
                            attempts=int(self.attempts[i]),
                        )
                    )
            else:
                out.append(
                    ScenarioRecord(
                        tree=str(self.tree[i]),
                        n=int(self.n[i]),
                        p=int(self.p[i]),
                        heuristic=str(self.heuristic[i]),
                        makespan=float(self.makespan[i]),
                        memory=float(self.memory[i]),
                        memory_lb=float(self.memory_lb[i]),
                        makespan_lb=float(self.makespan_lb[i]),
                    )
                )
        return out

    def arrays(self) -> dict[str, np.ndarray]:
        return {name: getattr(self, name) for name in _ALL_COLS}


def _record_of_row(row: dict) -> ScenarioRecord | FailedRecord:
    return FailedRecord(**row) if row.get("failed") else ScenarioRecord(**row)


def _scan_jsonl(
    path: str, what: str = "file", lenient_tail: bool = False
) -> Iterator[tuple[dict, int]]:
    """Yield ``(row, end_offset)`` per complete JSONL line of ``path``.

    An unterminated final line is crash residue and is dropped -- unless
    ``lenient_tail`` and it parses (hand-written files without a
    trailing newline), matching ``load_records``. A malformed *complete*
    line cannot be crash residue and raises ``ValueError``.
    """
    pos = 0
    last: bytes | None = None
    with open(path, "rb") as fh:
        for raw in fh:
            if not raw.endswith(b"\n"):
                last = raw
                break
            end = pos + len(raw)
            line = raw.strip()
            if line:
                try:
                    row = json.loads(line)
                except ValueError:
                    raise ValueError(
                        f"{path}: malformed record on a complete line "
                        f"(not a truncated tail; the {what} is corrupt)"
                    ) from None
                yield row, end
            pos = end
    if lenient_tail and last is not None and last.strip():
        try:
            row = json.loads(last)
        except ValueError:
            return  # truncated final line: recoverable crash residue
        yield row, pos + len(last)


# ----------------------------------------------------------------------
# the store contract
# ----------------------------------------------------------------------
class RecordStore:
    """One durable, appendable, resumable record stream.

    The contract the campaign runtime relies on:

    * ``append`` is record-atomic under crashes: a record either lands
      completely or leaves droppable residue (never a corrupt store);
    * ``recover`` yields exactly the completely-written records, in
      stream order, with :class:`FailedRecord` rows interleaved;
    * ``truncate(k)`` cuts the stream back to its first ``k`` records
      (dropping any crash residue as well);
    * ``columns`` loads the stream as :class:`RecordColumns`.
    """

    backend = "abstract"

    path: str

    def exists(self) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Create the store empty (truncating any previous content)."""
        raise NotImplementedError

    def append(self, records: Sequence[ScenarioRecord | FailedRecord]) -> None:
        raise NotImplementedError

    def recover(self) -> Iterator[ScenarioRecord | FailedRecord]:
        """Stream the completely-written records (strict: a final line
        without its newline is crash residue and is dropped)."""
        raise NotImplementedError

    def iter_records(
        self, include_failed: bool = False
    ) -> Iterator[ScenarioRecord | FailedRecord]:
        """Stream records with ``load_records`` semantics."""
        for record in self.recover():
            if include_failed or not isinstance(record, FailedRecord):
                yield record

    def truncate(self, keep: int) -> None:
        raise NotImplementedError

    def count(self) -> int:
        return sum(1 for _ in self.recover())

    def columns(self, include_failed: bool = True) -> RecordColumns:
        cols = RecordColumns.from_rows(
            asdict(r) for r in self.recover()
        )
        return cols if include_failed else cols.measured()

    def finalize(self) -> None:
        """Optional end-of-run compaction hook (no-op by default)."""

    def close(self) -> None:
        """Release writer resources, if any (no-op by default)."""


class JsonlStore(RecordStore):
    """The historical single-file JSONL checkpoint, byte-identical."""

    backend = "jsonl"

    def __init__(self, path: str):
        if not str(path).endswith(".jsonl"):
            raise ValueError(
                "stream checkpoint must be a .jsonl path (append-friendly); "
                "directory stores need --store columnar/parquet"
            )
        self.path = str(path)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def reset(self) -> None:
        open(self.path, "w").close()

    def append(self, records: Sequence[ScenarioRecord | FailedRecord]) -> None:
        # the one true JSONL append path (fault seam, flush per record,
        # fsync at the end) -- byte-identity with historical checkpoints
        # is by construction, not by reimplementation.
        save_records(records, self.path, append=True)

    def recover(self) -> Iterator[ScenarioRecord | FailedRecord]:
        for row, _ in _scan_jsonl(self.path, what="checkpoint"):
            yield _record_of_row(row)

    def iter_records(
        self, include_failed: bool = False
    ) -> Iterator[ScenarioRecord | FailedRecord]:
        for row, _ in _scan_jsonl(self.path, what="file", lenient_tail=True):
            if include_failed or not row.get("failed"):
                yield _record_of_row(row)

    def truncate(self, keep: int) -> None:
        end = 0
        k = 0
        for _, offset in _scan_jsonl(self.path, what="checkpoint"):
            if k == keep:
                break
            end = offset
            k += 1
        if k < keep:
            raise ValueError(
                f"cannot truncate {self.path!r} to {keep} records: only {k} present"
            )
        with open(self.path, "r+b") as fh:
            fh.truncate(end)

    def columns(self, include_failed: bool = True) -> RecordColumns:
        cols = RecordColumns.from_rows(
            row for row, _ in _scan_jsonl(self.path, what="file", lenient_tail=True)
        )
        return cols if include_failed else cols.measured()


class ColumnarStore(RecordStore):
    """Directory of sealed npz segments + JSONL tail (see module doc)."""

    backend = "columnar"
    _segment_ext = ".npz"

    def __init__(self, path: str, seal_rows: int | None = None):
        self.path = str(path)
        if seal_rows is None:
            seal_rows = int(
                os.environ.get("REPRO_STORE_SEAL_ROWS", DEFAULT_SEAL_ROWS)
            )
        self.seal_rows = max(1, int(seal_rows))
        self._tail_rows: int | None = None  # lazy; tracked across appends
        self._locked = False

    # -- single-writer lock --------------------------------------------
    # Two processes appending to one store directory interleave tail
    # lines and race the manifest commit; the lock makes the second
    # writer fail fast instead. Same pattern as the ``_ckernel`` compile
    # lock: an O_EXCL-created file stamped with the writer's pid. A lock
    # whose holder is dead (crashed or SIGKILLed mid-campaign -- the
    # resume path must keep working) is broken automatically; reads
    # never take the lock.
    @property
    def _lock_path(self) -> str:
        return os.path.join(self.path, _WRITER_LOCK)

    def _lock_holder(self) -> int | None:
        try:
            with open(self._lock_path) as fh:
                return int(fh.read().strip() or "0") or None
        except (OSError, ValueError):
            return None

    def _acquire_writer(self) -> None:
        if self._locked:
            return
        os.makedirs(self.path, exist_ok=True)
        real = os.path.realpath(self.path)
        for attempt in range(2):
            with _LIVE_LOCKS_GUARD:
                if real in _LIVE_LOCKS:  # this process already holds it
                    _LIVE_LOCKS[real] += 1
                    self._locked = True
                    return
            try:
                fd = os.open(
                    self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                holder = self._lock_holder()
                with _LIVE_LOCKS_GUARD:
                    live_here = real in _LIVE_LOCKS
                if live_here:
                    continue  # raced a sibling of this process: share it
                if attempt == 0 and self._lock_stale(holder):
                    try:
                        os.unlink(self._lock_path)
                    except OSError:  # pragma: no cover - raced
                        pass
                    continue
                raise RuntimeError(
                    f"{self.path!r} already has a live writer"
                    + (f" (pid {holder})" if holder else "")
                    + ": a record store accepts one writer process at a "
                    f"time ({_WRITER_LOCK} is released on finalize/close "
                    "and broken automatically once its holder exits)"
                )
            with os.fdopen(fd, "w") as fh:
                fh.write(f"{os.getpid()}\n")
            with _LIVE_LOCKS_GUARD:
                _LIVE_LOCKS[real] = _LIVE_LOCKS.get(real, 0) + 1
            self._locked = True
            return

    def _lock_stale(self, holder: int | None) -> bool:
        """Is the on-disk lock the residue of a dead writer?

        A readable pid that no longer runs -- or our own pid without a
        live lock registered (a recycled pid from a crashed run) -- is
        stale. A lock without a readable pid is in the tiny window
        between creation and stamp; only its age can tell, so break it
        after the same staleness bound the compile lock uses.
        """
        if holder is None:
            try:
                age = time.time() - os.stat(self._lock_path).st_mtime
            except OSError:
                return True  # vanished: retry the acquisition
            return age > 150.0
        if holder == os.getpid():
            return True
        try:
            os.kill(holder, 0)
        except ProcessLookupError:
            return True
        except OSError:  # pragma: no cover - EPERM: alive, not ours
            return False
        return False

    def _release_writer(self) -> None:
        if not self._locked:
            return
        self._locked = False
        real = os.path.realpath(self.path)
        with _LIVE_LOCKS_GUARD:
            count = _LIVE_LOCKS.get(real, 1) - 1
            if count > 0:
                _LIVE_LOCKS[real] = count
                return  # a sibling object of this process still writes
            _LIVE_LOCKS.pop(real, None)
        try:
            os.unlink(self._lock_path)
        except OSError:  # pragma: no cover - best-effort
            pass

    def close(self) -> None:
        """Release the writer lock (reading never takes it)."""
        self._release_writer()

    def __del__(self):  # pragma: no cover - interpreter-dependent
        try:
            self._release_writer()
        except Exception:
            pass

    # -- manifest ------------------------------------------------------
    @property
    def _manifest_path(self) -> str:
        return os.path.join(self.path, _MANIFEST)

    def exists(self) -> bool:
        return os.path.exists(self._manifest_path)

    def _manifest(self) -> dict:
        with open(self._manifest_path) as fh:
            m = json.load(fh)
        if m.get("format") != _FORMAT:
            raise ValueError(f"{self._manifest_path}: not a {_FORMAT} manifest")
        if m.get("backend") != self.backend:
            raise ValueError(
                f"{self.path!r} is a {m.get('backend')!r} store, "
                f"opened as {self.backend!r}"
            )
        return m

    def _write_manifest(self, m: dict) -> None:
        """The commit point: temp file + fsync + atomic rename."""
        tmp = os.path.join(self.path, f".manifest.tmp.{os.getpid()}")
        with open(tmp, "w") as fh:
            json.dump(m, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._manifest_path)
        _fsync_dir(self._manifest_path)

    def _tail_path(self, m: dict) -> str:
        return os.path.join(self.path, f"tail-{m['tail_gen']:06d}.jsonl")

    def reset(self) -> None:
        self._acquire_writer()
        os.makedirs(self.path, exist_ok=True)
        m = {
            "format": _FORMAT,
            "version": 1,
            "backend": self.backend,
            "segments": [],
            "tail_gen": 0,
            "next_id": 0,
        }
        self._write_manifest(m)
        open(self._tail_path(m), "w").close()
        self._gc(m)
        self._tail_rows = 0

    def _ensure(self) -> dict:
        if not self.exists():
            self.reset()
        return self._manifest()

    def _gc(self, m: dict) -> None:
        """Unlink files the manifest does not reference (crash debris:
        orphaned segments, stale tail generations, temp files)."""
        keep = {_MANIFEST, os.path.basename(self._tail_path(m))}
        keep.update(seg["file"] for seg in m["segments"])
        for name in os.listdir(self.path):
            if name in keep:
                continue
            if (
                name.startswith(("seg-", "tail-", ".manifest.tmp", ".seg.tmp"))
            ):
                try:
                    os.unlink(os.path.join(self.path, name))
                except OSError:  # pragma: no cover - best-effort
                    pass

    # -- segments ------------------------------------------------------
    def _segment_write(self, cols: RecordColumns, target: str) -> None:
        with open(target, "wb") as fh:
            np.savez(fh, **cols.arrays())
            fh.flush()
            os.fsync(fh.fileno())

    def _segment_read(self, path: str) -> RecordColumns:
        with np.load(path) as data:
            return RecordColumns(**{name: data[name] for name in _ALL_COLS})

    def _publish_segment(self, m: dict, cols: RecordColumns) -> dict:
        """Write ``cols`` as the next segment file (atomic), return its
        manifest entry. The manifest itself is NOT rewritten here."""
        fname = f"seg-{m['next_id']:06d}{self._segment_ext}"
        tmp = os.path.join(self.path, f".seg.tmp.{os.getpid()}.{fname}")
        final = os.path.join(self.path, fname)
        try:
            self._segment_write(cols, tmp)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        os.replace(tmp, final)
        _fsync_dir(final)
        m["next_id"] += 1
        return {"file": fname, "rows": len(cols)}

    # -- tail ----------------------------------------------------------
    def _tail_scan(self, m: dict) -> Iterator[tuple[dict, int]]:
        tail = self._tail_path(m)
        if not os.path.exists(tail):
            return iter(())
        return _scan_jsonl(tail, what="checkpoint")

    def _tail_count(self, m: dict) -> int:
        if self._tail_rows is None:
            self._tail_rows = sum(1 for _ in self._tail_scan(m))
        return self._tail_rows

    def append(self, records: Sequence[ScenarioRecord | FailedRecord]) -> None:
        self._acquire_writer()
        m = self._ensure()
        rows = self._tail_count(m)
        with open(self._tail_path(m), "a") as fh:
            for r in records:
                line = json.dumps(asdict(r)) + "\n"
                faults.maybe_truncate_write(fh, line)
                fh.write(line)
                fh.flush()
            os.fsync(fh.fileno())
        self._tail_rows = rows + len(records)
        if self._tail_rows >= self.seal_rows:
            self._seal(m)

    def seal(self) -> None:
        """Compact the open tail into a sealed columnar segment."""
        self._acquire_writer()
        self._seal(self._ensure())

    def _seal(self, m: dict) -> None:
        rows = [row for row, _ in self._tail_scan(m)]
        old_tail = self._tail_path(m)
        if rows:
            entry = self._publish_segment(m, RecordColumns.from_rows(rows))
            m["segments"].append(entry)
        m["tail_gen"] += 1
        self._write_manifest(m)  # commit: segment + new generation live
        open(self._tail_path(m), "w").close()
        try:
            os.unlink(old_tail)
        except OSError:  # pragma: no cover - best-effort
            pass
        self._tail_rows = 0

    def finalize(self) -> None:
        """Seal the tail so finished stores are pure-columnar reads,
        then release the writer lock."""
        self._acquire_writer()
        try:
            m = self._ensure()
            if self._tail_count(m):
                self._seal(m)
        finally:
            self._release_writer()

    def extend_columns(self, cols: RecordColumns) -> None:
        """Bulk-append ``cols`` directly as one sealed segment (the
        pack/merge/benchmark path; no JSONL round-trip)."""
        self._acquire_writer()
        m = self._ensure()
        if self._tail_count(m):
            self._seal(m)
            m = self._manifest()
        if not len(cols):
            return
        m["segments"].append(self._publish_segment(m, cols))
        self._write_manifest(m)

    # -- reads ---------------------------------------------------------
    def recover(self) -> Iterator[ScenarioRecord | FailedRecord]:
        m = self._manifest()
        for seg in m["segments"]:
            cols = self._segment_read(os.path.join(self.path, seg["file"]))
            yield from cols.to_records(include_failed=True)
        for row, _ in self._tail_scan(m):
            yield _record_of_row(row)

    def count(self) -> int:
        m = self._manifest()
        return sum(seg["rows"] for seg in m["segments"]) + self._tail_count(m)

    def columns(self, include_failed: bool = True) -> RecordColumns:
        m = self._manifest()
        parts = [
            self._segment_read(os.path.join(self.path, seg["file"]))
            for seg in m["segments"]
        ]
        tail_rows = [row for row, _ in self._tail_scan(m)]
        if tail_rows:
            parts.append(RecordColumns.from_rows(tail_rows))
        cols = RecordColumns.concat(parts)
        return cols if include_failed else cols.measured()

    def truncate(self, keep: int) -> None:
        self._acquire_writer()
        m = self._manifest()
        sealed = sum(seg["rows"] for seg in m["segments"])
        if keep > sealed + self._tail_count(m):
            raise ValueError(
                f"cannot truncate {self.path!r} to {keep} records: "
                f"only {sealed + self._tail_count(m)} present"
            )
        if keep >= sealed:
            # cut inside the tail: byte-truncate after its (keep-sealed)th
            # record, which also drops any torn crash residue.
            end = 0
            k = 0
            for _, offset in self._tail_scan(m):
                if k == keep - sealed:
                    break
                end = offset
                k += 1
            with open(self._tail_path(m), "r+b") as fh:
                fh.truncate(end)
            self._tail_rows = keep - sealed
            return
        # the cut lands in the sealed part: keep whole segments up to
        # it, re-publish a sliced segment if it lands inside one, drop
        # the tail entirely (its records are all past the cut).
        segments: list[dict] = []
        left = keep
        for seg in m["segments"]:
            if left >= seg["rows"]:
                segments.append(seg)
                left -= seg["rows"]
                continue
            if left > 0:
                cols = self._segment_read(os.path.join(self.path, seg["file"]))
                segments.append(
                    self._publish_segment(m, cols.take(np.arange(left)))
                )
            break
        m["segments"] = segments
        m["tail_gen"] += 1
        self._write_manifest(m)
        open(self._tail_path(m), "w").close()
        self._gc(m)
        self._tail_rows = 0


def _require_pyarrow():
    try:
        import pyarrow  # noqa: F401
        import pyarrow.parquet as pq
    except ImportError as exc:  # pragma: no cover - env-dependent
        raise RuntimeError(
            "the parquet store backend requires pyarrow "
            "(pip install 'tree-sched-repro[columnar]'); "
            "the jsonl and columnar (npz) backends work without it"
        ) from exc
    return pq


class ParquetStore(ColumnarStore):
    """The columnar layout with parquet segments (optional: pyarrow)."""

    backend = "parquet"
    _segment_ext = ".parquet"

    def __init__(self, path: str, seal_rows: int | None = None):
        _require_pyarrow()
        super().__init__(path, seal_rows=seal_rows)

    def _segment_write(self, cols: RecordColumns, target: str) -> None:
        import pyarrow as pa

        pq = _require_pyarrow()
        table = pa.table(
            {name: np.asarray(arr) for name, arr in cols.arrays().items()}
        )
        with open(target, "wb") as fh:
            pq.write_table(table, fh)
            fh.flush()
            os.fsync(fh.fileno())

    def _segment_read(self, path: str) -> RecordColumns:
        pq = _require_pyarrow()
        table = pq.read_table(path)
        out = {}
        for name in _ALL_COLS:
            col = table.column(name).to_pylist()
            if name in _STR_COLS:
                out[name] = _str_array(col)
            elif name in _INT_COLS:
                out[name] = np.asarray(col, np.int64)
            elif name == "failed":
                out[name] = np.asarray(col, bool)
            else:
                out[name] = np.asarray(col, np.float64)
        return RecordColumns(**out)


# ----------------------------------------------------------------------
# resolution, conversion, merging
# ----------------------------------------------------------------------
def open_store(
    path: str, backend: str = "auto", seal_rows: int | None = None
) -> RecordStore:
    """Open (or designate) the record store at ``path``.

    ``backend="auto"`` resolves ``.jsonl`` paths to the JSONL backend
    and existing store directories to whatever their manifest says; a
    fresh directory store must be named explicitly (``columnar`` /
    ``parquet``).
    """
    if backend not in STORE_BACKENDS:
        raise ValueError(
            f"unknown store backend {backend!r}; expected one of {STORE_BACKENDS}"
        )
    path = str(path)
    if backend == "auto":
        manifest = os.path.join(path, _MANIFEST)
        if os.path.exists(manifest):
            with open(manifest) as fh:
                backend = json.load(fh).get("backend", "columnar")
            if backend not in ("columnar", "parquet"):
                raise ValueError(f"{manifest}: unknown store backend {backend!r}")
        else:
            backend = "jsonl"
    if backend == "jsonl":
        return JsonlStore(path)
    if backend == "columnar":
        return ColumnarStore(path, seal_rows=seal_rows)
    return ParquetStore(path, seal_rows=seal_rows)


def pack_store(src: str | RecordStore, dst: str | RecordStore, backend: str = "auto") -> int:
    """Convert/compact ``src`` into ``dst`` (any backend to any other).

    ``dst`` is reset first; returns the number of records packed.
    Failed rows are preserved at their stream positions, so packing a
    campaign checkpoint to JSONL and back is the record-for-record
    equivalence oracle the tests (and CI) use.
    """
    src_store = src if isinstance(src, RecordStore) else open_store(src)
    if isinstance(dst, RecordStore):
        dst_store = dst
    else:
        if backend == "auto" and not str(dst).endswith(".jsonl"):
            backend = "columnar"
        dst_store = open_store(dst, backend=backend)
    cols = src_store.columns(include_failed=True)
    dst_store.reset()
    if isinstance(dst_store, ColumnarStore):
        dst_store.extend_columns(cols)
    else:
        dst_store.append(cols.to_records(include_failed=True))
    dst_store.finalize()  # directory stores: release the writer lock
    return len(cols)


def merge_stores(dst: str | RecordStore, sources: Sequence[str | RecordStore],
                 backend: str = "auto") -> int:
    """Concatenate shard stores into ``dst`` in the given order.

    Shards from distributed/supervised runs are contiguous slices of
    one campaign stream; merging them in stream order reproduces the
    single-checkpoint file. ``dst`` is reset first; returns the total
    record count.
    """
    if isinstance(dst, RecordStore):
        dst_store = dst
    else:
        if backend == "auto" and not str(dst).endswith(".jsonl"):
            backend = "columnar"
        dst_store = open_store(dst, backend=backend)
    dst_store.reset()
    total = 0
    for src in sources:
        src_store = src if isinstance(src, RecordStore) else open_store(src)
        cols = src_store.columns(include_failed=True)
        total += len(cols)
        if isinstance(dst_store, ColumnarStore):
            dst_store.extend_columns(cols)
        else:
            dst_store.append(cols.to_records(include_failed=True))
    dst_store.finalize()  # directory stores: release the writer lock
    return total
