"""Experiment runner: heuristics x trees x processor counts -> records.

One :class:`ScenarioRecord` per (tree, p, heuristic) holds the measured
makespan and peak memory together with the two lower bounds of
Section 6.3 (sequential-postorder memory; ``max(W/p, CP)`` makespan).
Every table and figure of the paper is a pure function of these records,
implemented in :mod:`repro.analysis.metrics` /
:mod:`repro.analysis.tables` / :mod:`repro.analysis.figures`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

from repro.core.bounds import makespan_lower_bound
from repro.parallel.heuristics import HEURISTICS, run_all
from repro.sequential.postorder import optimal_postorder
from repro.workloads.dataset import TreeInstance, PROCESSOR_COUNTS

__all__ = ["ScenarioRecord", "run_experiments", "save_records", "load_records"]


@dataclass(frozen=True)
class ScenarioRecord:
    """Measured performance of one heuristic on one (tree, p) scenario."""

    tree: str
    n: int
    p: int
    heuristic: str
    makespan: float
    memory: float
    memory_lb: float
    makespan_lb: float

    @property
    def memory_ratio(self) -> float:
        """Peak memory relative to the sequential lower bound (Fig. 6 y-axis)."""
        return self.memory / self.memory_lb if self.memory_lb > 0 else float("inf")

    @property
    def makespan_ratio(self) -> float:
        """Makespan relative to the lower bound (Fig. 6 x-axis)."""
        return self.makespan / self.makespan_lb if self.makespan_lb > 0 else float("inf")


def run_experiments(
    instances: Iterable[TreeInstance],
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
    heuristics: Sequence[str] | None = None,
    validate: bool = False,
    progress: bool = False,
) -> list[ScenarioRecord]:
    """Run the full cross product of the paper's Section 6 campaign.

    The sequential memory lower bound is computed once per tree and
    shared across processor counts, exactly as in the paper (the bound
    does not depend on ``p``).
    """
    names = list(heuristics) if heuristics is not None else list(HEURISTICS)
    records: list[ScenarioRecord] = []
    for inst in instances:
        mem_lb = optimal_postorder(inst.tree).peak_memory
        for p in processor_counts:
            cmax_lb = makespan_lower_bound(inst.tree, p)
            results = run_all(inst.tree, p, validate=validate)
            for name in names:
                r = results[name]
                records.append(
                    ScenarioRecord(
                        tree=inst.name,
                        n=inst.tree.n,
                        p=p,
                        heuristic=name,
                        makespan=r.makespan,
                        memory=r.peak_memory,
                        memory_lb=mem_lb,
                        makespan_lb=cmax_lb,
                    )
                )
        if progress:  # pragma: no cover - cosmetic
            print(f"  done {inst.name} (n={inst.tree.n})")
    return records


def save_records(records: Sequence[ScenarioRecord], path: str) -> None:
    """Serialise records to JSON for later analysis / plotting."""
    with open(path, "w") as fh:
        json.dump([asdict(r) for r in records], fh, indent=1)


def load_records(path: str) -> list[ScenarioRecord]:
    """Load records written by :func:`save_records`."""
    with open(path) as fh:
        return [ScenarioRecord(**row) for row in json.load(fh)]
