"""Batch experiment pipeline: algorithms x trees x processor counts.

One :class:`ScenarioRecord` per (tree, p, algorithm) holds the measured
makespan and peak memory together with the two lower bounds of
Section 6.3 (sequential-postorder memory; ``max(W/p, CP)`` makespan).
Every table and figure of the paper is a pure function of these records,
implemented in :mod:`repro.analysis.metrics` /
:mod:`repro.analysis.tables` / :mod:`repro.analysis.figures`.

:func:`run_experiments` is now a thin configuration of the declarative
campaign runner (:mod:`repro.analysis.campaign`): the scenario grid is
grouped by tree, each worker builds one
:class:`~repro.core.prepared.PreparedTree` per tree and runs its whole
slice of the grid against the shared preparation. Fanning across a
``multiprocessing`` pool (``workers=N``) dispatches groups in order, so
the parallel run produces **byte-identical** records to the serial one
(property-tested). With ``shared_memory=True`` the trees' numpy arrays
are placed in one ``multiprocessing.shared_memory`` block and workers
attach zero-copy views instead of unpickling per-tree copies. Records
can be streamed to JSONL as each tree completes (``stream_to=...``),
which bounds memory on large campaigns and leaves a resumable on-disk
trail (see :func:`repro.analysis.campaign.run_campaign` for resuming);
``save_records`` / ``load_records`` support both the historical JSON
array format and append-friendly JSON Lines, and both write paths are
crash-safe: array writes go through a temp file plus atomic rename,
JSONL appends flush after every record, and ``load_records`` recovers
from a truncated final line.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

from repro.parallel.heuristics import HEURISTICS
from repro.testing import faults
from repro.workloads.dataset import TreeInstance, PROCESSOR_COUNTS

__all__ = [
    "FailedRecord",
    "ScenarioRecord",
    "run_experiments",
    "save_records",
    "load_records",
    "iter_records",
]


@dataclass(frozen=True)
class ScenarioRecord:
    """Measured performance of one heuristic on one (tree, p) scenario."""

    tree: str
    n: int
    p: int
    heuristic: str
    makespan: float
    memory: float
    memory_lb: float
    makespan_lb: float

    @property
    def memory_ratio(self) -> float:
        """Peak memory relative to the sequential lower bound (Fig. 6
        y-axis). Defined for every record: a zero (degenerate) baseline
        yields ``math.inf`` rather than raising ``ZeroDivisionError``."""
        return self.memory / self.memory_lb if self.memory_lb > 0 else math.inf

    @property
    def makespan_ratio(self) -> float:
        """Makespan relative to the lower bound (Fig. 6 x-axis).
        Defined for every record: a zero (degenerate) baseline yields
        ``math.inf`` rather than raising ``ZeroDivisionError``."""
        return self.makespan / self.makespan_lb if self.makespan_lb > 0 else math.inf


@dataclass(frozen=True)
class FailedRecord:
    """A quarantined (poison) scenario in a supervised campaign.

    Written to the JSONL checkpoint at the scenario's stream position
    when every attempt was exhausted (or the first attempt failed
    deterministically), so the checkpoint stays a verifiable prefix of
    the campaign's scenario stream. Shares the resume key fields
    ``(tree, heuristic, p)`` with :class:`ScenarioRecord`; the
    ``failed`` marker is what tells the two apart on disk. A resumed
    campaign skips these by default and re-runs them (truncating the
    checkpoint at the first one) with ``retry_failed=True``.
    """

    tree: str
    n: int
    p: int
    heuristic: str
    error: str
    attempts: int
    failed: bool = True


def run_experiments(
    instances: Iterable[TreeInstance],
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
    heuristics: Sequence[str] | None = None,
    validate: bool = False,
    progress: bool = False,
    workers: int = 1,
    stream_to: str | None = None,
    chunksize: int = 1,
    shared_memory: bool = False,
    backend: str | None = None,
    supervise: bool = False,
    retries: int = 2,
    timeout: float | None = None,
) -> list[ScenarioRecord]:
    """Run the full cross product of the paper's Section 6 campaign.

    A thin configuration of :func:`repro.analysis.campaign.run_campaign`
    (which adds cap-factor grids, resumable checkpoints and intra-tree
    sharding on top); kept for the historical call sites and the paper's
    default grid.

    Parameters
    ----------
    instances, processor_counts:
        the scenario grid (default processor sweep: the paper's five).
    heuristics:
        algorithm names from :mod:`repro.registry` (default: the four
        paper heuristics, preserving the historical behaviour).
    validate:
        re-check schedule validity inside the simulator (slower).
    progress:
        print one line per completed tree.
    workers:
        size of the ``multiprocessing`` pool; 1 (default) runs in
        process. Results are identical for any ``workers`` value --
        trees are dispatched and collected in order, and each worker
        prepares a tree once for its whole slice of the grid.
    stream_to:
        optional ``.jsonl`` path; each tree's records are appended as
        soon as they are available (the file is truncated first), with
        a flush after every record so an interrupted campaign leaves at
        most one truncated line behind.
    chunksize:
        work units per pool task (larger values amortise IPC on big
        grids).
    shared_memory:
        place every tree's arrays in one
        ``multiprocessing.shared_memory`` block; workers attach
        zero-copy views instead of unpickling per-tree copies. Only
        engaged when ``workers > 1``; results are byte-identical either
        way (property-tested). The block is unlinked before returning.
    backend:
        engine sweep backend forwarded to every algorithm that declares
        it (``"auto"``/``"python"``/``"numba"``/``"c"``); with
        ``workers > 1`` each pool worker selects/compiles its backend
        independently, so parallel campaigns fan out compiled sweeps.
        All backends are bit-identical, so records do not depend on it.
    supervise, retries, timeout:
        run under the fault-tolerant supervised worker pool (crash and
        hang detection, bounded retries with backoff, quarantine of
        poison scenarios, per-worker backend degradation); see
        :func:`repro.analysis.campaign.run_campaign`. The record
        stream stays byte-identical to the unsupervised modes.
    """
    from .campaign import Campaign, run_campaign

    names = tuple(heuristics) if heuristics is not None else tuple(HEURISTICS)
    campaign = Campaign(
        algorithms=names,
        processor_counts=tuple(processor_counts),
        backend=backend,
        validate=validate,
    )
    return run_campaign(
        instances,
        campaign,
        workers=workers,
        checkpoint=stream_to,
        shared_memory=shared_memory,
        chunksize=chunksize,
        progress=progress,
        supervise=supervise,
        retries=retries,
        timeout=timeout,
    )


def save_records(
    records: Sequence[ScenarioRecord], path: str, append: bool = False
) -> None:
    """Serialise records for later analysis / plotting (crash-safe).

    Paths ending in ``.jsonl`` are written as JSON Lines (one record per
    line), which supports ``append=True`` for chunked streaming; any
    other path gets the historical indented JSON array. Fresh writes go
    through a temp file in the same directory followed by an atomic
    rename, so a crash mid-write never destroys an existing file;
    appends flush after every record, so a crash leaves at most one
    truncated final line (which :func:`load_records` and the campaign
    resume path recover from).
    """
    if _is_store_dir(path):
        from .store import open_store

        store = open_store(path)
        if not append:
            store.reset()
        store.append(records)
        return
    jsonl = str(path).endswith(".jsonl")
    if not jsonl and append:
        raise ValueError("append mode requires a .jsonl path")
    if jsonl and append:
        with open(path, "a") as fh:
            for r in records:
                line = json.dumps(asdict(r)) + "\n"
                faults.maybe_truncate_write(fh, line)
                fh.write(line)
                fh.flush()
            os.fsync(fh.fileno())
        return
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as fh:
            if jsonl:
                for r in records:
                    fh.write(json.dumps(asdict(r)))
                    fh.write("\n")
            else:
                json.dump([asdict(r) for r in records], fh, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _is_store_dir(path: str) -> bool:
    """True when ``path`` is a directory record store (columnar/parquet
    manifest layout; see :mod:`repro.analysis.store`)."""
    return os.path.exists(os.path.join(str(path), "manifest.json"))


def _fsync_dir(path: str) -> None:
    """fsync the directory containing ``path``, so the atomic rename
    itself is durable (best-effort: directory fds are a POSIX notion)."""
    parent = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX / restricted dirs
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def load_records(
    path: str, include_failed: bool = False
) -> list[ScenarioRecord | FailedRecord]:
    """Load records written by :func:`save_records` (JSON or JSONL).

    JSONL files recover from a truncated *final* line -- the possible
    residue of a crashed streaming run: writes always emit
    ``record + "\\n"`` in one buffer, so crash residue is exactly an
    *unterminated* trailing line, which is dropped. A malformed line
    anywhere else (including a newline-terminated final line) cannot be
    crash residue and raises ``ValueError``.

    Quarantined scenarios (:class:`FailedRecord` rows, marked by their
    ``failed`` key) are skipped by default so every analysis consumer
    keeps seeing only measured records; pass ``include_failed=True`` to
    get them interleaved at their stream positions.

    Directory record stores (columnar / parquet; see
    :mod:`repro.analysis.store`) load transparently -- any path written
    by a ``--store columnar`` campaign reads back through the same
    function, with identical record streams.
    """
    if _is_store_dir(path):
        from .store import open_store

        return list(open_store(path).iter_records(include_failed=include_failed))
    with open(path) as fh:
        text = fh.read()
    if text.lstrip().startswith("["):
        rows = json.loads(text)
    else:
        terminated = text.endswith("\n")
        lines = [line for line in text.splitlines() if line.strip()]
        rows = []
        for k, line in enumerate(lines):
            try:
                rows.append(json.loads(line))
            except ValueError:
                if k == len(lines) - 1 and not terminated:
                    break  # truncated final line: recoverable crash residue
                raise ValueError(
                    f"{path}: malformed record on line {k + 1} "
                    "(not a truncated tail; the file is corrupt)"
                ) from None
    out: list[ScenarioRecord | FailedRecord] = []
    for row in rows:
        if row.get("failed"):
            if include_failed:
                out.append(FailedRecord(**row))
        else:
            out.append(ScenarioRecord(**row))
    return out


def iter_records(path: str, include_failed: bool = False):
    """Stream records from ``path`` without materialising the file.

    The generator twin of :func:`load_records` (same recovery and
    ``include_failed`` semantics) for JSONL checkpoints and directory
    record stores; the campaign resume/prefix-verify and report paths
    run on it, so resuming a million-record checkpoint never builds the
    full list in memory. Historical JSON-array files fall back to a
    whole-file parse (the format is not line-delimited).
    """
    if _is_store_dir(path):
        from .store import open_store

        yield from open_store(path).iter_records(include_failed=include_failed)
        return
    if not str(path).endswith(".jsonl"):
        yield from load_records(path, include_failed=include_failed)
        return
    from .store import JsonlStore

    yield from JsonlStore(path).iter_records(include_failed=include_failed)
