"""Batch experiment pipeline: algorithms x trees x processor counts.

One :class:`ScenarioRecord` per (tree, p, algorithm) holds the measured
makespan and peak memory together with the two lower bounds of
Section 6.3 (sequential-postorder memory; ``max(W/p, CP)`` makespan).
Every table and figure of the paper is a pure function of these records,
implemented in :mod:`repro.analysis.metrics` /
:mod:`repro.analysis.tables` / :mod:`repro.analysis.figures`.

The runner fans the (tree x p x algorithm) cross product across a
``multiprocessing`` pool (``workers=N``): one task per tree, dispatched
in order, so the parallel run produces **byte-identical** records to the
serial one (property-tested). With ``shared_memory=True`` the trees'
numpy arrays are placed in one ``multiprocessing.shared_memory`` block
and workers attach zero-copy views instead of unpickling per-tree
copies -- the payload shrinks from O(total nodes) to O(instances), and
results stay byte-identical. Records can be streamed to JSONL as each
tree completes (``stream_to=...``), which bounds memory on large
campaigns and leaves a resumable on-disk trail; ``save_records`` /
``load_records`` support both the historical JSON array format and
append-friendly JSON Lines.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

import numpy as np

from repro import registry
from repro.core.tree import TaskTree
from repro.core.bounds import makespan_lower_bound
from repro.core.simulator import simulate
from repro.parallel.heuristics import HEURISTICS
from repro.sequential.postorder import optimal_postorder
from repro.workloads.dataset import TreeInstance, PROCESSOR_COUNTS

__all__ = ["ScenarioRecord", "run_experiments", "save_records", "load_records"]


@dataclass(frozen=True)
class ScenarioRecord:
    """Measured performance of one heuristic on one (tree, p) scenario."""

    tree: str
    n: int
    p: int
    heuristic: str
    makespan: float
    memory: float
    memory_lb: float
    makespan_lb: float

    @property
    def memory_ratio(self) -> float:
        """Peak memory relative to the sequential lower bound (Fig. 6 y-axis)."""
        return self.memory / self.memory_lb if self.memory_lb > 0 else float("inf")

    @property
    def makespan_ratio(self) -> float:
        """Makespan relative to the lower bound (Fig. 6 x-axis)."""
        return self.makespan / self.makespan_lb if self.makespan_lb > 0 else float("inf")


def _instance_records(
    payload: tuple[TreeInstance, tuple[int, ...], tuple[str, ...], bool, str | None],
) -> list[ScenarioRecord]:
    """Records of one tree across all processor counts and algorithms.

    Top-level (picklable) so a ``multiprocessing`` pool can execute it;
    the sequential memory lower bound is computed once per tree and
    shared across processor counts, exactly as in the paper (the bound
    does not depend on ``p``).
    """
    inst, processor_counts, names, validate, backend = payload
    mem_lb = optimal_postorder(inst.tree).peak_memory
    # The engine backend is only forwarded to algorithms that declare it
    # (the engine-based list schedulers); the subtree-splitting family
    # has no sweep to accelerate.
    overrides = {
        name: {"backend": backend}
        if backend is not None and "backend" in registry.get(name).params
        else {}
        for name in names
    }
    records: list[ScenarioRecord] = []
    for p in processor_counts:
        cmax_lb = makespan_lower_bound(inst.tree, p)
        for name in names:
            result = simulate(
                registry.run(name, inst.tree, p, **overrides[name]), validate=validate
            )
            records.append(
                ScenarioRecord(
                    tree=inst.name,
                    n=inst.tree.n,
                    p=p,
                    heuristic=name,
                    makespan=result.makespan,
                    memory=result.peak_memory,
                    memory_lb=mem_lb,
                    makespan_lb=cmax_lb,
                )
            )
    return records


# ----------------------------------------------------------------------
# shared-memory transport: workers attach to one block of tree arrays
# instead of unpickling per-tree copies
# ----------------------------------------------------------------------

#: process-local cache of attached blocks (one entry per pool lifetime).
_SHM_ATTACHED: dict = {}


def _shm_views(buf, base: int, n: int) -> tuple[np.ndarray, ...]:
    """The four typed views of one tree inside a block: ``parent``
    (int64) then ``w``, ``f``, ``sizes`` (float64), contiguous at
    ``base`` -- 32 bytes per node. Single source of truth for the
    layout, used both when packing and when attaching."""
    return (
        np.ndarray(n, dtype=np.int64, buffer=buf, offset=base),
        np.ndarray(n, dtype=np.float64, buffer=buf, offset=base + 8 * n),
        np.ndarray(n, dtype=np.float64, buffer=buf, offset=base + 16 * n),
        np.ndarray(n, dtype=np.float64, buffer=buf, offset=base + 24 * n),
    )


def _shm_pack(instances: Sequence[TreeInstance]):
    """Copy every instance's tree arrays into one shared-memory block.

    Returns the block and one small picklable descriptor per instance.
    The block is unlinked before re-raising if packing fails partway, so
    aborted campaigns never leave named segments behind.
    """
    from multiprocessing import shared_memory

    total = sum(inst.tree.n for inst in instances) * 32
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    try:
        descriptors = []
        base = 0
        for inst in instances:
            t = inst.tree
            for view, src in zip(_shm_views(shm.buf, base, t.n), (t.parent, t.w, t.f, t.sizes)):
                view[:] = src
            descriptors.append(
                {
                    "name": inst.name,
                    "matrix_name": inst.matrix_name,
                    "ordering": inst.ordering,
                    "amalgamation": inst.amalgamation,
                    "meta": inst.meta,
                    "n": t.n,
                    "base": base,
                }
            )
            base += 32 * t.n
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return shm, descriptors


def _shm_attach(name: str):
    """Attach to a block once per worker process (cached).

    Ownership stays with the creator: only the parent unlinks. On
    Python < 3.13 attaching *also* registers the block with the
    resource tracker (bpo-38119), which would make a worker's tracker
    consider it leaked and destroy it; suppress that registration
    (newer Pythons expose ``track=False`` for exactly this).
    """
    shm = _SHM_ATTACHED.get(name)
    if shm is None:
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register

            def register(rname, rtype):  # pragma: no cover - trivial shim
                if rtype != "shared_memory":
                    original_register(rname, rtype)

            resource_tracker.register = register
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
        _SHM_ATTACHED[name] = shm
    return shm


def _instance_records_shm(
    payload: tuple[str, dict, tuple[int, ...], tuple[str, ...], bool, str | None],
) -> list[ScenarioRecord]:
    """Worker entry point: rebuild the tree from shared arrays, zero-copy."""
    shm_name, d, processor_counts, names, validate, backend = payload
    shm = _shm_attach(shm_name)
    views = _shm_views(shm.buf, d["base"], d["n"])
    for v in views:  # the block is shared across workers: never writable
        v.setflags(write=False)
    tree = TaskTree(*views)
    inst = TreeInstance(
        name=d["name"],
        tree=tree,
        matrix_name=d["matrix_name"],
        ordering=d["ordering"],
        amalgamation=d["amalgamation"],
        meta=d["meta"],
    )
    return _instance_records((inst, processor_counts, names, validate, backend))


def run_experiments(
    instances: Iterable[TreeInstance],
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
    heuristics: Sequence[str] | None = None,
    validate: bool = False,
    progress: bool = False,
    workers: int = 1,
    stream_to: str | None = None,
    chunksize: int = 1,
    shared_memory: bool = False,
    backend: str | None = None,
) -> list[ScenarioRecord]:
    """Run the full cross product of the paper's Section 6 campaign.

    Parameters
    ----------
    instances, processor_counts:
        the scenario grid (default processor sweep: the paper's five).
    heuristics:
        algorithm names from :mod:`repro.registry` (default: the four
        paper heuristics, preserving the historical behaviour).
    validate:
        re-check schedule validity inside the simulator (slower).
    progress:
        print one line per completed tree.
    workers:
        size of the ``multiprocessing`` pool; 1 (default) runs in
        process. Results are identical for any ``workers`` value --
        trees are dispatched and collected in order.
    stream_to:
        optional ``.jsonl`` path; each tree's records are appended as
        soon as they are available (the file is truncated first).
    chunksize:
        trees per pool task (larger values amortise IPC on big grids).
    shared_memory:
        place every tree's arrays in one
        ``multiprocessing.shared_memory`` block; workers attach
        zero-copy views instead of unpickling per-tree copies. Only
        engaged when ``workers > 1``; results are byte-identical either
        way (property-tested). The block is unlinked before returning.
    backend:
        engine sweep backend forwarded to every algorithm that declares
        it (``"auto"``/``"python"``/``"numba"``/``"c"``); with
        ``workers > 1`` each pool worker selects/compiles its backend
        independently, so parallel campaigns fan out compiled sweeps.
        All backends are bit-identical, so records do not depend on it.
    """
    names = tuple(heuristics) if heuristics is not None else tuple(HEURISTICS)
    instances = list(instances)
    if stream_to is not None:
        if not str(stream_to).endswith(".jsonl"):
            raise ValueError("stream_to must be a .jsonl path (append-friendly)")
        open(stream_to, "w").close()  # truncate: the stream restarts
    payloads = [
        (inst, tuple(processor_counts), names, validate, backend) for inst in instances
    ]
    records: list[ScenarioRecord] = []

    def consume(results: Iterable[list[ScenarioRecord]]) -> None:
        for inst, recs in zip(instances, results):
            records.extend(recs)
            if stream_to is not None:
                save_records(recs, stream_to, append=True)
            if progress:  # pragma: no cover - cosmetic
                print(f"  done {inst.name} (n={inst.tree.n})")

    if workers > 1 and payloads:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        if shared_memory:
            shm, descriptors = _shm_pack(instances)
            try:
                shm_payloads = [
                    (shm.name, d, tuple(processor_counts), names, validate, backend)
                    for d in descriptors
                ]
                with ctx.Pool(processes=workers) as pool:
                    consume(
                        pool.imap(_instance_records_shm, shm_payloads, chunksize=chunksize)
                    )
            finally:
                shm.close()
                shm.unlink()
        else:
            with ctx.Pool(processes=workers) as pool:
                # imap (not imap_unordered): chunks complete out of order
                # but are *collected* in submission order, so the record
                # stream is byte-identical to the serial run.
                consume(pool.imap(_instance_records, payloads, chunksize=chunksize))
    else:
        consume(map(_instance_records, payloads))
    return records


def save_records(
    records: Sequence[ScenarioRecord], path: str, append: bool = False
) -> None:
    """Serialise records for later analysis / plotting.

    Paths ending in ``.jsonl`` are written as JSON Lines (one record per
    line), which supports ``append=True`` for chunked streaming; any
    other path gets the historical indented JSON array.
    """
    if str(path).endswith(".jsonl"):
        with open(path, "a" if append else "w") as fh:
            for r in records:
                fh.write(json.dumps(asdict(r)))
                fh.write("\n")
        return
    if append:
        raise ValueError("append mode requires a .jsonl path")
    with open(path, "w") as fh:
        json.dump([asdict(r) for r in records], fh, indent=1)


def load_records(path: str) -> list[ScenarioRecord]:
    """Load records written by :func:`save_records` (JSON or JSONL)."""
    with open(path) as fh:
        text = fh.read()
    if text.lstrip().startswith("["):
        rows = json.loads(text)
    else:
        rows = [json.loads(line) for line in text.splitlines() if line.strip()]
    return [ScenarioRecord(**row) for row in rows]
