"""Batch experiment pipeline: algorithms x trees x processor counts.

One :class:`ScenarioRecord` per (tree, p, algorithm) holds the measured
makespan and peak memory together with the two lower bounds of
Section 6.3 (sequential-postorder memory; ``max(W/p, CP)`` makespan).
Every table and figure of the paper is a pure function of these records,
implemented in :mod:`repro.analysis.metrics` /
:mod:`repro.analysis.tables` / :mod:`repro.analysis.figures`.

The runner fans the (tree x p x algorithm) cross product across a
``multiprocessing`` pool (``workers=N``): one task per tree, dispatched
in order, so the parallel run produces **byte-identical** records to the
serial one (property-tested). Records can be streamed to JSONL as each
tree completes (``stream_to=...``), which bounds memory on large
campaigns and leaves a resumable on-disk trail; ``save_records`` /
``load_records`` support both the historical JSON array format and
append-friendly JSON Lines.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

from repro import registry
from repro.core.bounds import makespan_lower_bound
from repro.core.simulator import simulate
from repro.parallel.heuristics import HEURISTICS
from repro.sequential.postorder import optimal_postorder
from repro.workloads.dataset import TreeInstance, PROCESSOR_COUNTS

__all__ = ["ScenarioRecord", "run_experiments", "save_records", "load_records"]


@dataclass(frozen=True)
class ScenarioRecord:
    """Measured performance of one heuristic on one (tree, p) scenario."""

    tree: str
    n: int
    p: int
    heuristic: str
    makespan: float
    memory: float
    memory_lb: float
    makespan_lb: float

    @property
    def memory_ratio(self) -> float:
        """Peak memory relative to the sequential lower bound (Fig. 6 y-axis)."""
        return self.memory / self.memory_lb if self.memory_lb > 0 else float("inf")

    @property
    def makespan_ratio(self) -> float:
        """Makespan relative to the lower bound (Fig. 6 x-axis)."""
        return self.makespan / self.makespan_lb if self.makespan_lb > 0 else float("inf")


def _instance_records(
    payload: tuple[TreeInstance, tuple[int, ...], tuple[str, ...], bool],
) -> list[ScenarioRecord]:
    """Records of one tree across all processor counts and algorithms.

    Top-level (picklable) so a ``multiprocessing`` pool can execute it;
    the sequential memory lower bound is computed once per tree and
    shared across processor counts, exactly as in the paper (the bound
    does not depend on ``p``).
    """
    inst, processor_counts, names, validate = payload
    mem_lb = optimal_postorder(inst.tree).peak_memory
    records: list[ScenarioRecord] = []
    for p in processor_counts:
        cmax_lb = makespan_lower_bound(inst.tree, p)
        for name in names:
            result = simulate(registry.run(name, inst.tree, p), validate=validate)
            records.append(
                ScenarioRecord(
                    tree=inst.name,
                    n=inst.tree.n,
                    p=p,
                    heuristic=name,
                    makespan=result.makespan,
                    memory=result.peak_memory,
                    memory_lb=mem_lb,
                    makespan_lb=cmax_lb,
                )
            )
    return records


def run_experiments(
    instances: Iterable[TreeInstance],
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
    heuristics: Sequence[str] | None = None,
    validate: bool = False,
    progress: bool = False,
    workers: int = 1,
    stream_to: str | None = None,
    chunksize: int = 1,
) -> list[ScenarioRecord]:
    """Run the full cross product of the paper's Section 6 campaign.

    Parameters
    ----------
    instances, processor_counts:
        the scenario grid (default processor sweep: the paper's five).
    heuristics:
        algorithm names from :mod:`repro.registry` (default: the four
        paper heuristics, preserving the historical behaviour).
    validate:
        re-check schedule validity inside the simulator (slower).
    progress:
        print one line per completed tree.
    workers:
        size of the ``multiprocessing`` pool; 1 (default) runs in
        process. Results are identical for any ``workers`` value --
        trees are dispatched and collected in order.
    stream_to:
        optional ``.jsonl`` path; each tree's records are appended as
        soon as they are available (the file is truncated first).
    chunksize:
        trees per pool task (larger values amortise IPC on big grids).
    """
    names = tuple(heuristics) if heuristics is not None else tuple(HEURISTICS)
    instances = list(instances)
    if stream_to is not None:
        if not str(stream_to).endswith(".jsonl"):
            raise ValueError("stream_to must be a .jsonl path (append-friendly)")
        open(stream_to, "w").close()  # truncate: the stream restarts
    payloads = [(inst, tuple(processor_counts), names, validate) for inst in instances]
    records: list[ScenarioRecord] = []

    def consume(results: Iterable[list[ScenarioRecord]]) -> None:
        for inst, recs in zip(instances, results):
            records.extend(recs)
            if stream_to is not None:
                save_records(recs, stream_to, append=True)
            if progress:  # pragma: no cover - cosmetic
                print(f"  done {inst.name} (n={inst.tree.n})")

    if workers > 1 and payloads:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        with ctx.Pool(processes=workers) as pool:
            # imap (not imap_unordered): chunks complete out of order but
            # are *collected* in submission order, so the record stream
            # is byte-identical to the serial run.
            consume(pool.imap(_instance_records, payloads, chunksize=chunksize))
    else:
        consume(map(_instance_records, payloads))
    return records


def save_records(
    records: Sequence[ScenarioRecord], path: str, append: bool = False
) -> None:
    """Serialise records for later analysis / plotting.

    Paths ending in ``.jsonl`` are written as JSON Lines (one record per
    line), which supports ``append=True`` for chunked streaming; any
    other path gets the historical indented JSON array.
    """
    if str(path).endswith(".jsonl"):
        with open(path, "a" if append else "w") as fh:
            for r in records:
                fh.write(json.dumps(asdict(r)))
                fh.write("\n")
        return
    if append:
        raise ValueError("append mode requires a .jsonl path")
    with open(path, "w") as fh:
        json.dump([asdict(r) for r in records], fh, indent=1)


def load_records(path: str) -> list[ScenarioRecord]:
    """Load records written by :func:`save_records` (JSON or JSONL)."""
    with open(path) as fh:
        text = fh.read()
    if text.lstrip().startswith("["):
        rows = json.loads(text)
    else:
        rows = [json.loads(line) for line in text.splitlines() if line.strip()]
    return [ScenarioRecord(**row) for row in rows]
