"""Experiment harness and statistics for Section 6's tables and figures."""

from .experiments import (
    FailedRecord,
    ScenarioRecord,
    run_experiments,
    save_records,
    load_records,
)
from .campaign import Campaign, Scenario, run_campaign, recover_checkpoint
from .supervisor import RunReport, run_supervised
from .metrics import HeuristicStats, compute_table1_stats, group_by_scenario
from .tables import render_table1, table1_csv
from .figures import FigureSeries, Cross, figure_data, render_figure, figure_csv
from .pareto import ParetoPoint, dominates, pareto_front, hypervolume
from .shape_stats import ShapeSummary, summarize_shapes, render_shape_table
from .visualize import render_tree, render_memory_profile

__all__ = [
    "FailedRecord",
    "ScenarioRecord",
    "run_experiments",
    "save_records",
    "load_records",
    "Campaign",
    "Scenario",
    "run_campaign",
    "recover_checkpoint",
    "RunReport",
    "run_supervised",
    "HeuristicStats",
    "compute_table1_stats",
    "group_by_scenario",
    "render_table1",
    "table1_csv",
    "FigureSeries",
    "Cross",
    "figure_data",
    "render_figure",
    "figure_csv",
    "ParetoPoint",
    "dominates",
    "pareto_front",
    "hypervolume",
    "ShapeSummary",
    "summarize_shapes",
    "render_shape_table",
    "render_tree",
    "render_memory_profile",
]
