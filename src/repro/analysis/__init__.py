"""Experiment harness and statistics for Section 6's tables and figures."""

from .experiments import (
    FailedRecord,
    ScenarioRecord,
    run_experiments,
    save_records,
    load_records,
    iter_records,
)
from .store import (
    RecordColumns,
    RecordStore,
    JsonlStore,
    ColumnarStore,
    ParquetStore,
    open_store,
    pack_store,
    merge_stores,
    STORE_BACKENDS,
)
from .campaign import Campaign, Scenario, run_campaign, recover_checkpoint
from .supervisor import RunReport, run_supervised
from .metrics import (
    HeuristicStats,
    GroupStats,
    compute_table1_stats,
    compute_table1_stats_reference,
    group_by_scenario,
    group_stats,
)
from .tables import render_table1, table1_csv, render_group_table, group_table_csv
from .figures import FigureSeries, Cross, figure_data, render_figure, figure_csv
from .pareto import (
    ParetoPoint,
    dominates,
    pareto_front,
    pareto_front_columns,
    hypervolume,
    hypervolume_columns,
)
from .shape_stats import ShapeSummary, summarize_shapes, render_shape_table
from .visualize import render_tree, render_memory_profile

__all__ = [
    "FailedRecord",
    "ScenarioRecord",
    "run_experiments",
    "save_records",
    "load_records",
    "iter_records",
    "RecordColumns",
    "RecordStore",
    "JsonlStore",
    "ColumnarStore",
    "ParquetStore",
    "open_store",
    "pack_store",
    "merge_stores",
    "STORE_BACKENDS",
    "Campaign",
    "Scenario",
    "run_campaign",
    "recover_checkpoint",
    "RunReport",
    "run_supervised",
    "HeuristicStats",
    "GroupStats",
    "compute_table1_stats",
    "compute_table1_stats_reference",
    "group_by_scenario",
    "group_stats",
    "render_table1",
    "table1_csv",
    "render_group_table",
    "group_table_csv",
    "FigureSeries",
    "Cross",
    "figure_data",
    "render_figure",
    "figure_csv",
    "ParetoPoint",
    "dominates",
    "pareto_front",
    "pareto_front_columns",
    "hypervolume",
    "hypervolume_columns",
    "ShapeSummary",
    "summarize_shapes",
    "render_shape_table",
    "render_tree",
    "render_memory_profile",
]
