"""Data series and ASCII rendering of Figures 6, 7 and 8.

Each figure is a scatter of scenarios in the (makespan ratio, memory
ratio) plane plus, per heuristic, a "cross": its centre is the average
performance and its branches span the 10th-90th percentiles of each
objective -- the exact visual device of the paper.

* Figure 6: ratios to the lower bounds (sequential-postorder memory,
  ``max(W/p, CP)`` makespan);
* Figure 7: ratios to ParSubtrees on the same scenario;
* Figure 8: ratios to ParInnerFirst on the same scenario.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .experiments import ScenarioRecord
from .metrics import _first_appearance_ids, _scenario_ids, group_by_scenario
from .store import RecordColumns

__all__ = ["FigureSeries", "Cross", "figure_data", "render_figure", "figure_csv"]


@dataclass(frozen=True)
class Cross:
    """Average-and-percentile cross of one heuristic's point cloud."""

    x_mean: float
    y_mean: float
    x_p10: float
    x_p90: float
    y_p10: float
    y_p90: float


@dataclass(frozen=True)
class FigureSeries:
    """Point cloud of one heuristic in one figure."""

    heuristic: str
    x: np.ndarray  # makespan ratios
    y: np.ndarray  # memory ratios

    def cross(self) -> Cross:
        """The paper's distribution cross for this series."""
        return Cross(
            x_mean=float(np.mean(self.x)),
            y_mean=float(np.mean(self.y)),
            x_p10=float(np.percentile(self.x, 10)),
            x_p90=float(np.percentile(self.x, 90)),
            y_p10=float(np.percentile(self.y, 10)),
            y_p90=float(np.percentile(self.y, 90)),
        )


def figure_data(
    records: Sequence[ScenarioRecord], which: int
) -> list[FigureSeries]:
    """Build the point clouds of Figure ``which`` (6, 7 or 8).

    Figure 7 normalises by ParSubtrees (which is therefore omitted from
    the output, being identically (1, 1)); Figure 8 by ParInnerFirst.
    """
    reference = {6: None, 7: "ParSubtrees", 8: "ParInnerFirst"}.get(which, "missing")
    if reference == "missing":
        raise ValueError("which must be 6, 7 or 8")
    if isinstance(records, RecordColumns):
        return _figure_data_columns(records, reference)
    groups = group_by_scenario(records)
    series: dict[str, tuple[list[float], list[float]]] = {}
    for recs in groups.values():
        if reference is None:
            ref_mk = ref_mem = None
        else:
            ref = next((r for r in recs if r.heuristic == reference), None)
            if ref is None:
                raise ValueError(f"records lack reference heuristic {reference}")
            ref_mk, ref_mem = ref.makespan, ref.memory
        for r in recs:
            if r.heuristic == reference:
                continue
            if reference is None:
                x, y = r.makespan_ratio, r.memory_ratio
            else:
                x, y = r.makespan / ref_mk, r.memory / ref_mem
            series.setdefault(r.heuristic, ([], []))
            series[r.heuristic][0].append(x)
            series[r.heuristic][1].append(y)
    return [
        FigureSeries(name, np.asarray(xs), np.asarray(ys))
        for name, (xs, ys) in series.items()
    ]


def _figure_data_columns(
    cols: RecordColumns, reference: str | None
) -> list[FigureSeries]:
    """Vectorised :func:`figure_data` over record columns.

    Reproduces the per-record loop exactly (same point order within
    every series, same series order): records are re-ordered by
    (scenario first-appearance, stream position) -- the loop's
    iteration order -- and the per-scenario reference row broadcasts
    through the scenario group ids instead of a linear search per
    group.
    """
    cols = cols.measured()
    if len(cols) == 0:
        return []
    scen_id, n_scen = _scenario_ids(cols)
    order = np.lexsort((np.arange(len(cols)), scen_id))
    heur = cols.heuristic[order]
    scen = scen_id[order]
    mk = cols.makespan[order]
    mem = cols.memory[order]
    if reference is None:
        x = cols.makespan_ratio()[order]
        y = cols.memory_ratio()[order]
    else:
        is_ref = heur == reference
        ref_mk = np.full(n_scen, np.nan)
        ref_mem = np.full(n_scen, np.nan)
        # reversed assignment: the *first* reference row of a scenario
        # wins, matching the loop's linear search
        ref_mk[scen[is_ref][::-1]] = mk[is_ref][::-1]
        ref_mem[scen[is_ref][::-1]] = mem[is_ref][::-1]
        if np.isnan(ref_mk).any():
            raise ValueError(f"records lack reference heuristic {reference}")
        x = mk / ref_mk[scen]
        y = mem / ref_mem[scen]
    _, names = _first_appearance_ids(heur)
    out = []
    for name in names:
        if str(name) == reference:
            continue
        sel = heur == name
        out.append(FigureSeries(str(name), x[sel], y[sel]))
    return out


_MARKS = "ox+*#@"


def render_figure(
    data: Sequence[FigureSeries],
    width: int = 72,
    height: int = 24,
    title: str = "",
) -> str:
    """ASCII log-log scatter with per-heuristic crosses.

    Points use one mark per heuristic; the cross centres are upper-case
    letters. Axis limits cover all points with a small margin.
    """
    all_x = np.concatenate([s.x for s in data])
    all_y = np.concatenate([s.y for s in data])
    lo_x, hi_x = float(all_x.min()) / 1.1, float(all_x.max()) * 1.1
    lo_y, hi_y = float(all_y.min()) / 1.1, float(all_y.max()) * 1.1
    lo_x, lo_y = max(lo_x, 1e-6), max(lo_y, 1e-6)

    def to_col(x: float) -> int:
        t = (math.log(x) - math.log(lo_x)) / (math.log(hi_x) - math.log(lo_x) + 1e-12)
        return min(width - 1, max(0, int(t * (width - 1))))

    def to_row(y: float) -> int:
        t = (math.log(y) - math.log(lo_y)) / (math.log(hi_y) - math.log(lo_y) + 1e-12)
        return min(height - 1, max(0, int((1 - t) * (height - 1))))

    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for k, s in enumerate(data):
        mark = _MARKS[k % len(_MARKS)]
        legend.append(f"{mark} {s.heuristic}")
        for x, y in zip(s.x, s.y):
            canvas[to_row(y)][to_col(x)] = mark
    for k, s in enumerate(data):
        c = s.cross()
        row, col = to_row(c.y_mean), to_col(c.x_mean)
        for cc in range(to_col(c.x_p10), to_col(c.x_p90) + 1):
            if canvas[row][cc] == " ":
                canvas[row][cc] = "-"
        for rr in range(to_row(c.y_p90), to_row(c.y_p10) + 1):
            if canvas[rr][col] == " ":
                canvas[rr][col] = "|"
        canvas[row][col] = s.heuristic[3].upper() if len(s.heuristic) > 3 else "X"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"memory ratio (log) in [{lo_y:.3g}, {hi_y:.3g}]")
    lines.extend("|" + "".join(row) + "|" for row in canvas)
    lines.append("+" + "-" * width + "+")
    lines.append(f"makespan ratio (log) in [{lo_x:.3g}, {hi_x:.3g}]")
    lines.append("legend: " + "; ".join(legend) + "; capitals = averages, bars = p10-p90")
    return "\n".join(lines)


def figure_csv(data: Sequence[FigureSeries]) -> str:
    """CSV of the point clouds (heuristic, makespan ratio, memory ratio)."""
    rows = ["heuristic,makespan_ratio,memory_ratio"]
    for s in data:
        for x, y in zip(s.x, s.y):
            rows.append(f"{s.heuristic},{x:.6g},{y:.6g}")
    return "\n".join(rows)
